"""Cold-start onboarding for a bookstore, powered by movie taste.

The scenario the paper's introduction motivates: a book application
wants to serve users on day one, before they have rated a single book,
by leveraging the ratings they left on a movie application. This example

1. generates an Amazon-style two-domain trace,
2. hides a set of test users' entire book profiles (cold-start protocol),
3. fits NX-Map and recommends books to those users,
4. scores the predictions against the hidden ground truth, next to the
   unpersonalised ItemAverage baseline.

Run with::

    python examples/cold_start_bookstore.py
"""

from __future__ import annotations

from repro import (
    ItemAverageRecommender,
    NXMapRecommender,
    XMapConfig,
    amazon_like,
    cold_start_split,
)
from repro.data.stats import summarize_cross_domain
from repro.evaluation.harness import evaluate


def main() -> None:
    data = amazon_like()
    print("Synthetic Amazon-style trace:")
    print(summarize_cross_domain(data).describe())

    split = cold_start_split(data, test_fraction=0.2, seed=7)
    print(f"\nHid the full book profiles of {len(split.test_users)} test "
          f"users ({split.n_hidden} ratings to predict).")

    recommender = NXMapRecommender(XMapConfig(prune_k=20, cf_k=50, mode="user"))
    recommender.fit(split.train, users=split.test_users)

    baseline = ItemAverageRecommender(split.train.target.ratings)
    ours = evaluate("NX-Map-ub", recommender, split)
    theirs = evaluate("ItemAverage", baseline, split)
    print(f"\n{ours.describe()}")
    print(theirs.describe())
    improvement = (theirs.mae - ours.mae) / theirs.mae
    print(f"NX-Map improves MAE by {improvement:.1%} over ItemAverage "
          f"for users with zero book history.")

    user = split.test_users[0]
    print(f"\nDay-one book recommendations for {user} "
          f"(rated {len(split.train.source.ratings.user_items(user))} movies, "
          f"0 books):")
    for book, score in recommender.recommend(user, n=5):
        print(f"  {book}: predicted {score:.2f}")


if __name__ == "__main__":
    main()
