"""Build once, snapshot, restart, serve — without re-running the sweep.

The production split the serving subsystem exists for: the offline
pipeline runs periodically (§5.4), its model is frozen into a
versioned :class:`~repro.serving.snapshot.ModelSnapshot` directory, and
the serving tier — here, a fresh Python interpreter standing in for a
restarted server — loads the artifact and answers traffic immediately,
with predictions identical to the process that built the model.

Run with::

    python examples/serve_snapshot.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

from repro import NXMapRecommender, XMapConfig
from repro.data.synthetic import SyntheticConfig, amazon_like

TOP_N = 5


def serve(snapshot_dir: str) -> None:
    """The 'restarted server': load the snapshot cold and answer the
    users it finds inside — no trace, no pipeline, no sweep."""
    from repro.serving.service import RecommendationService
    from repro.serving.snapshot import ModelSnapshot

    snapshot = ModelSnapshot.load(snapshot_dir)
    service = RecommendationService(snapshot)
    users = sorted(snapshot.store.users)[:4]
    responses = service.recommend_batch(users, n=TOP_N)
    print(json.dumps({user: response for user, response in zip(users, responses)}))


def main() -> None:
    data = amazon_like(SyntheticConfig(
        n_users_source=100, n_users_target=100, n_overlap=35,
        n_items_source=80, n_items_target=80,
        ratings_per_user=12.0, seed=42))

    print("1. offline build: fitting the item-mode pipeline …")
    pipeline = NXMapRecommender(XMapConfig(mode="item", cf_k=20)).fit(data)

    with tempfile.TemporaryDirectory() as directory:
        snapshot = pipeline.snapshot()
        snapshot.save(directory)
        n_bytes = sum(f.stat().st_size for f in Path(directory).iterdir())
        print(f"2. snapshot saved: {snapshot.n_users} users, "
              f"{snapshot.n_items} items, {snapshot.index.n_entries} "
              f"index entries, {n_bytes / 1024:.0f} KiB on disk")

        print("3. 'restart': serving from the snapshot in a fresh "
              "process …")
        result = subprocess.run(
            [sys.executable, __file__, "--serve", directory],
            check=True, capture_output=True, text=True)
        served = json.loads(result.stdout)

        print("4. asserting the restarted server equals the builder:")
        for user, response in served.items():
            want = pipeline.recommend(user, n=TOP_N)
            got = [(item, score) for item, score in response]
            assert got == want, (user, got, want)
            top_item, top_score = got[0]
            print(f"   {user}: top pick {top_item} "
                  f"(predicted {top_score:.2f}) — identical across "
                  f"the restart")
    print("done: the snapshot served bit-identical predictions without "
          "re-running any offline phase.")


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--serve":
        serve(sys.argv[2])
    else:
        main()
