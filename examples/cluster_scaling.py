"""Watching X-Map scale on the simulated cluster (Figure 11's machinery).

Expresses the X-Map offline pipeline and distributed ALS in the
sparklite dataflow API, runs both on simulated clusters of growing size,
and prints the per-stage timeline of one run plus the speedup curves.
Useful for understanding *why* the two jobs scale differently: X-Map's
heavy stage is an embarrassingly-parallel flat_map over items, ALS
alternates small tasks with cluster-wide factor broadcasts.

Run with::

    python examples/cluster_scaling.py
"""

from __future__ import annotations

from repro.competitors.als import ALSConfig
from repro.data.synthetic import amazon_like
from repro.engine import ClusterSpec
from repro.engine.als_job import run_als_job
from repro.engine.metrics import speedup_curve
from repro.engine.xmap_job import run_xmap_job


def main() -> None:
    data = amazon_like()
    print("Running the X-Map offline job on a 10-machine simulated cluster:")
    result = run_xmap_job(data, ClusterSpec(n_machines=10), prune_k=10)
    print(result.report.describe())
    print(f"baseline edges: {result.n_baseline_edges}, "
          f"X-Sim pairs: {result.n_xsim_pairs}, "
          f"AlterEgos: {result.n_alteregos}\n")

    machines = (5, 10, 15, 20)
    xmap_times = {}
    als_times = {}
    for count in machines:
        cluster = ClusterSpec(n_machines=count)
        xmap_times[count] = run_xmap_job(data, cluster, prune_k=10).report.makespan
        als_times[count] = run_als_job(
            data.merged(), cluster, ALSConfig(n_iterations=8)).report.makespan

    xmap_speedup = speedup_curve(xmap_times)
    als_speedup = speedup_curve(als_times)
    print(f"{'machines':>8}  {'X-Map speedup':>14}  {'ALS speedup':>12}")
    for count in machines:
        print(f"{count:>8}  {xmap_speedup[count]:>14.2f}  "
              f"{als_speedup[count]:>12.2f}")
    print("\nX-Map approaches linear speedup; ALS flattens as its factor"
          "\nbroadcasts grow with the cluster — the Figure 11 contrast.")


if __name__ == "__main__":
    main()
