"""Homogeneous X-Map: recommending across genre sub-domains (§6.5).

X-Map's machinery is not limited to separate applications: any single
catalogue with structural metadata can be split into sub-domains. This
example partitions a MovieLens-style trace by genre (the Table 2
procedure), treats "drama-side" and "comedy-side" as source and target,
and compares NX-Map against a from-scratch ALS matrix factorisation —
the paper's Table 3 comparison, narrated.

Run with::

    python examples/genre_subdomains.py
"""

from __future__ import annotations

from repro import NXMapRecommender, XMapConfig, movielens_like
from repro.competitors.als import ALSConfig, ALSRecommender
from repro.data.genres import partition_by_genre
from repro.data.splits import cold_start_split
from repro.evaluation.harness import evaluate


def main() -> None:
    dataset = movielens_like()
    partition = partition_by_genre(dataset)

    print("Genre allocation (Table 2 procedure):")
    print(f"  D1: {', '.join(g for g, _ in partition.d1_genres)}")
    print(f"  D2: {', '.join(g for g, _ in partition.d2_genres)}")
    print(f"  D1 has {len(partition.d1.items)} movies, "
          f"D2 has {len(partition.d2.items)} movies.\n")

    data = partition.as_cross_domain()
    split = cold_start_split(data, seed=13)
    print(f"Hiding {split.n_hidden} D2 ratings of {len(split.test_users)} "
          "test users; predicting them from D1 taste.\n")

    nxmap = NXMapRecommender(XMapConfig(prune_k=20, cf_k=50, mode="user"))
    nxmap.fit(split.train, users=split.test_users)
    als = ALSRecommender(split.train.merged(), ALSConfig(seed=13))

    for result in (evaluate("NX-Map", nxmap, split),
                   evaluate("MLlib-ALS (from-scratch)", als, split)):
        print(f"  {result.describe()}")

    user = split.test_users[0]
    print(f"\nCross-genre recommendations for {user}:")
    for item, score in nxmap.recommend(user, n=5):
        genres = "/".join(dataset.item_genres.get(item, ()))
        print(f"  {item} ({genres}): predicted {score:.2f}")


if __name__ == "__main__":
    main()
