"""Exchanging AlterEgo profiles between two companies, privately.

The paper's deployment story for X-Map (§4.3): a movie service and a
book service owned by *different* companies want to share cross-domain
signal without exposing their straddlers — the users who rate on both
sides and whose co-ratings are exactly what a curious user could mine.

This example contrasts:

* the **non-private** AlterEgo exchange, where an adversary holding the
  X-Sim map re-identifies the replacement mapping deterministically,
* the **ε-DP** exchange via PRS (Algorithm 3), where the adversary's
  re-identification rate degrades toward chance as ε shrinks — while the
  recommendation MAE degrades only moderately (the Figure 6/7 trade-off).

Run with::

    python examples/private_profile_exchange.py
"""

from __future__ import annotations

import numpy as np

from repro import XMapConfig, XMapRecommender, amazon_like, cold_start_split
from repro.evaluation.experiments.common import XMapLab
from repro.evaluation.harness import evaluate
from repro.privacy.attack import reidentification_rate


def main() -> None:
    data = amazon_like()
    split = cold_start_split(data, seed=7)

    print("Fitting the offline phases once (baseline graph + X-Sim map)...")
    lab = XMapLab(split, prune_k=20, seed=7)
    mappable = sum(1 for targets in lab.xsim_map.values() if targets)
    print(f"X-Sim map covers {mappable} source items.\n")

    print(f"{'epsilon':>8}  {'attacker re-id rate':>20}  {'MAE (X-Map-ub)':>15}")
    rng = np.random.default_rng(0)
    # The re-identification trend needs a wide epsilon range: with
    # hundreds of candidate books per movie, small epsilons all sit near
    # chance level (that is the protection!), and only an absurdly large
    # budget exposes the deterministic argmax mapping again.
    for epsilon in (0.1, 1.0, 10.0, 100.0):
        attack = reidentification_rate(lab.xsim_map, epsilon, trials=3, rng=rng)
        recommender = lab.x_recommender(
            epsilon=epsilon, epsilon_prime=0.3, mode="user", k=50)
        quality = evaluate("X-Map-ub", recommender, split)
        print(f"{epsilon:>8g}  {attack:>20.3f}  {quality.mae:>15.4f}")

    print("\nLower epsilon -> the exchanged AlterEgos reveal less about the"
          "\nstraddlers (re-identification approaches chance), at a modest"
          "\naccuracy cost. The full ledger for one private pipeline:")
    recommender = XMapRecommender(XMapConfig(
        prune_k=20, cf_k=50, mode="user", epsilon=0.6, epsilon_prime=0.3))
    recommender.fit(split.train, users=split.test_users)
    print(recommender.accountant.describe())


if __name__ == "__main__":
    main()
