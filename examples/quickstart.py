"""Quickstart: what you might like to read after watching Interstellar.

Runs the full X-Map pipeline on the paper's Figure 1(a) scenario — five
users, three movies, three books, one straddler (Cecilia) — and shows
that Alice, who never rated a book, gets book recommendations driven by
the meta-path  Interstellar —Bob→ Inception —Cecilia→ The Forever War.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import NXMapRecommender, XMapConfig
from repro.data.synthetic import interstellar_scenario
from repro.similarity.adjusted_cosine import adjusted_cosine


def main() -> None:
    scenario = interstellar_scenario()
    movies, books = scenario.source, scenario.target

    print("The Figure 1(a) scenario:")
    for user in sorted(scenario.source.users | scenario.target.users):
        rated = [movies.title_of(i) for i in movies.ratings.user_items(user)]
        rated += [books.title_of(i) for i in books.ratings.user_items(user)]
        print(f"  {user:8s} rated: {', '.join(sorted(rated))}")

    merged = scenario.merged()
    standard = adjusted_cosine(merged, "interstellar", "forever-war")
    print(f"\nStandard similarity(Interstellar, The Forever War) = "
          f"{standard:g}  <- no common rater, no signal")

    recommender = NXMapRecommender(XMapConfig(prune_k=3, cf_k=5))
    recommender.fit(scenario)

    xsim = recommender.xsim_map["interstellar"]["forever-war"]
    print(f"X-Sim(Interstellar, The Forever War)              = "
          f"{xsim:.4f}  <- via the Bob/Cecilia meta-path")

    print("\nItem mapping (source movie -> replacement book):")
    for movie, book in recommender.item_mapping().items():
        print(f"  {movies.title_of(movie):14s} -> {books.title_of(book)}")

    print("\nAlice has never rated a book. Her recommendations:")
    for book, score in recommender.recommend("alice", n=3):
        print(f"  {books.title_of(book):16s} predicted {score:.2f}")


if __name__ == "__main__":
    main()
