"""``python -m reprolint`` entry point."""

from reprolint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
