"""reprolint — repo-aware static analysis for the X-Map reproduction.

The general-purpose linters (ruff, mypy) cannot see the invariants this
codebase actually depends on: deterministic artifacts require
``stable_hash`` instead of salted ``hash()``; the pure-Python fallback
must never touch ``np.``; every write-then-rename must fsync the tmp
file before the rename and the directory after; asyncio code must not
block the loop or swallow ``CancelledError``; and every named fault or
crash point wired into a test must still exist in ``src/``. Each of
those rules encodes an incident the repo already had once — see the
rule docstrings and the README "Static analysis" section.

Usage (from the repo root)::

    python -m reprolint check src scripts      # lint, honoring baseline
    python -m reprolint list-points            # the fault-point registry
    python -m reprolint baseline src scripts   # regenerate the baseline

The implementation lives under ``tools/reprolint``; the repo-root
``reprolint.py`` shim makes the bare ``python -m reprolint`` invocation
work from a checkout (equivalently: ``PYTHONPATH=tools``).
"""

from reprolint.core import Checker, Finding, Rule, Severity, SourceFile

__version__ = "1.0.0"

__all__ = [
    "Checker",
    "Finding",
    "Rule",
    "Severity",
    "SourceFile",
    "__version__",
]
