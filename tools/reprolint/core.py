"""The rule framework: findings, source-file context, suppressions,
and the checker driver.

Two kinds of rules plug into the :class:`Checker`:

* **per-file rules** implement :meth:`Rule.check` and see one parsed
  :class:`SourceFile` at a time (scoped by :meth:`Rule.applies`);
* **project rules** implement :meth:`Rule.check_project` and see the
  whole analysis set plus the repo root — the fault-point drift rule
  needs both sides of the registry at once.

Findings can be silenced two ways, both visible in review:

* an inline ``# reprolint: disable=REP101`` (or ``disable=all``)
  comment on the flagged line;
* an entry in the committed JSON baseline (grandfathered findings —
  see :mod:`reprolint.baseline`).
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

_DISABLE_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\-\s]+)")


class Severity(enum.Enum):
    """How a finding affects the exit code: errors fail the check,
    warnings are reported but do not."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    name: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    #: enclosing ``Class.method`` qualname — the baseline matches on
    #: this instead of the line number, so unrelated edits above a
    #: grandfathered finding do not un-suppress it.
    obj: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "obj": self.obj,
            "message": self.message,
        }


class SourceFile:
    """One parsed python file plus the derived lookups rules need."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        #: repo-relative posix path — the stable identity used in
        #: findings, baselines and path-scoped rule configs.
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self._disabled: dict[int, set[str]] | None = None
        self._qualnames: dict[tuple[int, int], str] | None = None

    # -- suppressions --------------------------------------------------

    def disabled_on(self, line: int) -> set[str]:
        """Rule ids disabled by an inline comment on *line* (1-based);
        the special token ``all`` disables every rule."""
        if self._disabled is None:
            table: dict[int, set[str]] = {}
            for lineno, raw in enumerate(self.lines, start=1):
                match = _DISABLE_RE.search(raw)
                if match is None:
                    continue
                tokens = {
                    token.strip()
                    for token in match.group(1).replace(",", " ").split()
                }
                table[lineno] = {token for token in tokens if token}
            self._disabled = table
        return self._disabled.get(line, set())

    def is_disabled(self, rule_id: str, rule_name: str, line: int) -> bool:
        tokens = self.disabled_on(line)
        return bool(tokens & {rule_id, rule_name, "all"})

    # -- enclosing-scope qualnames ------------------------------------

    def qualname_at(self, line: int) -> str:
        """``Class.method`` qualname of the innermost def/class whose
        body spans *line* ("" at module level)."""
        if self._qualnames is None:
            spans: dict[tuple[int, int], str] = {}

            def walk(node: ast.AST, prefix: str) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(
                        child,
                        (
                            ast.FunctionDef,
                            ast.AsyncFunctionDef,
                            ast.ClassDef,
                        ),
                    ):
                        qual = (f"{prefix}.{child.name}" if prefix else child.name)
                        end = getattr(child, "end_lineno", child.lineno)
                        spans[(child.lineno, end or child.lineno)] = qual
                        walk(child, qual)
                    else:
                        walk(child, prefix)

            walk(self.tree, "")
            self._qualnames = spans
        best = ""
        best_span = None
        for (start, end), qual in self._qualnames.items():
            if start <= line <= end:
                if best_span is None or (start, -end) > best_span:
                    best, best_span = qual, (start, -end)
        return best


class Rule:
    """Base class for one invariant. Subclasses set the class
    attributes and implement :meth:`check` (per-file) or
    :meth:`check_project` (whole-repo)."""

    id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    #: one-line "what" for the catalog.
    description: str = ""
    #: one-line "why" — the incident that motivated the rule.
    rationale: str = ""
    project_rule: bool = False

    def applies(self, source: SourceFile) -> bool:
        return True

    def check(self, source: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(
        self, sources: Sequence[SourceFile], root: Path
    ) -> Iterable[Finding]:
        return ()

    def finding(
        self,
        source: SourceFile,
        node: ast.AST | None,
        message: str,
        *,
        line: int | None = None,
        col: int | None = None,
    ) -> Finding:
        line = line if line is not None else getattr(node, "lineno", 1)
        col = col if col is not None else getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            name=self.name,
            severity=self.severity,
            path=source.rel,
            line=line,
            col=col,
            message=message,
            obj=source.qualname_at(line),
        )


@dataclass
class CheckResult:
    """What a :meth:`Checker.run` produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    n_files: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [
            finding
            for finding in self.findings
            if finding.severity is Severity.ERROR
        ]

    @property
    def warnings(self) -> list[Finding]:
        return [
            finding
            for finding in self.findings
            if finding.severity is Severity.WARNING
        ]


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``*.py`` under *paths* (files given directly included),
    sorted, skipping bytecode caches."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[Path] = (path,)
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = ()
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or "__pycache__" in candidate.parts:
                continue
            seen.add(resolved)
            yield candidate


class Checker:
    """Run a rule set over a file set, applying inline suppressions.

    Project rules always evaluate against their canonical roots
    (``src/`` declarations vs ``tests/``+``scripts/`` references for
    the fault-point registry), independent of which paths were passed
    on the command line — ``check src`` and ``check src tests`` agree
    about project-level drift.
    """

    def __init__(self, rules: Sequence[Rule], root: Path) -> None:
        self.rules = list(rules)
        self.root = root.resolve()

    def relpath(self, path: Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def load(self, path: Path) -> SourceFile:
        text = path.read_text(encoding="utf-8")
        return SourceFile(path, self.relpath(path), text)

    def run(self, paths: Sequence[Path]) -> CheckResult:
        result = CheckResult()
        sources: list[SourceFile] = []
        for path in iter_python_files(paths):
            try:
                sources.append(self.load(path))
            except (SyntaxError, UnicodeDecodeError) as exc:
                result.parse_errors.append(f"{self.relpath(path)}: {exc}")
        result.n_files = len(sources)
        raw: list[Finding] = []
        for rule in self.rules:
            if rule.project_rule:
                raw.extend(rule.check_project(sources, self.root))
            else:
                for source in sources:
                    if rule.applies(source):
                        raw.extend(rule.check(source))
        by_rel = {source.rel: source for source in sources}
        for finding in sorted(raw, key=Finding.sort_key):
            source = by_rel.get(finding.path)
            if source is None:
                # Project rules may report on canonical-root files
                # outside the command-line path set; load those lazily
                # so their inline suppressions are still honored.
                candidate = self.root / finding.path
                if candidate.is_file():
                    try:
                        source = self.load(candidate)
                    except (SyntaxError, UnicodeDecodeError):
                        source = None
                    else:
                        by_rel[finding.path] = source
            if source is not None and source.is_disabled(
                finding.rule, finding.name, finding.line
            ):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
        return result
