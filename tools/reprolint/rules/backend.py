"""Backend-purity rules: the NumPy/pure-python split stays clean.

* **REP201 numpy-import** — only the dual-backend dispatch modules
  (and the documented numpy-native features) may import numpy. A
  stray ``import numpy`` anywhere else silently breaks the
  ``REPRO_PURE_PYTHON=1`` contract the CI matrix exists to protect.
* **REP202 numpy-in-fallback** — inside a dispatch module, the pure
  branch of a backend switch (``if use_numpy: ... else: ...``) must
  not reference ``np.`` / ``_np.``: that code runs exactly when numpy
  is absent or disabled, so the reference is a latent AttributeError
  on the fallback leg of the matrix.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.config import DISPATCH_MODULES, NUMPY_NATIVE, in_trees
from reprolint.core import Finding, Rule, SourceFile

_NUMPY_ALIASES = {"np", "_np", "numpy"}
_SWITCH_NAMES = {"use_numpy", "_use_numpy"}


class NumpyImportRule(Rule):
    id = "REP201"
    name = "numpy-import"
    description = (
        "numpy imported outside the dual-backend dispatch modules "
        "and documented numpy-native features"
    )
    rationale = (
        "the library runs stdlib-only under REPRO_PURE_PYTHON=1; "
        "every new numpy import must go through the dispatch seam"
    )

    def applies(self, source: SourceFile) -> bool:
        return source.rel.startswith("src/") and not (
            in_trees(source.rel, DISPATCH_MODULES)
            or in_trees(source.rel, NUMPY_NATIVE)
        )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module or ""]
            else:
                continue
            for name in names:
                if name == "numpy" or name.startswith("numpy."):
                    yield self.finding(
                        source,
                        node,
                        "numpy import outside the dispatch modules; "
                        "route through repro.data.matrix's backend "
                        "seam (or add the module to the documented "
                        "numpy-native list in tools/reprolint/"
                        "config.py)",
                    )
                    break


def _switch_polarity(test: ast.expr) -> str | None:
    """Classify a branch condition as a backend switch.

    Returns ``"numpy"`` when the *body* of the ``if`` is the numpy
    path, ``"pure"`` when the body is the pure path, ``None`` when the
    condition is not a backend switch at all.
    """
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = _switch_polarity(test.operand)
        if inner == "numpy":
            return "pure"
        if inner == "pure":
            return "numpy"
        return None
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        # `_np is not None and isinstance(...)`: the leading switch
        # decides — the body only runs on the numpy side.
        return _switch_polarity(test.values[0])
    if isinstance(test, ast.Name) and test.id in _SWITCH_NAMES:
        return "numpy"
    if isinstance(test, ast.Attribute) and test.attr in _SWITCH_NAMES:
        return "numpy"
    if isinstance(test, ast.Call):
        func = test.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if name == "numpy_available":
            return "numpy"
        return None
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, right = test.left, test.comparators[0]
        names = {node.id for node in (left, right) if isinstance(node, ast.Name)}
        if names & _NUMPY_ALIASES and any(
            isinstance(node, ast.Constant) and node.value is None
            for node in (left, right)
        ):
            if isinstance(test.ops[0], ast.Is):
                return "pure"
            if isinstance(test.ops[0], ast.IsNot):
                return "numpy"
    return None


class NumpyInFallbackRule(Rule):
    id = "REP202"
    name = "numpy-in-fallback"
    description = (
        "np./_np. referenced inside the pure-python branch of a "
        "backend switch"
    )
    rationale = (
        "the pure branch runs exactly when numpy is absent/disabled; "
        "any np. reference there is an AttributeError waiting for the "
        "pure-python CI leg"
    )

    def applies(self, source: SourceFile) -> bool:
        return in_trees(source.rel, DISPATCH_MODULES)

    def check(self, source: SourceFile) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.If):
                polarity = _switch_polarity(node.test)
                if polarity == "numpy":
                    pure_side: list[ast.stmt] = node.orelse
                elif polarity == "pure":
                    pure_side = node.body
                else:
                    continue
                for stmt in pure_side:
                    findings.extend(self._scan_pure(source, stmt))
            elif isinstance(node, ast.IfExp):
                polarity = _switch_polarity(node.test)
                branch: ast.expr | None = None
                if polarity == "numpy":
                    branch = node.orelse
                elif polarity == "pure":
                    branch = node.body
                if branch is not None:
                    findings.extend(self._scan_pure(source, branch))
        # Nested switches produce duplicate findings when both the
        # outer and inner pure branches cover a node; keep the first.
        seen: set[tuple[int, int]] = set()
        for finding in findings:
            key = (finding.line, finding.col)
            if key not in seen:
                seen.add(key)
                yield finding

    def _scan_pure(self, source: SourceFile, node: ast.AST) -> Iterable[Finding]:
        """Flag numpy references in a pure branch, skipping any nested
        backend switch's numpy side (it re-dispatches legitimately)."""
        if isinstance(node, ast.If):
            polarity = _switch_polarity(node.test)
            if polarity is not None:
                pure = node.body if polarity == "pure" else node.orelse
                for stmt in pure:
                    yield from self._scan_pure(source, stmt)
                return
        if isinstance(node, ast.IfExp):
            polarity = _switch_polarity(node.test)
            if polarity is not None:
                yield from self._scan_pure(
                    source,
                    node.body if polarity == "pure" else node.orelse,
                )
                return
        if isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name) and value.id in _NUMPY_ALIASES:
                yield self.finding(
                    source,
                    node,
                    f"{value.id}.{node.attr} referenced in the "
                    "pure-python fallback branch",
                )
        if isinstance(node, ast.Compare):
            # `_np is None` re-checks inside a pure branch are guards,
            # not usage; their operands are Names, handled below.
            pass
        for child in ast.iter_child_nodes(node):
            yield from self._scan_pure(source, child)
