"""Fault-point drift: the named fault/crash point registry stays
closed under refactoring.

* **REP601 unknown-fault-point** — a point name referenced by a
  :class:`FaultPlan` rule, an ``injected_crashes(at=...)`` /
  ``CrashInjector(at=...)``, or a ``REPRO_CRASH_POINT`` environment
  value in ``tests/`` or ``scripts/`` must resolve (glob-aware) to a
  ``crash_point``/``fault_point`` call in ``src/`` — otherwise the
  test silently stopped injecting anything the day the point was
  renamed, and "passes" by testing nothing.
* **REP602 unexercised-fault-point** — the other direction: a point
  declared in ``src/`` that no test or script can ever hit (not even
  through a glob or an any-point wildcard sweep) is dead chaos
  surface; wire it into a plan or delete it.

Declarations are extracted statically: literal arguments to
``crash_point(...)`` / ``fault_point(...)`` / ``frame_fault(...)``
plus module-level constants passed to them
(``LOAD_FAULT_POINT = "gateway.worker.load"``). The same extraction
powers ``python -m reprolint list-points``. Point names under the
reserved ``test.`` namespace are synthetic fixtures for the plan
machinery's own unit tests and are exempt from REP601.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Iterable, Sequence

from reprolint.config import (
    FAULT_DECL_ROOTS,
    FAULT_REF_ROOTS,
    SYNTHETIC_POINT_PREFIX,
)
from reprolint.core import Finding, Rule, SourceFile, iter_python_files

_DECL_FNS = {"crash_point", "fault_point", "frame_fault"}
_REF_CTORS = {"FaultRule"}
_AT_CTORS = {"injected_crashes", "CrashInjector"}
_ENV_KEY = "REPRO_CRASH_POINT"


@dataclass(frozen=True)
class PointDecl:
    """One ``crash_point``/``fault_point`` call site in src/."""

    point: str
    path: str
    line: int


@dataclass(frozen=True)
class PointRef:
    """One point name (possibly a glob) referenced by tests/scripts.
    ``pattern`` of ``*`` is the any-point wildcard an enumerating
    sweep uses."""

    pattern: str
    path: str
    line: int


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _module_str_constants(tree: ast.Module) -> dict[str, str]:
    constants: dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            constants[node.targets[0].id] = node.value.value
    return constants


def collect_declarations(
    sources: Iterable[SourceFile],
) -> list[PointDecl]:
    declarations: list[PointDecl] = []
    for source in sources:
        constants = _module_str_constants(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) not in _DECL_FNS or not node.args:
                continue
            arg = node.args[0]
            point: str | None = None
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                point = arg.value
            elif isinstance(arg, ast.Name):
                point = constants.get(arg.id)
            if point is not None:
                declarations.append(PointDecl(point, source.rel, node.lineno))
    return declarations


def _ref_from_env_value(value: str) -> str:
    """``"wal.fsync:2"`` -> ``"wal.fsync"`` (the count suffix is the
    visit index, not part of the name)."""
    return value.rsplit(":", 1)[0] if ":" in value else value


def collect_references(sources: Iterable[SourceFile]) -> list[PointRef]:
    references: list[PointRef] = []
    for source in sources:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in _REF_CTORS:
                    arg: ast.expr | None = (node.args[0] if node.args else None)
                    for keyword in node.keywords:
                        if keyword.arg == "point":
                            arg = keyword.value
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        references.append(PointRef(arg.value, source.rel, node.lineno))
                elif name in _AT_CTORS:
                    at: ast.expr | None = (node.args[0] if node.args else None)
                    explicit_at = bool(node.args)
                    for keyword in node.keywords:
                        if keyword.arg == "at":
                            at = keyword.value
                            explicit_at = True
                    if (
                        explicit_at
                        and isinstance(at, ast.Constant)
                        and isinstance(at.value, str)
                    ):
                        references.append(PointRef(at.value, source.rel, node.lineno))
                    elif not explicit_at or (
                        isinstance(at, ast.Constant) and at.value is None
                    ):
                        # at omitted / None: an any-point injector —
                        # the enumerate-then-sweep harness shape.
                        references.append(PointRef("*", source.rel, node.lineno))
            elif isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if (
                        isinstance(key, ast.Constant)
                        and key.value == _ENV_KEY
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                    ):
                        references.append(
                            PointRef(
                                _ref_from_env_value(value.value),
                                source.rel,
                                value.lineno,
                            )
                        )
            elif isinstance(node, ast.Assign):
                # env["REPRO_CRASH_POINT"] = "wal.fsync:1"
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and target.slice.value == _ENV_KEY
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str)
                    ):
                        references.append(
                            PointRef(
                                _ref_from_env_value(node.value.value),
                                source.rel,
                                node.lineno,
                            )
                        )
    return references


def load_registry(
    root: Path,
) -> tuple[list[PointDecl], list[PointRef]]:
    """Parse the canonical roots and return (declarations,
    references); parse failures are skipped (the per-file rules
    already report them for analyzed paths)."""

    resolved = root.resolve()

    def parse_root(names: Sequence[str]) -> list[SourceFile]:
        sources = []
        for name in names:
            base = resolved / name
            if not base.exists():
                continue
            for path in iter_python_files([base]):
                try:
                    rel = path.resolve().relative_to(resolved).as_posix()
                    sources.append(
                        SourceFile(path, rel, path.read_text(encoding="utf-8"))
                    )
                except (SyntaxError, UnicodeDecodeError, ValueError):
                    continue
        return sources

    declarations = collect_declarations(parse_root(FAULT_DECL_ROOTS))
    references = collect_references(parse_root(FAULT_REF_ROOTS))
    return declarations, references


class FaultPointDriftRule(Rule):
    id = "REP601"
    name = "fault-point-drift"
    description = (
        "fault/crash point names in tests/scripts and src/ have "
        "drifted apart"
    )
    rationale = (
        "a renamed point turns its chaos/crash tests into no-ops that "
        "still pass; the registry must stay closed in both directions"
    )
    project_rule = True

    #: the companion id for the unexercised direction; same rule
    #: object, two finding streams.
    unexercised_id = "REP602"
    unexercised_name = "unexercised-fault-point"

    def check_project(
        self, sources: Sequence[SourceFile], root: Path
    ) -> Iterable[Finding]:
        declarations, references = load_registry(root)
        declared_names = {decl.point for decl in declarations}
        for ref in references:
            if ref.pattern == "*":
                continue
            if ref.pattern.startswith(SYNTHETIC_POINT_PREFIX):
                # Reserved namespace for unit tests of the fault-plan
                # machinery itself — no src/ declaration expected.
                continue
            if any(fnmatchcase(name, ref.pattern) for name in declared_names):
                continue
            yield Finding(
                rule=self.id,
                name=self.name,
                severity=self.severity,
                path=ref.path,
                line=ref.line,
                col=0,
                message=(
                    f"fault point {ref.pattern!r} does not match any "
                    "crash_point/fault_point call in src/ — the "
                    "injection this test relies on no longer exists"
                ),
                obj="",
            )
        wildcard = any(ref.pattern == "*" for ref in references)
        patterns = {ref.pattern for ref in references}
        for decl in declarations:
            if wildcard or any(
                fnmatchcase(decl.point, pattern) for pattern in patterns
            ):
                continue
            yield Finding(
                rule=self.unexercised_id,
                name=self.unexercised_name,
                severity=self.severity,
                path=decl.path,
                line=decl.line,
                col=0,
                message=(
                    f"fault point {decl.point!r} is declared but no "
                    "test or script can reach it (no FaultRule, "
                    "injector or REPRO_CRASH_POINT reference matches)"
                ),
                obj="",
            )
