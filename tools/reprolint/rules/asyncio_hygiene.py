"""Asyncio-hygiene rules for the gateway's event-loop code.

* **REP401 blocking-call-in-async** — a synchronous sleep, subprocess
  wait or blocking file/socket call inside ``async def`` stalls every
  coalesced request behind it (the gateway multiplexes all clients on
  one loop). Blocking work belongs in ``loop.run_in_executor`` — the
  pattern ``_run_slot`` already uses for ``proc.wait``.
* **REP402 cancellederror-swallow** — a handler that can catch
  :class:`asyncio.CancelledError` (bare ``except``,
  ``except BaseException``, or an explicit ``CancelledError`` in the
  tuple) must re-raise, or cancellation dies inside it and
  ``await``-ing callers hang. The incident: ``WorkerPool.close()``
  swallowed outer cancellation through a broad handler until PR 8's
  ``except (CancelledError, Exception)`` audit. Note that on
  Python 3.8+ a plain ``except Exception`` cannot catch
  ``CancelledError`` — this rule flags exactly the handler shapes
  that *can*.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from reprolint.config import ASYNC_TREES, in_trees
from reprolint.core import Finding, Rule, SourceFile

#: module-level callables that block the loop. ``("time", "sleep")``
#: matches ``time.sleep(...)``; a single name matches the builtin.
_BLOCKING_CALLS: dict[tuple[str, ...], str] = {
    ("time", "sleep"): "use `await asyncio.sleep(...)`",
    ("os", "system"): "use `await asyncio.create_subprocess_exec(...)`",
    ("subprocess", "run"): "use asyncio.create_subprocess_exec",
    ("subprocess", "call"): "use asyncio.create_subprocess_exec",
    ("subprocess", "check_call"): "use asyncio.create_subprocess_exec",
    ("subprocess", "check_output"): "use asyncio.create_subprocess_exec",
    ("subprocess", "getoutput"): "use asyncio.create_subprocess_exec",
    ("socket", "create_connection"): "use asyncio.open_connection",
    ("open",): "read the file in `loop.run_in_executor`",
}

#: this repo names every Popen handle `proc`; `<x>.proc.wait()` /
#: `proc.wait(...)` block the loop for up to the process's lifetime.
_PROC_WAIT_HINT = (
    "process .wait() blocks the loop; use "
    "`await loop.run_in_executor(None, proc.wait)`"
)

_CANCELLED_NAMES = {"CancelledError"}


def _attr_chain(node: ast.AST) -> tuple[str, ...]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return ()


def _async_bodies(tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _walk_same_function(node: ast.AST) -> Iterator[ast.AST]:
    """Walk *node*'s subtree without descending into nested function
    or class definitions (their bodies run in their own context)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield child
        yield from _walk_same_function(child)


class _AsyncTreeRule(Rule):
    def applies(self, source: SourceFile) -> bool:
        return in_trees(source.rel, ASYNC_TREES)


class BlockingCallInAsyncRule(_AsyncTreeRule):
    id = "REP401"
    name = "blocking-call-in-async"
    description = (
        "synchronous sleep/subprocess/file/socket call inside an "
        "async def"
    )
    rationale = (
        "the gateway multiplexes every client on one loop; one "
        "blocking call stalls the whole coalescing window"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for func in _async_bodies(source.tree):
            for node in _walk_same_function(func):
                if not isinstance(node, ast.Call):
                    continue
                chain = _attr_chain(node.func)
                hint = _BLOCKING_CALLS.get(chain)
                if hint is not None:
                    yield self.finding(
                        source,
                        node,
                        f"blocking call {'.'.join(chain)}() inside "
                        f"async def {func.name}; {hint}",
                    )
                    continue
                if (
                    len(chain) >= 2
                    and chain[-1] == "wait"
                    and chain[-2] in ("proc", "process", "popen")
                ):
                    yield self.finding(
                        source,
                        node,
                        f"{'.'.join(chain)}() inside async def "
                        f"{func.name}; {_PROC_WAIT_HINT}",
                    )


def _mentions_cancelled(annotation: ast.expr) -> bool:
    """Whether an except type expression can catch CancelledError:
    the name itself, asyncio.CancelledError, or BaseException —
    directly or anywhere in a tuple."""
    if isinstance(annotation, ast.Tuple):
        return any(_mentions_cancelled(el) for el in annotation.elts)
    chain = _attr_chain(annotation)
    if not chain:
        return False
    return chain[-1] in _CANCELLED_NAMES or chain[-1] == "BaseException"


class CancelledErrorSwallowedRule(_AsyncTreeRule):
    id = "REP402"
    name = "cancellederror-swallow"
    description = (
        "handler in async code that can catch CancelledError without "
        "re-raising"
    )
    rationale = (
        "PR 8: a broad handler in WorkerPool.close() ate outer "
        "cancellation and hung the drain; cancellation must always "
        "propagate"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for func in _async_bodies(source.tree):
            for node in _walk_same_function(func):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    catches = "bare except"
                elif _mentions_cancelled(node.type):
                    catches = f"except {ast.unparse(node.type)}"
                else:
                    continue
                if any(
                    isinstance(inner, ast.Raise)
                    for stmt in node.body
                    for inner in [stmt, *ast.walk(stmt)]
                ):
                    continue
                yield self.finding(
                    source,
                    node,
                    f"{catches} in async def {func.name} can swallow "
                    "CancelledError; re-raise it (narrow the handler "
                    "or add `except asyncio.CancelledError: raise`)",
                )
