"""The shipped rule set. ``ALL_RULES`` is the registry the CLI runs;
order is cosmetic (findings are location-sorted by the checker)."""

from __future__ import annotations

from reprolint.core import Rule
from reprolint.rules.asyncio_hygiene import (
    BlockingCallInAsyncRule,
    CancelledErrorSwallowedRule,
)
from reprolint.rules.backend import NumpyImportRule, NumpyInFallbackRule
from reprolint.rules.determinism import (
    SaltedHashRule,
    UnseededRandomRule,
    WallClockRule,
)
from reprolint.rules.durability import UnsyncedRenameRule
from reprolint.rules.exceptions import BareExceptRule, SilentExceptionRule
from reprolint.rules.faultpoints import FaultPointDriftRule
from reprolint.rules.observability import PrintInLibraryRule

ALL_RULES: tuple[Rule, ...] = (
    SaltedHashRule(),
    UnseededRandomRule(),
    WallClockRule(),
    NumpyImportRule(),
    NumpyInFallbackRule(),
    UnsyncedRenameRule(),
    BlockingCallInAsyncRule(),
    CancelledErrorSwallowedRule(),
    BareExceptRule(),
    SilentExceptionRule(),
    FaultPointDriftRule(),
    PrintInLibraryRule(),
)


def rule_by_id(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.id == rule_id or rule.name == rule_id:
            return rule
    raise KeyError(rule_id)


__all__ = ["ALL_RULES", "rule_by_id"]
