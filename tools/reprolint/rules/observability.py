"""Observability hygiene.

* **REP701 print-in-library** — a bare ``print()`` in ``src/repro/``
  library code is invisible to the structured-logging pipeline the
  observability layer (:mod:`repro.obs`) builds: it carries no trace
  id, no timestamp, no level, cannot be captured per-request, and in
  a gateway worker it lands on an inherited stdout nobody reads.
  Library code emits through :mod:`logging` (or the ``repro.obs``
  span/event helpers); only genuine CLI surfaces print.

  Exempt, because printing *is* their job:

  * ``src/repro/cli.py`` — the command-line interface;
  * any statement inside an ``if __name__ == "__main__":`` block —
    a module run as a script is a CLI at that moment;
  * the body of a top-level function named ``main`` — the
    argparse-entry convention every runnable module here follows;
  * ``scripts/`` and everything else outside ``src/repro/`` (the
    rule's scope is library code, not tooling).
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.core import Finding, Rule, SourceFile

_EXEMPT_FILES = ("src/repro/cli.py",)


def _is_main_guard(node: ast.stmt) -> bool:
    """``if __name__ == "__main__":`` (either operand order)."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return False
    if not isinstance(test.ops[0], ast.Eq):
        return False
    operands = [test.left] + list(test.comparators)
    names = {op.id for op in operands if isinstance(op, ast.Name)}
    constants = {
        op.value
        for op in operands
        if isinstance(op, ast.Constant) and isinstance(op.value, str)
    }
    return "__name__" in names and "__main__" in constants


def _exempt_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line ranges whose prints are CLI output by convention: main
    guards and top-level ``main`` functions."""
    spans: list[tuple[int, int]] = []
    for node in tree.body:
        if _is_main_guard(node) or (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "main"
        ):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


class PrintInLibraryRule(Rule):
    id = "REP701"
    name = "print-in-library"
    description = (
        "bare `print()` in src/repro/ library code (CLI entry points "
        "and `__main__` blocks exempt)"
    )
    rationale = (
        "a print carries no trace id, level, or timestamp and bypasses "
        "the structured repro.obs logging the fleet is debugged with; "
        "emit via logging / span / event instead"
    )

    def applies(self, source: SourceFile) -> bool:
        return (source.rel.startswith("src/repro/") and source.rel not in _EXEMPT_FILES)

    def check(self, source: SourceFile) -> Iterable[Finding]:
        exempt = _exempt_spans(source.tree)
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                continue
            if any(first <= node.lineno <= last for first, last in exempt):
                continue
            yield self.finding(
                source,
                node,
                "print() in library code; emit via the logging module "
                "or repro.obs span/event so the line carries a trace "
                "id and can be captured",
            )
