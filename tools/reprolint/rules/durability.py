"""Durability rule: every atomic-rename site keeps the fsync
discipline.

* **REP301 unsynced-rename** — a write-then-``os.replace`` site must
  fsync the tmp file's bytes *before* the rename and the directory
  entry *after* it, or a power loss can publish a name whose content
  (or whose very existence) is not on stable storage. The MANIFEST-
  last pattern in ``snapshot.py`` / ``watch.py`` /
  ``durability/manager.py`` is maintained by hand at every new
  ``os.replace`` site — this rule makes the pattern mechanical.

The check is lexical within the enclosing function: some call that
fsyncs file bytes (``_fsync_file`` / ``os.fsync``) must precede the
rename, and some directory sync (``_fsync_dir``) must follow it.
That is exactly the shape of every compliant site in the tree; a
site with a genuinely different-but-correct shape can carry an
inline ``# reprolint: disable=REP301`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.core import Finding, Rule, SourceFile

_RENAME_FNS = {"replace", "rename"}
_FILE_SYNC_FNS = {"_fsync_file", "fsync"}
_DIR_SYNC_FNS = {"_fsync_dir", "fsync_dir"}


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_os_call(node: ast.Call, names: set[str]) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in names
        and isinstance(func.value, ast.Name)
        and func.value.id == "os"
    )


class UnsyncedRenameRule(Rule):
    id = "REP301"
    name = "unsynced-rename"
    description = (
        "os.replace/os.rename without fsync of the tmp file before "
        "and of the directory after"
    )
    rationale = (
        "the MANIFEST-last discipline: a crashed publish must never "
        "leave a durable name pointing at non-durable bytes"
    )

    def applies(self, source: SourceFile) -> bool:
        return source.rel.startswith("src/")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        claimed: set[tuple[int, int]] = set()
        # Innermost function scopes first, the module last, so each
        # rename is judged against exactly one (its tightest) scope.
        for scope in self._scopes(source.tree):
            calls = [node for node in ast.walk(scope) if isinstance(node, ast.Call)]
            renames = [
                node
                for node in calls
                if _is_os_call(node, _RENAME_FNS)
                and (node.lineno, node.col_offset) not in claimed
            ]
            claimed.update((node.lineno, node.col_offset) for node in renames)
            if not renames:
                continue
            file_sync_lines = [
                node.lineno
                for node in calls
                if _call_name(node) in _FILE_SYNC_FNS
            ]
            dir_sync_lines = [
                node.lineno
                for node in calls
                if _call_name(node) in _DIR_SYNC_FNS
            ]
            for rename in renames:
                synced_before = any(line <= rename.lineno for line in file_sync_lines)
                synced_after = any(line >= rename.lineno for line in dir_sync_lines)
                if synced_before and synced_after:
                    continue
                missing = []
                if not synced_before:
                    missing.append(
                        "fsync of the tmp file before the rename "
                        "(_fsync_file / os.fsync)"
                    )
                if not synced_after:
                    missing.append(
                        "fsync of the directory after the rename "
                        "(_fsync_dir)"
                    )
                yield self.finding(
                    source,
                    rename,
                    "atomic-rename site missing " + " and ".join(missing),
                )

    @staticmethod
    def _scopes(tree: ast.Module) -> Iterable[ast.AST]:
        """Function scopes innermost-first, then the module itself
        (for top-level rename sites)."""
        functions = [
            node
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # ast.walk is breadth-first from the root, so reversing yields
        # inner defs before the defs that contain them.
        yield from reversed(functions)
        yield tree
