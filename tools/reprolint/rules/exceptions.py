"""Exception-hygiene rules.

* **REP501 bare-except** — ``except:`` catches ``SystemExit``,
  ``KeyboardInterrupt``, :class:`InjectedCrash` (deliberately a
  ``BaseException`` so library code cannot survive a simulated power
  loss) and ``CancelledError``; there is no situation in ``src/`` or
  ``scripts/`` where that is the intent.
* **REP502 silent-exception** — ``except Exception: pass`` hides real
  failures with no trace. Narrow, documented swallows
  (``except (OSError, RuntimeError): pass`` around a double-close)
  are fine and not flagged; broad silent ones are not.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.core import Finding, Rule, SourceFile

_BROAD = {"Exception", "BaseException"}


def _type_names(annotation: ast.expr | None) -> set[str]:
    if annotation is None:
        return set()
    if isinstance(annotation, ast.Tuple):
        names: set[str] = set()
        for element in annotation.elts:
            names |= _type_names(element)
        return names
    node = annotation
    while isinstance(node, ast.Attribute):
        node = node.value  # asyncio.CancelledError -> CancelledError
    if isinstance(annotation, ast.Attribute):
        return {annotation.attr}
    if isinstance(annotation, ast.Name):
        return {annotation.id}
    return set()


class _SrcAndScriptsRule(Rule):
    def applies(self, source: SourceFile) -> bool:
        return source.rel.startswith(("src/", "scripts/"))


class BareExceptRule(_SrcAndScriptsRule):
    id = "REP501"
    name = "bare-except"
    description = "bare `except:` in src/ or scripts/"
    rationale = (
        "a bare except survives SIGINT, SystemExit and the fault "
        "harness's InjectedCrash — failures the code must die from"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    source,
                    node,
                    "bare except:; name the exceptions this handler "
                    "is really for",
                )


class SilentExceptionRule(_SrcAndScriptsRule):
    id = "REP502"
    name = "silent-exception"
    description = (
        "`except Exception:`/`except BaseException:` whose body is "
        "only pass/..."
    )
    rationale = (
        "a broad silent swallow hides the first real failure; narrow "
        "the type or handle (log, count, re-raise) the error"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _type_names(node.type)
            broad = node.type is None or (names & _BROAD)
            if not broad:
                continue
            silent = all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is Ellipsis
                )
                for stmt in node.body
            )
            if silent:
                yield self.finding(
                    source,
                    node,
                    "broad exception handler silently passes; narrow "
                    "the exception type or handle the failure",
                )
