"""Determinism rules: the artifact trees must be bit-identical across
processes, backends and re-runs.

* **REP101 salted-hash** — builtin ``hash()`` is salted per process
  (PYTHONHASHSEED); partition routing or tie-breaking on it churns
  every artifact. The incident: ``hash(item)`` genre-split tie-breaks
  randomized the table2/3 artifacts until PR 1 pinned ``stable_hash``.
* **REP102 unseeded-random** — module-level ``random.*`` /
  ``np.random.*`` draws (or RNG constructions without a seed) make
  sweeps unreproducible. Only ``data/synthetic.py`` consumes entropy,
  and only through its seeded API boundary.
* **REP103 wallclock-time** — ``time.time()`` in a compute path leaks
  the clock into artifacts and flakes tests; schedule with
  ``time.monotonic()`` and stamp artifacts at the CLI edge instead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.config import DETERMINISM_EXEMPT, DETERMINISTIC_TREES, in_trees
from reprolint.core import Finding, Rule, SourceFile

#: ``random.<fn>`` draws that hit the process-global unseeded RNG.
_GLOBAL_RANDOM_FNS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gammavariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}

#: numpy module aliases this repo uses.
_NUMPY_ALIASES = {"np", "_np", "numpy"}


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"] (empty when not a plain chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


class _DeterministicTreeRule(Rule):
    def applies(self, source: SourceFile) -> bool:
        return in_trees(source.rel, DETERMINISTIC_TREES) and not in_trees(
            source.rel, DETERMINISM_EXEMPT
        )


class SaltedHashRule(_DeterministicTreeRule):
    id = "REP101"
    name = "salted-hash"
    description = (
        "builtin hash() in a deterministic tree — use "
        "repro.engine.partitioner.stable_hash"
    )
    rationale = (
        "hash(item) tie-breaks churned the table2/3 artifacts per "
        "process until PR 1 pinned stable_hash"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Name) and func.id == "hash"):
                continue
            # A __hash__ implementation delegating to hash() is fine:
            # per-process identity is that protocol's entire contract.
            if source.qualname_at(node.lineno).endswith("__hash__"):
                continue
            yield self.finding(
                source,
                node,
                "salted builtin hash() in a deterministic path; use "
                "stable_hash (repro.engine.partitioner) so partitions "
                "and tie-breaks survive PYTHONHASHSEED",
            )


class UnseededRandomRule(_DeterministicTreeRule):
    id = "REP102"
    name = "unseeded-random"
    description = ("unseeded random/np.random usage outside data/synthetic.py")
    rationale = (
        "sweeps and artifacts must reproduce bit-identically; only the "
        "seeded synthetic generator may consume entropy"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            message = self._diagnose(node, chain)
            if message is not None:
                yield self.finding(source, node, message)

    def _diagnose(self, node: ast.Call, chain: list[str]) -> str | None:
        if len(chain) == 2 and chain[0] == "random":
            fn = chain[1]
            if fn in _GLOBAL_RANDOM_FNS:
                return (
                    f"random.{fn}() draws from the process-global "
                    "unseeded RNG; construct random.Random(seed)"
                )
            if fn == "Random" and _seedless(node):
                return (
                    "random.Random() without a seed; thread an explicit "
                    "seed through the caller"
                )
            if fn == "seed":
                return (
                    "random.seed() mutates the process-global RNG; "
                    "construct random.Random(seed) instead"
                )
        if (len(chain) == 3 and chain[0] in _NUMPY_ALIASES and chain[1] == "random"):
            fn = chain[2]
            if fn == "default_rng":
                if _seedless(node):
                    return (
                        "np.random.default_rng() without a seed; pass "
                        "the config's seed explicitly"
                    )
                return None
            if fn in ("Generator", "SeedSequence", "PCG64"):
                return None
            return (
                f"np.random.{fn}() uses numpy's process-global RNG; "
                "use np.random.default_rng(seed)"
            )
        return None


def _seedless(node: ast.Call) -> bool:
    """No positional seed and no seed= keyword, or an explicit None."""
    if node.args:
        return isinstance(node.args[0], ast.Constant) and (node.args[0].value is None)
    for keyword in node.keywords:
        if keyword.arg in ("seed", "x") or keyword.arg is None:
            return isinstance(keyword.value, ast.Constant) and (
                keyword.value.value is None
            )
    return True


class WallClockRule(_DeterministicTreeRule):
    id = "REP103"
    name = "wallclock-time"
    description = "time.time() inside a deterministic compute path"
    rationale = (
        "wall-clock reads leak into artifacts and flake comparisons; "
        "use time.monotonic() for scheduling, stamp outputs at the edge"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if _attr_chain(node.func) == ["time", "time"]:
                yield self.finding(
                    source,
                    node,
                    "time.time() in a deterministic tree; use "
                    "time.monotonic() for intervals or stamp at the "
                    "CLI/reporting edge",
                )
