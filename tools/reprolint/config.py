"""Repo-aware configuration: which trees each invariant governs.

reprolint is deliberately *not* generic — every constant here names a
real seam of this repository. Keep the lists in sync with the module
docstrings they mirror (``repro.data.matrix`` for the backend split,
``repro.durability.faults`` / ``repro.faults.plan`` for the fault-point
registry).
"""

from __future__ import annotations

#: Trees whose outputs must be bit-identical across processes and
#: re-runs: the similarity core, the dataflow engine, the serving and
#: durability layers. The gateway is excluded on purpose — its backoff
#: jitter and hedging are *intentionally* nondeterministic.
DETERMINISTIC_TREES = (
    "src/repro/cf/",
    "src/repro/core/",
    "src/repro/data/",
    "src/repro/durability/",
    "src/repro/engine/",
    "src/repro/serving/",
    "src/repro/similarity/",
)

#: The one module allowed to consume entropy freely: the synthetic
#: trace generator is seeded at its API boundary.
DETERMINISM_EXEMPT = ("src/repro/data/synthetic.py",)

#: Modules that implement the NumPy-vs-pure-python dual-backend
#: dispatch (``try: import numpy as _np`` + ``use_numpy`` branches).
#: Only these may import numpy *and* they must keep their pure
#: branches numpy-free.
DISPATCH_MODULES = (
    "src/repro/cf/item_knn.py",
    "src/repro/data/matrix.py",
    "src/repro/serving/service.py",
    "src/repro/serving/snapshot.py",
    "src/repro/similarity/knn.py",
)

#: NumPy-native features with no pure-python contract: the ALS
#: competitor, the privacy mechanisms, the AlterEgo sampler and the
#: synthetic generator (all documented numpy-only in README).
NUMPY_NATIVE = (
    "src/repro/competitors/als.py",
    "src/repro/core/alterego.py",
    "src/repro/data/synthetic.py",
    "src/repro/engine/als_job.py",
    "src/repro/privacy/",
)

#: Where async code runs on the event loop and must neither block it
#: nor swallow cancellation.
ASYNC_TREES = ("src/repro/gateway/", "src/repro/cli.py")

#: Canonical roots for the fault-point registry: declarations live in
#: src/, references (fault plans, crash-point env activation) live in
#: tests/ and scripts/.
FAULT_DECL_ROOTS = ("src",)
FAULT_REF_ROOTS = ("tests", "scripts")

#: Point names under this namespace are reserved for unit tests of the
#: fault-plan machinery itself (rule validation, glob matching, the
#: decide() schedule) and are not required to resolve to a src/
#: declaration.
SYNTHETIC_POINT_PREFIX = "test."

#: The default committed baseline location (repo-relative).
DEFAULT_BASELINE = "tools/reprolint/baseline.json"


def in_trees(rel: str, trees: tuple[str, ...]) -> bool:
    """Whether repo-relative *rel* lives under any of *trees* (a
    trailing-slash entry scopes a directory, others match exactly)."""
    for tree in trees:
        if tree.endswith("/"):
            if rel.startswith(tree):
                return True
        elif rel == tree:
            return True
    return False
