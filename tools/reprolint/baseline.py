"""The committed JSON baseline: grandfathered findings.

A baseline entry matches on ``(rule, path, obj, message)`` — no line
numbers, so edits elsewhere in a file do not un-suppress an old
finding, while moving or editing the flagged code itself does (the
message embeds the offending names). ``python -m reprolint baseline``
regenerates the file from the current tree; review the diff like any
other code change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from reprolint.core import Finding

FORMAT_VERSION = 1

_KEY_FIELDS = ("rule", "path", "obj", "message")


def _key(entry: dict) -> tuple:
    return tuple(entry.get(field, "") for field in _KEY_FIELDS)


def finding_key(finding: Finding) -> tuple:
    return (finding.rule, finding.path, finding.obj, finding.message)


def load(path: Path) -> list[dict]:
    """Entries from *path*; a missing file is an empty baseline."""
    if not path.is_file():
        return []
    payload = json.loads(path.read_text(encoding="utf-8"))
    if (not isinstance(payload, dict) or payload.get("format") != "reprolint-baseline"):
        raise ValueError(f"{path} is not a reprolint baseline file")
    return list(payload.get("entries", []))


def save(path: Path, findings: Iterable[Finding]) -> int:
    """Write a baseline covering *findings*; returns the entry count.
    Entries are sorted and de-duplicated so regeneration is a stable,
    reviewable diff."""
    entries = sorted(
        {
            finding_key(finding): {
                "rule": finding.rule,
                "name": finding.name,
                "path": finding.path,
                "obj": finding.obj,
                "message": finding.message,
            }
            for finding in findings
        }.values(),
        key=_key,
    )
    payload = {
        "format": "reprolint-baseline",
        "format_version": FORMAT_VERSION,
        "entries": entries,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def split(
    findings: Sequence[Finding], entries: Sequence[dict]
) -> tuple[list[Finding], list[Finding]]:
    """Partition *findings* into (fresh, baselined)."""
    keys = {_key(entry) for entry in entries}
    fresh: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        if finding_key(finding) in keys:
            baselined.append(finding)
        else:
            fresh.append(finding)
    return fresh, baselined
