"""The reprolint command line.

``check`` exits 0 when clean (inline suppressions and the committed
baseline both count as clean), 1 when any error-severity finding
remains, 2 on usage or parse problems. ``list-points`` prints the
fault/crash point registry extracted from ``src/``. ``baseline``
regenerates the committed baseline from the current findings.
"""

from __future__ import annotations

import argparse
import sys
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Sequence, TextIO

from reprolint import baseline as baseline_mod
from reprolint.config import DEFAULT_BASELINE
from reprolint.core import Checker, Severity
from reprolint.reporters import report_json, report_text
from reprolint.rules import ALL_RULES
from reprolint.rules.faultpoints import load_registry

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=("repo-aware static analysis for the X-Map reproduction"),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (default: the current directory)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="lint paths and report findings")
    check.add_argument("paths", nargs="+", help="files or directories to lint")
    check.add_argument("--format", choices=("text", "json"), default="text")
    check.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    check.add_argument(
        "--no-baseline",
        action="store_true",
        help="report baselined findings too",
    )

    points = commands.add_parser(
        "list-points",
        help="print the named fault/crash point registry from src/",
    )
    points.add_argument("--format", choices=("text", "json"), default="text")

    rebase = commands.add_parser(
        "baseline",
        help="regenerate the committed baseline from current findings",
    )
    rebase.add_argument("paths", nargs="+")
    rebase.add_argument("--baseline", default=None)
    return parser


def _resolve_paths(raw: Sequence[str], stderr: TextIO) -> list[Path] | None:
    paths = []
    for entry in raw:
        path = Path(entry)
        if not path.exists():
            stderr.write(f"reprolint: no such path: {entry}\n")
            return None
        paths.append(path)
    return paths


def _cmd_check(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    root = Path(args.root)
    paths = _resolve_paths(args.paths, stderr)
    if paths is None:
        return EXIT_ERROR
    checker = Checker(ALL_RULES, root)
    result = checker.run(paths)
    baseline_path = Path(
        args.baseline
        if args.baseline is not None
        else root / DEFAULT_BASELINE
    )
    if args.no_baseline:
        fresh, baselined = list(result.findings), []
    else:
        try:
            entries = baseline_mod.load(baseline_path)
        except (ValueError, OSError) as exc:
            stderr.write(f"reprolint: bad baseline: {exc}\n")
            return EXIT_ERROR
        fresh, baselined = baseline_mod.split(result.findings, entries)
    reporter = report_json if args.format == "json" else report_text
    reporter(
        stdout,
        fresh,
        n_files=result.n_files,
        n_suppressed=len(result.suppressed),
        n_baselined=len(baselined),
        parse_errors=result.parse_errors,
    )
    if result.parse_errors:
        return EXIT_ERROR
    if any(f.severity is Severity.ERROR for f in fresh):
        return EXIT_FINDINGS
    return EXIT_CLEAN


def _cmd_list_points(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    root = Path(args.root)
    declarations, references = load_registry(root)
    by_point: dict[str, list] = {}
    for decl in declarations:
        by_point.setdefault(decl.point, []).append(decl)
    ref_patterns = sorted({ref.pattern for ref in references})
    if args.format == "json":
        import json

        payload = {
            "format": "reprolint-points",
            "points": [
                {
                    "point": point,
                    "sites": [
                        {"path": d.path, "line": d.line}
                        for d in sorted(decls, key=lambda d: (d.path, d.line))
                    ],
                    "referenced_by": [
                        pattern
                        for pattern in ref_patterns
                        if pattern == "*"
                        or fnmatchcase(point, pattern)
                    ],
                }
                for point, decls in sorted(by_point.items())
            ],
        }
        stdout.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return EXIT_CLEAN
    width = max((len(point) for point in by_point), default=0)
    for point, decls in sorted(by_point.items()):
        sites = ", ".join(
            f"{d.path}:{d.line}"
            for d in sorted(decls, key=lambda d: (d.path, d.line))
        )
        stdout.write(f"{point.ljust(width)}  {sites}\n")
    stdout.write(
        f"{len(by_point)} named points at "
        f"{len(declarations)} sites; referenced by "
        f"{len(ref_patterns)} distinct test/script patterns\n"
    )
    return EXIT_CLEAN


def _cmd_baseline(args: argparse.Namespace, stdout: TextIO, stderr: TextIO) -> int:
    root = Path(args.root)
    paths = _resolve_paths(args.paths, stderr)
    if paths is None:
        return EXIT_ERROR
    checker = Checker(ALL_RULES, root)
    result = checker.run(paths)
    if result.parse_errors:
        for error in result.parse_errors:
            stderr.write(f"PARSE ERROR: {error}\n")
        return EXIT_ERROR
    baseline_path = Path(
        args.baseline
        if args.baseline is not None
        else root / DEFAULT_BASELINE
    )
    count = baseline_mod.save(baseline_path, result.findings)
    stdout.write(
        f"wrote {count} baseline entr"
        f"{'y' if count == 1 else 'ies'} to {baseline_path}\n"
    )
    return EXIT_CLEAN


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    stdout, stderr = sys.stdout, sys.stderr
    if args.command == "check":
        return _cmd_check(args, stdout, stderr)
    if args.command == "list-points":
        return _cmd_list_points(args, stdout, stderr)
    if args.command == "baseline":
        return _cmd_baseline(args, stdout, stderr)
    parser.error(f"unknown command {args.command!r}")
    return EXIT_ERROR  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
