"""Text and JSON reporters for check results."""

from __future__ import annotations

import json
from typing import Sequence, TextIO

from reprolint.core import Finding


def report_text(
    stream: TextIO,
    findings: Sequence[Finding],
    *,
    n_files: int,
    n_suppressed: int,
    n_baselined: int,
    parse_errors: Sequence[str] = (),
) -> None:
    for error in parse_errors:
        stream.write(f"PARSE ERROR: {error}\n")
    for finding in findings:
        stream.write(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} [{finding.severity.value}] "
            f"{finding.message} ({finding.name})\n"
        )
    n_errors = sum(1 for f in findings if f.severity.value == "error")
    n_warnings = len(findings) - n_errors
    summary = (
        f"{n_files} files checked: {n_errors} error(s), "
        f"{n_warnings} warning(s)"
    )
    extras = []
    if n_suppressed:
        extras.append(f"{n_suppressed} inline-suppressed")
    if n_baselined:
        extras.append(f"{n_baselined} baselined")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    stream.write(summary + "\n")


def report_json(
    stream: TextIO,
    findings: Sequence[Finding],
    *,
    n_files: int,
    n_suppressed: int,
    n_baselined: int,
    parse_errors: Sequence[str] = (),
) -> None:
    payload = {
        "format": "reprolint-report",
        "n_files": n_files,
        "n_suppressed": n_suppressed,
        "n_baselined": n_baselined,
        "parse_errors": list(parse_errors),
        "findings": [finding.as_dict() for finding in findings],
    }
    stream.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
