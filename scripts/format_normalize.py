"""Offline formatter normalization for environments without ruff.

``ruff format`` (the authority, enforced in CI) is not installed in
every maintenance environment, so this script applies the *mechanical
subset* of its style so hand-edited files land formatter-stable:

* strip trailing whitespace; exactly one newline at EOF;
* cap runs of blank lines at two;
* prefer double-quoted strings when that needs no extra escaping
  (prefixes preserved; strings containing ``"`` are left alone);
* collapse a multi-line bracketed group onto one line when it fits in
  the 88-column limit and carries no magic trailing comma — the same
  join rule the formatter applies.

Deliberately out of scope (left to ruff in CI): exploding too-long
lines, implicit string concatenations, comment placement, and blank
lines around definitions. The script is conservative: any group with
comments, multi-line strings, or adjacent string literals inside is
left untouched.

Usage::

    python scripts/format_normalize.py [--check] PATH [PATH ...]

``--check`` lists files that would change and exits 1 if any would.
"""

from __future__ import annotations

import argparse
import io
import re
import sys
import tokenize
from pathlib import Path

LINE_LIMIT = 88

_OPENERS = {"(": ")", "[": "]", "{": "}"}
_CLOSERS = set(_OPENERS.values())


def _physical_lines(text: str) -> list[str]:
    """Split on ``\\n`` only, keeping the newlines. ``str.splitlines``
    also splits on form feeds and U+2028, which tokenize does not —
    mixing the two desynchronizes row numbers."""
    pieces = text.split("\n")
    lines = [piece + "\n" for piece in pieces[:-1]]
    if pieces[-1]:
        lines.append(pieces[-1])
    return lines


def _protected_rows(text: str) -> set[int]:
    """1-based rows whose terminating newline lies inside a multi-line
    string literal: their trailing whitespace and blank-line runs are
    string *content*, not formatting."""
    rows: set[int] = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.STRING and token.start[0] != token.end[0]:
                rows.update(range(token.start[0], token.end[0]))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable: protect everything (no whitespace edits).
        return set(range(1, text.count("\n") + 2))
    return rows

_QUOTE_RE = re.compile(
    r"\A([A-Za-z]*)('''|')(.*)\2\Z",
    re.DOTALL,
)


def _normalize_quote(token_text: str) -> str:
    """Single-quoted -> double-quoted when that adds no escaping."""
    match = _QUOTE_RE.match(token_text)
    if match is None:
        return token_text
    prefix, quote, body = match.groups()
    if '"' in body:
        return token_text
    if "r" not in prefix.lower() and "\\'" in body:
        # \' is a redundant escape inside double quotes; drop it the
        # way the formatter does (but never inside raw strings).
        body = body.replace("\\'", "'")
    if body.endswith("\\"):
        return token_text
    return prefix + '"' * len(quote) + body + '"' * len(quote)


def normalize_quotes(text: str) -> str:
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return text
    lines = _physical_lines(text)
    # Replace from the last token backward so earlier coordinates stay
    # valid; only same-line or triple-quoted STRING tokens qualify.
    for token in reversed(tokens):
        if token.type != tokenize.STRING:
            continue
        replacement = _normalize_quote(token.string)
        if replacement == token.string:
            continue
        (srow, scol), (erow, ecol) = token.start, token.end
        if srow == erow:
            line = lines[srow - 1]
            lines[srow - 1] = line[:scol] + replacement + line[ecol:]
        else:
            tail = lines[erow - 1][ecol:]
            lines[srow - 1 : erow] = [lines[srow - 1][:scol] + replacement + tail]
    return "".join(lines)


def _group_is_joinable(tokens: list) -> bool:
    """Whether the tokens strictly inside a bracket pair allow the
    single-line join (no comments, no multi-line strings, no implicit
    string concatenation, no nested multi-line group left unjoined,
    no magic trailing comma)."""
    previous_real = None
    for token in tokens:
        if token.type == tokenize.COMMENT:
            return False
        if token.type == tokenize.STRING:
            if token.start[0] != token.end[0]:
                return False
            if (previous_real is not None and previous_real.type == tokenize.STRING):
                return False
        if token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
        ):
            previous_real = token
    if previous_real is not None and previous_real.string == ",":
        return False  # magic trailing comma: stays exploded
    return True


def _join_group(lines: list[str], start: tuple, end: tuple) -> str | None:
    """Render the source between bracket tokens at *start* / *end*
    (inclusive) as one line, or None when the join does not apply.
    Line breaks become a single space, except right after an opener or
    right before a closer; a trailing comma before the closer drops."""
    (srow, scol), (erow, ecol) = start, end
    segment = "".join(
        [lines[srow - 1][scol:]]
        + [lines[row] for row in range(srow, erow - 1)]
        + [lines[erow - 1][:ecol]]
    )
    try:
        tokens = [
            token
            for token in tokenize.generate_tokens(io.StringIO(segment).readline)
            if token.type
            not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            )
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return None
    if not _group_is_joinable(tokens[1:-1]):
        return None
    parts: list[str] = []
    for index, token in enumerate(tokens):
        if index == 0:
            parts.append(token.string)
            continue
        previous = tokens[index - 1]
        if index == len(tokens) - 1 and previous.string == ",":
            parts.pop()  # the join removes a now-trailing comma
            previous = tokens[index - 2]
        if previous.end[0] == token.start[0]:
            # Same original line: keep the original spacing.
            gap = token.start[1] - previous.end[1]
            parts.append(" " * gap + token.string)
        elif previous.string in _OPENERS or token.string in _CLOSERS:
            parts.append(token.string)
        else:
            parts.append(" " + token.string)
    return "".join(parts)


def join_collapsible_groups(text: str) -> str:
    """Repeatedly collapse innermost multi-line bracket groups that
    fit within the line limit."""
    for _ in range(10000):  # fixpoint; bounded for safety
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return text
        lines = _physical_lines(text)
        stack: list = []
        target = None
        for token in tokens:
            if token.type != tokenize.OP:
                continue
            if token.string in _OPENERS:
                stack.append(token)
            elif token.string in _CLOSERS and stack:
                opener = stack.pop()
                if opener.start[0] == token.end[0]:
                    continue  # already one line
                joined = _join_group(lines, opener.start, token.end)
                if joined is None:
                    continue
                head = lines[opener.start[0] - 1][: opener.start[1]]
                tail = lines[token.end[0] - 1][token.end[1] :]
                line = head + joined + tail.rstrip("\n")
                if len(line) > LINE_LIMIT:
                    continue
                # Innermost-first: the first joinable group wins this
                # pass; the loop re-tokenizes and finds the next.
                target = (opener.start[0], token.end[0], line)
                break
        if target is None:
            return text
        first, last, line = target
        lines[first - 1 : last] = [line + "\n"]
        text = "".join(lines)
    return text


def normalize_whitespace(text: str) -> str:
    protected = _protected_rows(text)
    lines = [line.rstrip("\n") for line in _physical_lines(text)]
    result: list[str] = []
    blanks = 0
    for row, line in enumerate(lines, start=1):
        if row not in protected:
            line = line.rstrip()
        if line == "" and row not in protected:
            blanks += 1
            if blanks > 2:
                continue
        else:
            blanks = 0
        result.append(line)
    while result and result[-1] == "":
        result.pop()
    return "\n".join(result) + "\n" if result else ""


def normalize(text: str) -> str:
    text = normalize_quotes(text)
    text = join_collapsible_groups(text)
    text = normalize_whitespace(text)
    return text


def _python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_file():
            files.append(path)
        else:
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
    return files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", type=Path)
    parser.add_argument(
        "--check",
        action="store_true",
        help="report files that would change; exit 1 if any",
    )
    args = parser.parse_args(argv)
    changed: list[Path] = []
    for path in _python_files(args.paths):
        original = path.read_text(encoding="utf-8")
        updated = normalize(original)
        try:
            compile(updated, str(path), "exec")
        except SyntaxError:
            # Never break a file: keep the original and say so.
            print(f"normalizer produced invalid output for {path}; skipped")
            continue
        if updated != original:
            changed.append(path)
            if not args.check:
                path.write_text(updated, encoding="utf-8")
    for path in changed:
        verb = "would reformat" if args.check else "reformatted"
        print(f"{verb} {path}")
    if args.check and changed:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
