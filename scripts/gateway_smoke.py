"""Gateway smoke: 2 workers, live publishes, every response diffed.

What CI's gateway-smoke job runs::

    python scripts/gateway_smoke.py [work_dir] [--pure-python] [--keep]

The driver builds a small rating trace and publishes it as version 1
of a :class:`~repro.serving.watch.SnapshotCatalog`, starts the real
networked topology — a :class:`~repro.gateway.server.GatewayServer`
over a 2-worker :class:`~repro.gateway.supervisor.WorkerPool`, each
worker a fresh subprocess memmapping the catalog — then fires
concurrent mixed traffic (single-user ``/recommend``, which exercises
the coalescing window, plus ``/similar_items``) from several client
threads **while publishing two incremental rating batches** through
the live registry. The update batches re-rate well-connected items, so
consecutive versions genuinely rank differently — a mixed response
could not pass as both.

Every response is tagged by the gateway with the single model version
that served it. The check loads each published version's snapshot
directly from the catalog (the same bytes the workers mapped) and
asserts, per response:

* the payload matches an in-process
  :class:`~repro.serving.service.RecommendationService` over **that
  version** within 1e-9 — which is simultaneously the correctness
  check and the no-mixing check (a response blending two versions
  matches neither reference);
* versions never step backwards within a client's request sequence
  (the fleet's ``min_version`` handshake promises monotonic reads);
* at least two versions appear in the responses overall, i.e. the
  publishes really overlapped the traffic — otherwise the run proved
  nothing and the driver fails it.

After the traffic lands (fleet still up) the driver scrapes
``GET /metrics`` and reconciles the server's telemetry against the
clients' own tallies: every parsed request is accounted for by a
response counter (``requests_total == Σ responses_total + 1`` for the
in-flight scrape itself), the 200 count equals the responses the
clients collected, the stale-response counter equals the stale-tagged
payloads the clients saw (zero here — no faults, no degraded mode),
the coalescer count equals the single-user requests completed, and
worker-side counters really crossed the process boundary. A telemetry
layer that disagrees with the clients it served fails the smoke.

The work directory defaults to a fresh temp dir removed at exit; pass
``--keep`` (or an explicit directory plus ``--keep``) to inspect it.
"""

from __future__ import annotations

import argparse
import asyncio
import atexit
import http.client
import json
import random
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

TOLERANCE = 1e-9
N_USERS = 60
N_ITEMS = 40
PER_USER = 8
CF_K = 20
TOP_N = 5
SIMILAR_K = 4
N_CLIENTS = 6
REQUESTS_PER_CLIENT = 30
N_PUBLISHES = 2


def _table(seed: int):
    from repro.data.ratings import Rating, RatingTable

    rng = random.Random(seed)
    ratings = []
    for user in range(N_USERS):
        for item in rng.sample(range(N_ITEMS), PER_USER):
            ratings.append(Rating(
                f"u{user:03d}", f"i{item:03d}",
                float(rng.randint(1, 5)), len(ratings)))
    return RatingTable(ratings)


def _update_batch(round_number: int):
    """Re-rate popular existing items so the new version really ranks
    differently (an update only touching fresh corners could leave
    v(N) == v(N+1) on the probe set and mask mixing)."""
    from repro.data.ratings import Rating

    base = 100000 + round_number * 10
    flip = 5.0 if round_number % 2 else 1.0
    return [
        Rating("u001", "i000", flip, base),
        Rating("u002", "i001", 6.0 - flip, base + 1),
        Rating("u003", "i002", flip, base + 2),
        Rating("u004", "i003", 6.0 - flip, base + 3),
    ]


def _get(port: int, target: str) -> dict:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", target)
        response = connection.getresponse()
        body = response.read()
        if response.status != 200:
            raise RuntimeError(f"{target} -> HTTP {response.status}: "
                               f"{body[:200]!r}")
        return json.loads(body)
    finally:
        connection.close()


def _scrape_metrics(port: int) -> dict[str, float]:
    """GET /metrics, parsed to ``{'name{labels}': value}``."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        body = response.read()
        if response.status != 200:
            raise RuntimeError(f"/metrics -> HTTP {response.status}: "
                               f"{body[:200]!r}")
    finally:
        connection.close()
    samples: dict[str, float] = {}
    for line in body.decode("utf-8").splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples


def _client_loop(port: int, client_id: int, users: list[str],
                 items: list[str], out: list, errors: list,
                 stales: list) -> None:
    """One client thread's request sequence; records
    (client_id, seq, kind, key, version, payload) per response, and
    every stale-tagged payload into *stales* (the client-side tally
    the /metrics gate reconciles against)."""
    rng = random.Random(1000 + client_id)
    for seq in range(REQUESTS_PER_CLIENT):
        kind = "similar" if seq % 3 == 2 else "recommend"
        # Pace the stream so the run spans the publishes (and worker
        # convergence) instead of finishing in one burst.
        time.sleep(rng.uniform(0.002, 0.012))
        try:
            if kind == "recommend":
                user = rng.choice(users)
                payload = _get(port, f"/recommend?user={user}&n={TOP_N}")
                out.append((client_id, seq, kind, user,
                            payload["version"],
                            payload["recommendations"]))
            else:
                item = rng.choice(items)
                payload = _get(port, f"/similar_items?item={item}&k={SIMILAR_K}")
                out.append((client_id, seq, kind, item,
                            payload["version"], payload["neighbors"]))
            if payload.get("stale"):
                stales.append((client_id, seq))
        except Exception as exc:  # noqa: BLE001 - recorded, then fatal
            errors.append(f"client {client_id} request {seq}: {exc}")
            return


async def _drive_traffic(work: Path, registry, pure_python: bool,
                         users: list[str], items: list[str]):
    from repro.gateway import GatewayServer, WorkerPool

    from concurrent.futures import ThreadPoolExecutor

    pool = WorkerPool(work / "catalog", n_workers=2,
                      poll_interval=0.05, pure_python=pure_python)
    await pool.start()
    server = GatewayServer(pool, max_delay=0.005)
    await server.start()
    loop = asyncio.get_running_loop()
    responses: list = []
    errors: list = []
    stales: list = []
    metrics: dict = {}
    # A dedicated executor: the default pool is tiny on small machines
    # and the publisher must never queue behind the client threads.
    executor = ThreadPoolExecutor(max_workers=N_CLIENTS + 2)
    try:
        clients = [
            loop.run_in_executor(
                executor, _client_loop, server.port, client_id, users,
                items, responses, errors, stales)
            for client_id in range(N_CLIENTS)]

        total = N_CLIENTS * REQUESTS_PER_CLIENT
        for round_number in range(1, N_PUBLISHES + 1):
            # Publish when roughly round/(N+1) of the traffic has
            # landed, so every version serves a real slice of it.
            threshold = total * round_number // (N_PUBLISHES + 1)
            deadline = time.monotonic() + 60
            while (len(responses) < threshold
                   and time.monotonic() < deadline and not errors):
                await asyncio.sleep(0.005)
            version, _stats = await loop.run_in_executor(
                executor, registry.update, _update_batch(round_number))
            print(f"gateway-smoke: published v{version} after "
                  f"{len(responses)}/{total} responses")
        await asyncio.gather(*clients)
        stats = pool.stats()
        # Scrape the fleet-merged /metrics while everything is still
        # up; the conservation gate reconciles it against the
        # client-side tallies after the fleet is gone.
        metrics = await loop.run_in_executor(executor, _scrape_metrics, server.port)
    finally:
        await server.close()
        await pool.close()
        executor.shutdown(wait=False)
    return responses, errors, stales, metrics, stats


def _check_metrics(metrics: dict, responses: list, stales: list) -> list[str]:
    """Conservation invariants between the scraped /metrics and what
    the clients actually observed. The scrape itself is the one
    request counted at ingress but not yet answered when the snapshot
    was taken, hence the ``+ 1``."""
    failures = []
    answered = sum(
        value for key, value in metrics.items()
        if key.startswith("gateway_http_responses_total{"))
    requests = metrics.get("gateway_http_requests_total", -1.0)
    if requests != answered + 1:
        failures.append(
            f"/metrics conservation broken: requests_total={requests} "
            f"!= {answered} answered + 1 in-flight scrape")
    n_ok = metrics.get('gateway_http_responses_total{code="200"}', 0.0)
    if n_ok != len(responses):
        failures.append(
            f"/metrics counted {n_ok} HTTP 200s, clients saw "
            f"{len(responses)}")
    n_stale = metrics.get("gateway_stale_responses_total", 0.0)
    if n_stale != len(stales):
        failures.append(
            f"/metrics counted {n_stale} stale responses, clients "
            f"tallied {len(stales)}")
    n_recommend = sum(1 for r in responses if r[2] == "recommend")
    coalesced = metrics.get("gateway_coalesced_requests_total", 0.0)
    if coalesced != n_recommend:
        failures.append(
            f"coalescer saw {coalesced} single-user requests, clients "
            f"completed {n_recommend}")
    if metrics.get('worker_requests_total{method="recommend"}', 0.0) <= 0:
        failures.append(
            "no worker-side request counts crossed the process "
            "boundary into /metrics")
    return failures


def _reference_services(catalog, pure_python: bool) -> dict:
    from repro.serving.service import RecommendationService
    from repro.serving.snapshot import ModelSnapshot

    references = {}
    for version in catalog.versions():
        snapshot = ModelSnapshot.load(
            catalog.root / f"v-{version:08d}",
            use_numpy=False if pure_python else None)
        references[version] = RecommendationService(snapshot)
    return references


def _verify(responses: list, references: dict) -> list[str]:
    failures = []
    last_seen: dict[int, int] = {}
    for client_id, seq, kind, key, version, payload in responses:
        if version not in references:
            failures.append(
                f"client {client_id} seq {seq}: version {version} was "
                f"never published")
            continue
        previous = last_seen.get(client_id, 0)
        if version < previous:
            failures.append(
                f"client {client_id} seq {seq}: version went backwards "
                f"({previous} -> {version}) — monotonic reads broken")
        last_seen[client_id] = max(previous, version)
        service = references[version]
        if kind == "recommend":
            _, expected = service.recommend_batch_pinned([key], TOP_N)
            expected = expected[0]
        else:
            _, expected = service.similar_items_pinned(key, SIMILAR_K)
        got = [tuple(pair) for pair in payload]
        if [item for item, _ in got] != [item for item, _ in expected]:
            failures.append(
                f"client {client_id} seq {seq} ({kind} {key!r}): items "
                f"{got} do not match v{version}'s {expected} — "
                f"cross-version mixing or corruption")
            continue
        worst = max(
            (abs(got_score - want_score)
             for (_, got_score), (_, want_score) in zip(got, expected)),
            default=0.0)
        if worst > TOLERANCE:
            failures.append(
                f"client {client_id} seq {seq} ({kind} {key!r}): "
                f"max|Δscore|={worst:.3e} vs v{version} exceeds "
                f"{TOLERANCE}")
    return failures


def _drive(work_dir: str, pure_python: bool, seed: int) -> int:
    from repro.engine.sharded_sweep import IncrementalSweep
    from repro.serving.registry import ModelRegistry
    from repro.serving.watch import SnapshotCatalog

    work = Path(work_dir)
    work.mkdir(parents=True, exist_ok=True)
    table = _table(seed)
    sweep = IncrementalSweep(table, n_shards=1, with_index=True)
    registry = ModelRegistry(sweep=sweep, cf_k=CF_K)
    catalog = SnapshotCatalog(work / "catalog")
    catalog.attach(registry)
    users = [f"u{i:03d}" for i in range(N_USERS)]
    items = [f"i{i:03d}" for i in range(N_ITEMS)]

    responses, errors, stales, metrics, stats = asyncio.run(
        _drive_traffic(work, registry, pure_python, users, items))
    for error in errors:
        print(f"gateway-smoke: request FAILED: {error}")

    references = _reference_services(catalog, pure_python)
    failures = _verify(responses, references)
    if not errors:
        failures.extend(_check_metrics(metrics, responses, stales))
    versions_seen = sorted({record[4] for record in responses})
    if len(versions_seen) < 2:
        failures.append(
            f"only versions {versions_seen} appeared in responses — "
            f"the publishes did not overlap the traffic, nothing was "
            f"proved")
    expected_total = N_CLIENTS * REQUESTS_PER_CLIENT
    if not errors and len(responses) != expected_total:
        failures.append(f"{len(responses)}/{expected_total} responses "
                        f"arrived")
    for failure in failures[:10]:
        print(f"gateway-smoke: {failure}")

    label = "pure-python" if pure_python else "numpy"
    ok = not failures and not errors
    per_version = {
        version: sum(1 for r in responses if r[4] == version)
        for version in versions_seen}
    print(f"gateway-smoke[{label}]: {len(responses)} responses over "
          f"versions {per_version}, fleet={stats['alive']} alive / "
          f"{stats['n_restarts']} restarts, "
          f"metrics gate over {len(metrics)} samples, "
          f"diff<={TOLERANCE:g} -> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="networked gateway smoke: concurrent mixed traffic "
                    "over 2 workers during live incremental publishes")
    parser.add_argument("work_dir", nargs="?", default=None,
                        help="working directory (default: fresh temp "
                             "dir, removed at exit)")
    parser.add_argument("--pure-python", action="store_true",
                        help="run the worker fleet on the pure-Python "
                             "backend")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--keep", action="store_true",
                        help="keep the working directory for debugging")
    args = parser.parse_args(argv)
    work_dir = args.work_dir or tempfile.mkdtemp(prefix="gateway-smoke-")
    if not args.keep:
        atexit.register(shutil.rmtree, work_dir, ignore_errors=True)
    return _drive(work_dir, args.pure_python, args.seed)


if __name__ == "__main__":
    raise SystemExit(main())
