"""Crash smoke: ``kill -9`` a durable writer mid-stream → recover → diff.

Driver mode (what CI's crash-recovery job runs)::

    python scripts/crash_smoke.py [work_dir] [seed] [--keep]

The work directory defaults to a fresh temp dir; it is removed at exit
(even on failure) unless ``--keep`` is passed — CI passes an explicit
directory **with** ``--keep`` because a later step inspects the killed
store, while repeated local runs leave nothing behind.

generates a deterministic rating plan (a base table plus a stream of
append batches), then for each backend leg (NumPy and
``REPRO_PURE_PYTHON=1``) spawns a **writer subprocess** that builds a
:class:`~repro.durability.manager.DurableSweep` on a fresh store
directory and applies the batches one by one — group commit of 1, fsync
on, checkpoint every 7 batches — and ``SIGKILL``\\ s it at a randomized
moment (possibly mid-append, mid-fsync, or mid-checkpoint; the seed is
printed so any run reproduces). A fresh **check subprocess** then runs
:meth:`~repro.durability.manager.DurableSweep.recover` on the killed
store, rebuilds the *never-crashed* reference (a plain
:class:`~repro.engine.sharded_sweep.IncrementalSweep` fed exactly the
batches the log made durable) and diffs at the serving level with the
shared :func:`serving_smoke.diff_serving` helper: every prediction must
agree within 1e-9 and every Top-N list item for item.

Writer mode / check mode (the subprocesses)::

    python scripts/crash_smoke.py --writer <store_dir> <plan.json>
    python scripts/crash_smoke.py --check  <store_dir> <plan.json>

The WAL-first discipline is what makes the check exact: with group
commit 1 every batch is durable before any in-memory state moves, so
the recovered ``applied_seq`` names precisely the plan prefix the
reference must replay.
"""

from __future__ import annotations

import argparse
import atexit
import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from serving_smoke import TOLERANCE, diff_serving  # noqa: E402

N_BASE = 80
N_BATCHES = 40
BATCH_SIZE = 3
N_SHARDS = 4
CF_K = 10
CHECKPOINT_EVERY = 7
TOP_N = 5
N_PROBE_USERS = 15
N_PROBE_ITEMS = 15
WRITER_DELAY = 0.05  # seconds between batches — the kill window


def _plan(seed: int) -> dict:
    """Base ratings plus append batches (new users / items included)."""
    rng = random.Random(seed)
    pairs: set[tuple[str, str]] = set()

    def fresh_pair(n_users: int, n_items: int) -> tuple[str, str]:
        while True:
            pair = (f"u{rng.randrange(n_users)}", f"i{rng.randrange(n_items)}")
            if pair not in pairs:
                pairs.add(pair)
                return pair

    timestep = 0
    base = []
    for _ in range(N_BASE):
        user, item = fresh_pair(20, 20)
        base.append([user, item, float(rng.choice([1, 2, 3, 4, 5])), timestep])
        timestep += 1
    batches = []
    for _ in range(N_BATCHES):
        batch = []
        for _ in range(BATCH_SIZE):
            user, item = fresh_pair(26, 26)
            batch.append([user, item, float(rng.choice([1, 2, 3, 4, 5])), timestep])
            timestep += 1
        batches.append(batch)
    return {"base": base, "batches": batches}


def _writer(store_dir: str, plan_path: str) -> int:
    from repro.data.ratings import Rating, RatingTable
    from repro.durability.manager import CheckpointPolicy, DurableSweep

    plan = json.loads(Path(plan_path).read_text(encoding="utf-8"))
    base = RatingTable([Rating(*record) for record in plan["base"]])
    durable = DurableSweep(
        store_dir, base, n_shards=N_SHARDS, with_significance=True,
        cf_k=CF_K, policy=CheckpointPolicy(max_batches=CHECKPOINT_EVERY),
        group_commit=1, fsync=True)
    for batch in plan["batches"]:
        durable.update([Rating(*record) for record in batch])
        time.sleep(WRITER_DELAY)
    durable.close()
    return 0


def _check(store_dir: str, plan_path: str) -> int:
    from repro.data.ratings import Rating, RatingTable
    from repro.durability.manager import CHECKPOINT_FILE, DurableSweep
    from repro.engine.sharded_sweep import IncrementalSweep
    from repro.serving.service import RecommendationService
    from repro.serving.snapshot import ModelSnapshot

    if not (Path(store_dir) / CHECKPOINT_FILE).exists():
        # Killed before the first checkpoint pointer landed: the store
        # never existed, so nothing was acknowledged and there is
        # nothing to recover. (The driver's delay floor makes this
        # rare; it is not a failure of the durability contract.)
        print(f"crash-smoke: {store_dir} died before its first "
              f"checkpoint — nothing durable to recover (ok)")
        return 0

    plan = json.loads(Path(plan_path).read_text(encoding="utf-8"))
    durable = DurableSweep.recover(store_dir)
    report = durable.last_recovery
    applied = durable.applied_seq
    if not 0 <= applied <= len(plan["batches"]):
        print(f"crash-smoke: recovered applied_seq={applied} is outside "
              f"the plan (0..{len(plan['batches'])}) -> FAIL")
        return 1

    reference = IncrementalSweep(
        RatingTable([Rating(*record) for record in plan["base"]]),
        n_shards=N_SHARDS, with_significance=True, with_index=True)
    for batch in plan["batches"][:applied]:
        reference.update([Rating(*record) for record in batch])

    recovered_service = RecommendationService(ModelSnapshot.from_sweep(
        durable, cf_k=CF_K, positive_only=True))
    reference_service = RecommendationService(ModelSnapshot.from_sweep(
        reference, cf_k=CF_K, positive_only=True))
    users = sorted(reference.store.user_index)[:N_PROBE_USERS]
    items = sorted(reference.store.item_index)[:N_PROBE_ITEMS]
    reference_predict = {
        f"{user}\t{item}": reference_service.predict(user, item)
        for user in users for item in items}
    reference_topn = {user: reference_service.recommend(user, n=TOP_N)
                      for user in users}
    served_predict = {
        f"{user}\t{item}": recovered_service.predict(user, item)
        for user in users for item in items}
    served_topn = {user: recovered_service.recommend(user, n=TOP_N) for user in users}
    worst, topn_ok = diff_serving(reference_predict, reference_topn,
                                  served_predict, served_topn)
    ok = worst <= TOLERANCE and topn_ok
    repairs = "; ".join(report.log_repairs) or "none"
    backend = recovered_service.registry.current().backend
    print(f"crash-smoke: backend={backend} "
          f"applied={applied}/{len(plan['batches'])} "
          f"replayed={report.replayed_batches} repairs=[{repairs}] "
          f"max|Δpredict|={worst:.3e} "
          f"topn={'ok' if topn_ok else 'MISMATCH'} "
          f"-> {'PASS' if ok else 'FAIL'}")
    durable.close()
    return 0 if ok else 1


def _drive(work_dir: str, seed: int | None) -> int:
    if seed is None:
        seed = random.randrange(1 << 30)
    rng = random.Random(seed)
    work = Path(work_dir)
    work.mkdir(parents=True, exist_ok=True)
    plan_path = work / "plan.json"
    plan_path.write_text(json.dumps(_plan(seed)), encoding="utf-8")
    print(f"crash-smoke: seed={seed} "
          f"({N_BATCHES} batches x {BATCH_SIZE} ratings)")

    failures = 0
    for label, overrides in (("numpy", {"REPRO_PURE_PYTHON": ""}),
                             ("pure-python", {"REPRO_PURE_PYTHON": "1"})):
        store = work / f"store_{label}"
        env = {**os.environ, **overrides}
        writer = subprocess.Popen(
            [sys.executable, __file__, "--writer", str(store), str(plan_path)], env=env)
        # The floor clears store creation; the ceiling lands past the
        # stream's end often enough to also cover the clean-exit case.
        delay = rng.uniform(0.5, 1.0 + N_BATCHES * WRITER_DELAY)
        time.sleep(delay)
        if writer.poll() is None:
            writer.kill()  # SIGKILL: no atexit, no flush, no goodbye
            writer.wait()
            outcome = f"killed after {delay:.2f}s"
        else:
            outcome = f"finished before the {delay:.2f}s kill"
        print(f"crash-smoke[{label}]: writer {outcome}")
        check = subprocess.run(
            [sys.executable, __file__, "--check", str(store), str(plan_path)], env=env)
        failures += 0 if check.returncode == 0 else 1
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    if len(argv) == 4 and argv[1] == "--writer":
        return _writer(argv[2], argv[3])
    if len(argv) == 4 and argv[1] == "--check":
        return _check(argv[2], argv[3])
    parser = argparse.ArgumentParser(
        description="crash smoke: SIGKILL a durable writer mid-stream, "
                    "recover, diff served predictions")
    parser.add_argument("work_dir", nargs="?", default=None,
                        help="working directory (default: fresh temp "
                             "dir, removed at exit)")
    parser.add_argument("seed", nargs="?", type=int, default=None,
                        help="plan/kill-timing seed (printed by every "
                             "run for reproduction)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the working directory (CI passes "
                             "this when a later step inspects the "
                             "killed store)")
    args = parser.parse_args(argv[1:])
    work_dir = args.work_dir or tempfile.mkdtemp(prefix="crash-smoke-")
    if not args.keep:
        atexit.register(shutil.rmtree, work_dir, ignore_errors=True)
    return _drive(work_dir, args.seed)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
