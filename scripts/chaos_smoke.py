"""Chaos smoke: the gateway fleet under a seeded fault schedule.

What CI's chaos-smoke job runs::

    python scripts/chaos_smoke.py [work_dir] [--pure-python] [--keep]

Same oracle discipline as ``gateway_smoke.py`` — concurrent mixed
traffic over a 2-worker fleet during two live publishes, every 200
diffed within 1e-9 against an in-process reference pinned to the
response's tagged version — but the workers run under a **seeded
fault plan** (:mod:`repro.faults`) the whole time:

* the first spawned worker is SIGKILLed during snapshot load (the
  fleet must come up anyway, through the slot's backoff);
* a slice of requests hit injected retryable errors and mid-request
  SIGKILLs (the supervisor's retry loop absorbs both);
* a slice of outgoing frames are delayed, dropped (the gateway
  observes a hang and kills the worker) or corrupted (the gateway
  detects the torn stream) — hedged reads keep the latency sane while
  the breaker respawns the casualties.

A client request may take a few transparent retries, but **every
answer that comes back must be exactly right**: correct scores for
its tagged version, versions never stepping backwards per client.
Chaos may cost latency; it may never cost correctness.

Then three more legs:

* **shed probe** — a second server over the same fleet with a
  one-slot admission window (``max_inflight=1, max_queue=0``) takes a
  24-way concurrent burst: most requests must be shed with ``429`` +
  ``Retry-After`` (bounded queueing made explicit), and every ``200``
  that does get through is diffed like the rest. A shed is always
  correct; a wrong answer never is.
* **stale probe** — with the traffic done, ``allow_stale`` is enabled
  and the fleet's version floor inflated past anything the catalog
  holds (exactly what a dead worker that had served far ahead leaves
  behind): one request must come back ``200`` with ``"stale": true``
  and correct scores for its tagged version — degraded, explicit,
  never wrong.
* **drain** — ``server.drain()`` must leave the listener closed and
  **every pid the pool ever spawned** dead: chaos or not, shutdown
  leaves no orphans.

The run is also the **telemetry gate**. ``REPRO_OBS_LOG=1`` is set for
the whole topology and every ``repro.obs`` / ``repro.gateway`` log
line is captured in-process; afterwards the driver scrapes
``GET /metrics`` (main server and shed server — each gateway carries
its own registry, both merged with the shared pool's and the workers')
and reconciles the fleet's own story against the clients':

* restart / retry / shed / stale counters are **nonzero** (the chaos
  plan really fired) and equal the client-side tallies and pool stats;
* ``requests_total`` is conserved across the per-status response
  counters;
* the ``X-Request-Id`` of **every failed response** a client saw
  appears in a captured server-side log line — the correlation a 3 AM
  page actually needs.

The work directory defaults to a fresh temp dir removed at exit; pass
``--keep`` (or an explicit directory plus ``--keep``) to inspect it.
"""

from __future__ import annotations

import argparse
import asyncio
import atexit
import http.client
import json
import logging
import os
import random
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

TOLERANCE = 1e-9
N_USERS = 60
N_ITEMS = 40
PER_USER = 8
CF_K = 20
TOP_N = 5
SIMILAR_K = 4
N_CLIENTS = 6
REQUESTS_PER_CLIENT = 24
N_PUBLISHES = 2
PLAN_SEED = 2024
BURST = 24


def _fault_plan():
    """The seeded chaos schedule the whole worker fleet runs under."""
    from repro.faults import FaultPlan, FaultRule

    return FaultPlan(seed=PLAN_SEED, rules=[
        # The first spawn dies during snapshot load, before its first
        # health OK; its replacement must come up through the backoff.
        FaultRule("gateway.worker.load", "kill", max_spawn_seq=1),
        # Sprinkled retryable errors and two real mid-request deaths.
        FaultRule("gateway.worker.request", "error", probability=0.04),
        FaultRule("gateway.worker.request", "kill", probability=0.5, after=30, times=2),
        # Transport chaos on the reply path: delays, one dropped frame
        # (a hang the supervisor must kill through), two corrupted
        # headers (torn streams the supervisor must detect).
        FaultRule("gateway.worker.send", "delay", delay_s=0.05, probability=0.05),
        # The drop must land before the kill rule recycles the process
        # (fresh processes restart every per-rule counter), or it
        # never fires: a worker dying around its 30th request has sent
        # only ~32 frames. And it must hit only ONE worker (spawn seq
        # 0 dies at load, so the fleet is spawns 1 and 2): rule state
        # is per-process, so an ungated drop fires in both workers at
        # nearly the same send count — the whole fleet hangs at once
        # and there is no sibling left to hedge to.
        FaultRule("gateway.worker.send", "drop", after=18, times=1, max_spawn_seq=2),
        FaultRule("gateway.worker.send", "corrupt", probability=0.5, after=25, times=2),
    ])


def _table(seed: int):
    from repro.data.ratings import Rating, RatingTable

    rng = random.Random(seed)
    ratings = []
    for user in range(N_USERS):
        for item in rng.sample(range(N_ITEMS), PER_USER):
            ratings.append(Rating(
                f"u{user:03d}", f"i{item:03d}",
                float(rng.randint(1, 5)), len(ratings)))
    return RatingTable(ratings)


def _update_batch(round_number: int):
    from repro.data.ratings import Rating

    base = 100000 + round_number * 10
    flip = 5.0 if round_number % 2 else 1.0
    return [
        Rating("u001", "i000", flip, base),
        Rating("u002", "i001", 6.0 - flip, base + 1),
        Rating("u003", "i002", flip, base + 2),
        Rating("u004", "i003", 6.0 - flip, base + 3),
    ]


class _CaptureHandler(logging.Handler):
    """Collects every log line the gateway side emits in-process, so
    the trace-correlation gate can grep them after the run."""

    def __init__(self, out: list) -> None:
        super().__init__(level=logging.INFO)
        self.out = out

    def emit(self, record: logging.LogRecord) -> None:
        self.out.append(record.getMessage())


def _scrape_metrics(port: int) -> dict[str, float]:
    """GET /metrics, parsed to ``{'name{labels}': value}``."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        body = response.read()
        if response.status != 200:
            raise RuntimeError(f"/metrics -> HTTP {response.status}: "
                               f"{body[:200]!r}")
    finally:
        connection.close()
    samples: dict[str, float] = {}
    for line in body.decode("utf-8").splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples


def _get(port: int, target: str, timeout: float = 30.0):
    """One GET; returns (status, headers, payload-dict)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request("GET", target)
        response = connection.getresponse()
        body = response.read()
        headers = {name.lower(): value for name, value in response.getheaders()}
        try:
            payload = json.loads(body)
        except ValueError:
            payload = {}
        return response.status, headers, payload
    finally:
        connection.close()


def _client_loop(port: int, client_id: int, users: list[str],
                 items: list[str], out: list, errors: list,
                 retry_counts: list) -> None:
    """One client's sequence; each request survives a few transparent
    retries (a fleet mid-respawn may refuse briefly), but must land a
    correct 200 eventually — chaos may cost retries, not answers."""
    rng = random.Random(1000 + client_id)
    for seq in range(REQUESTS_PER_CLIENT):
        kind = "similar" if seq % 3 == 2 else "recommend"
        time.sleep(rng.uniform(0.002, 0.012))
        key = rng.choice(items if kind == "similar" else users)
        if kind == "recommend":
            target = f"/recommend?user={key}&n={TOP_N}"
        else:
            target = f"/similar_items?item={key}&k={SIMILAR_K}"
        status = None
        for attempt in range(4):
            try:
                status, headers, payload = _get(port, target)
            except Exception as exc:  # noqa: BLE001 - retried, then fatal
                status, headers, payload = -1, {}, {"error": str(exc)}
            if status == 200:
                break
            # Every failed *response* carries an X-Request-Id; keep it
            # so the telemetry gate can demand a matching server-side
            # log line. A connection-level failure (-1) has none.
            retry_counts.append((client_id, seq, status, headers.get("x-request-id")))
            time.sleep(0.1 * (attempt + 1))
        if status != 200:
            errors.append(f"client {client_id} request {seq}: "
                          f"{status} {payload}")
            return
        field = "recommendations" if kind == "recommend" else "neighbors"
        out.append((client_id, seq, kind, key, payload["version"], payload[field]))


async def _drive_traffic(work: Path, registry, pure_python: bool,
                         users: list[str], items: list[str]):
    from concurrent.futures import ThreadPoolExecutor

    from repro.gateway import GatewayServer, WorkerPool

    plan = _fault_plan()
    pool = WorkerPool(work / "catalog", n_workers=2,
                      poll_interval=0.05, pure_python=pure_python,
                      call_timeout=10.0, retries=3,
                      hedge_delay=0.25,
                      backoff_base=0.05, backoff_cap=0.5,
                      worker_env={**plan.to_env(), "REPRO_OBS_LOG": "1"})
    await pool.start()
    server = GatewayServer(pool, max_delay=0.005)
    await server.start()
    loop = asyncio.get_running_loop()
    responses: list = []
    errors: list = []
    retry_counts: list = []
    executor = ThreadPoolExecutor(max_workers=N_CLIENTS + BURST + 2)
    shed_failures: list[str] = []
    shed_stats = {}
    telemetry: dict = {"failed_ids": [], "metrics": {},
                       "tiny_metrics": {}, "stale_probe": {}}
    try:
        clients = [
            loop.run_in_executor(
                executor, _client_loop, server.port, client_id, users,
                items, responses, errors, retry_counts)
            for client_id in range(N_CLIENTS)]

        total = N_CLIENTS * REQUESTS_PER_CLIENT
        for round_number in range(1, N_PUBLISHES + 1):
            threshold = total * round_number // (N_PUBLISHES + 1)
            deadline = time.monotonic() + 120
            while (len(responses) < threshold
                   and time.monotonic() < deadline and not errors):
                await asyncio.sleep(0.005)
            version, _stats = await loop.run_in_executor(
                executor, registry.update, _update_batch(round_number))
            print(f"chaos-smoke: published v{version} after "
                  f"{len(responses)}/{total} responses")
        await asyncio.gather(*clients)
        stats = pool.stats()

        # --- shed probe: a one-slot admission window under a burst ---
        tiny = GatewayServer(pool, max_delay=0.005, max_inflight=1, max_queue=0)
        await tiny.start()
        try:
            shed_responses: list = []

            def burst_request(index: int) -> None:
                user = users[index % len(users)]
                status, headers, payload = _get(
                    tiny.port, f"/recommend?user={user}&n={TOP_N}")
                shed_responses.append((index, user, status, headers, payload))

            barrier = threading.Barrier(BURST)

            def synced(index: int) -> None:
                barrier.wait()
                burst_request(index)

            await asyncio.gather(*[
                loop.run_in_executor(executor, synced, index)
                for index in range(BURST)])
            n_shed = sum(1 for r in shed_responses if r[2] == 429)
            n_ok = sum(1 for r in shed_responses if r[2] == 200)
            for index, user, status, headers, payload in shed_responses:
                if status == 429:
                    if "retry-after" not in headers:
                        shed_failures.append(f"burst {index}: 429 without Retry-After")
                    if payload.get("error", {}).get("code") != "overloaded":
                        shed_failures.append(f"burst {index}: 429 body {payload}")
                    telemetry["failed_ids"].append(headers.get("x-request-id"))
                elif status == 200:
                    responses.append((-1, index, "recommend", user,
                                      payload["version"],
                                      payload["recommendations"]))
                else:
                    shed_failures.append(f"burst {index}: unexpected HTTP {status}")
            if n_shed == 0:
                shed_failures.append(
                    f"a {BURST}-way burst into a 1-slot window shed "
                    f"nothing (200s: {n_ok})")
            if n_ok == 0:
                shed_failures.append("the shed probe served nothing")
            shed_stats = {"shed": n_shed, "served": n_ok,
                          "server_shed_count": tiny.n_shed}
            telemetry["tiny_metrics"] = await loop.run_in_executor(
                executor, _scrape_metrics, tiny.port)
        finally:
            await tiny.close()

        # --- stale probe: unreachable floor degrades, explicitly ---
        # Flip the pool into bounded-staleness mode and inflate the
        # version floor past anything the catalog holds — exactly the
        # state a dead worker that had served far ahead leaves behind
        # (test_chaos plays the same trick). The answer must be a 200,
        # tagged stale, with correct scores for its tagged version.
        pool.allow_stale = True
        pool.fleet_version += 50
        status, headers, payload = await loop.run_in_executor(
            executor, _get, server.port,
            f"/recommend?user={users[0]}&n={TOP_N}")
        telemetry["stale_probe"] = {
            "status": status,
            "stale": bool(payload.get("stale")),
            "request_id": headers.get("x-request-id"),
        }
        if status == 200:
            responses.append((-2, 0, "recommend", users[0],
                              payload["version"],
                              payload["recommendations"]))

        # Scrape the main server's fleet-merged /metrics while the
        # topology is still up; the telemetry gate reconciles it
        # against the clients' tallies after everything is gone.
        telemetry["metrics"] = await loop.run_in_executor(
            executor, _scrape_metrics, server.port)
        stats = pool.stats()

        # --- drain: no orphans, listener closed ---
        await server.drain(grace=15.0)
        drain_failures = []
        deadline = time.monotonic() + 10
        leftover = list(pool.spawned_pids)
        while leftover and time.monotonic() < deadline:
            leftover = [pid for pid in leftover if _pid_alive(pid)]
            time.sleep(0.1)
        if leftover:
            drain_failures.append(
                f"orphan worker pids after drain: {leftover} "
                f"(of {len(pool.spawned_pids)} ever spawned)")
        try:
            _get(server.port, "/healthz", timeout=2.0)
            drain_failures.append("listener still accepting after drain")
        except OSError:
            pass
    finally:
        await server.close()
        await pool.close()
        executor.shutdown(wait=False)
    return (responses, errors, retry_counts, stats, shed_failures,
            shed_stats, drain_failures, telemetry)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    return True


def _reference_services(catalog, pure_python: bool) -> dict:
    from repro.serving.service import RecommendationService
    from repro.serving.snapshot import ModelSnapshot

    references = {}
    for version in catalog.versions():
        snapshot = ModelSnapshot.load(
            catalog.root / f"v-{version:08d}",
            use_numpy=False if pure_python else None)
        references[version] = RecommendationService(snapshot)
    return references


def _verify(responses: list, references: dict) -> list[str]:
    failures = []
    last_seen: dict[int, int] = {}
    for client_id, seq, kind, key, version, payload in responses:
        if version not in references:
            failures.append(
                f"client {client_id} seq {seq}: version {version} was "
                f"never published")
            continue
        if client_id >= 0:  # burst records carry no sequence order
            previous = last_seen.get(client_id, 0)
            if version < previous:
                failures.append(
                    f"client {client_id} seq {seq}: version went "
                    f"backwards ({previous} -> {version}) — monotonic "
                    f"reads broken")
            last_seen[client_id] = max(previous, version)
        service = references[version]
        if kind == "recommend":
            _, expected = service.recommend_batch_pinned([key], TOP_N)
            expected = expected[0]
        else:
            _, expected = service.similar_items_pinned(key, SIMILAR_K)
        got = [tuple(pair) for pair in payload]
        if [item for item, _ in got] != [item for item, _ in expected]:
            failures.append(
                f"client {client_id} seq {seq} ({kind} {key!r}): items "
                f"{got} do not match v{version}'s {expected} — "
                f"cross-version mixing or corruption")
            continue
        worst = max(
            (abs(got_score - want_score)
             for (_, got_score), (_, want_score) in zip(got, expected)),
            default=0.0)
        if worst > TOLERANCE:
            failures.append(
                f"client {client_id} seq {seq} ({kind} {key!r}): "
                f"max|Δscore|={worst:.3e} vs v{version} exceeds "
                f"{TOLERANCE}")
    return failures


def _check_telemetry(telemetry: dict, retry_counts: list, shed_stats: dict,
                     stats: dict, log_lines: list[str]) -> list[str]:
    """The fleet's own story vs the clients': every chaos counter
    nonzero and equal to the client-side tally, requests conserved,
    and every failed response's X-Request-Id present in a captured
    server-side log line."""
    failures = []
    metrics = telemetry["metrics"]
    tiny = telemetry["tiny_metrics"]
    probe = telemetry["stale_probe"]

    answered = sum(value for key, value in metrics.items()
                   if key.startswith("gateway_http_responses_total{"))
    requests = metrics.get("gateway_http_requests_total", -1.0)
    if requests != answered + 1:
        failures.append(
            f"/metrics conservation broken: requests_total={requests} "
            f"!= {answered} answered + 1 in-flight scrape")

    restarts = metrics.get("gateway_worker_restarts_total", 0.0)
    if restarts != stats["n_restarts"] or restarts == 0:
        failures.append(
            f"/metrics restarts={restarts} vs pool stats "
            f"{stats['n_restarts']} (must match, nonzero)")
    if metrics.get("gateway_retries_total", 0.0) <= 0:
        failures.append("chaos produced no pool retries in /metrics")

    shed_counted = tiny.get("gateway_shed_total", 0.0)
    if shed_counted != shed_stats.get("shed") or shed_counted == 0:
        failures.append(
            f"shed-server /metrics counted {shed_counted} sheds, "
            f"clients tallied {shed_stats.get('shed')} 429s")

    if not (probe.get("status") == 200 and probe.get("stale")):
        failures.append(f"stale probe did not degrade: {probe}")
    n_stale = metrics.get("gateway_stale_responses_total", 0.0)
    if n_stale != 1:
        failures.append(
            f"/metrics counted {n_stale} stale responses, clients "
            f"tallied 1 (the stale probe)")
    if metrics.get("gateway_stale_serves_total", 0.0) < 1:
        failures.append("the pool's stale-serve counter never moved")

    failed_ids = [rid for rid in
                  ([record[3] for record in retry_counts] + telemetry["failed_ids"])
                  if rid]
    if not failed_ids:
        failures.append(
            "no failed response carried an X-Request-Id — the "
            "correlation gate proved nothing")
    joined = "\n".join(log_lines)
    missing = sorted({rid for rid in failed_ids if rid not in joined})
    if missing:
        failures.append(
            f"{len(missing)} failed-response trace ids never appeared "
            f"in a server-side log line: {missing[:5]}")
    return failures


def _drive(work_dir: str, pure_python: bool, seed: int) -> int:
    from repro.engine.sharded_sweep import IncrementalSweep
    from repro.serving.registry import ModelRegistry
    from repro.serving.watch import SnapshotCatalog

    # The telemetry gate needs the structured log lines: turn the
    # REPRO_OBS_LOG firehose on for this process (the gateway side)
    # and capture everything the obs/gateway loggers emit.
    os.environ["REPRO_OBS_LOG"] = "1"
    log_lines: list[str] = []
    capture = _CaptureHandler(log_lines)
    for logger_name in ("repro.obs", "repro.gateway"):
        obs_logger = logging.getLogger(logger_name)
        obs_logger.setLevel(logging.INFO)
        obs_logger.addHandler(capture)

    work = Path(work_dir)
    work.mkdir(parents=True, exist_ok=True)
    table = _table(seed)
    sweep = IncrementalSweep(table, n_shards=1, with_index=True)
    registry = ModelRegistry(sweep=sweep, cf_k=CF_K)
    catalog = SnapshotCatalog(work / "catalog")
    catalog.attach(registry)
    users = [f"u{i:03d}" for i in range(N_USERS)]
    items = [f"i{i:03d}" for i in range(N_ITEMS)]

    (responses, errors, retry_counts, stats, shed_failures, shed_stats,
     drain_failures, telemetry) = asyncio.run(
        _drive_traffic(work, registry, pure_python, users, items))
    for error in errors:
        print(f"chaos-smoke: request FAILED: {error}")

    references = _reference_services(catalog, pure_python)
    failures = _verify(responses, references)
    if not errors:
        failures.extend(_check_telemetry(
            telemetry, retry_counts, shed_stats, stats, log_lines))
    versions_seen = sorted({record[4] for record in responses if record[0] >= 0})
    if len(versions_seen) < 2:
        failures.append(
            f"only versions {versions_seen} appeared in responses — "
            f"the publishes did not overlap the traffic")
    expected_total = N_CLIENTS * REQUESTS_PER_CLIENT
    n_traffic = sum(1 for r in responses if r[0] >= 0)
    if not errors and n_traffic != expected_total:
        failures.append(f"{n_traffic}/{expected_total} traffic "
                        f"responses arrived")
    failures.extend(shed_failures)
    failures.extend(drain_failures)
    for failure in failures[:10]:
        print(f"chaos-smoke: {failure}")

    label = "pure-python" if pure_python else "numpy"
    ok = not failures and not errors
    print(f"chaos-smoke[{label}]: {len(responses)} correct responses "
          f"({len(retry_counts)} transparent retries) under plan seed "
          f"{PLAN_SEED}; fleet restarts={stats['n_restarts']} "
          f"spawn_failures={stats['n_spawn_failures']} "
          f"hedged={stats['n_hedged']}/{stats['n_hedge_wins']} wins; "
          f"shed probe {shed_stats}; stale probe "
          f"{telemetry['stale_probe']}; telemetry gate over "
          f"{len(telemetry['metrics'])} samples / {len(log_lines)} "
          f"captured log lines; diff<={TOLERANCE:g} "
          f"-> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="chaos smoke: the gateway fleet under a seeded "
                    "fault schedule, every answer diffed, overload "
                    "shed, drain orphan-free")
    parser.add_argument("work_dir", nargs="?", default=None,
                        help="working directory (default: fresh temp "
                             "dir, removed at exit)")
    parser.add_argument("--pure-python", action="store_true",
                        help="run the worker fleet on the pure-Python "
                             "backend")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--keep", action="store_true",
                        help="keep the working directory for debugging")
    args = parser.parse_args(argv)
    work_dir = args.work_dir or tempfile.mkdtemp(prefix="chaos-smoke-")
    if not args.keep:
        atexit.register(shutil.rmtree, work_dir, ignore_errors=True)
    return _drive(work_dir, args.pure_python, args.seed)


if __name__ == "__main__":
    raise SystemExit(main())
