"""Serving smoke: build → snapshot → serve from a *fresh process* → diff.

Driver mode (what CI's serving-smoke job runs)::

    python scripts/serving_smoke.py <trace_dir> [snapshot_dir] [--keep]

The snapshot directory defaults to a fresh temp dir; it is removed at
exit (even on failure) unless ``--keep`` is passed — CI passes an
explicit directory **with** ``--keep`` because a later step serves
from it, while repeated local runs leave nothing behind.

fits the deterministic item-mode pipeline on the trace in-process,
saves a :class:`~repro.serving.snapshot.ModelSnapshot`, computes
reference predictions and Top-N lists from the in-memory pipeline, then
re-invokes this script in a **fresh interpreter** (twice: once on the
NumPy backend, once under ``REPRO_PURE_PYTHON=1`` — the cross-backend
leg) to serve the same probes from the loaded snapshot, and diffs:
every prediction must agree within 1e-9 (they are bit-identical in
practice) and every Top-N list must match item for item.

Serve mode (the fresh process)::

    python scripts/serving_smoke.py --serve <snapshot_dir> <probes.json> <out.json>

loads the snapshot cold — no trace, no pipeline — and answers the
probes through a :class:`~repro.serving.service.RecommendationService`
(Top-N via the batched path, so the vectorized pass is exercised
end-to-end in the restarted server).
"""

from __future__ import annotations

import argparse
import atexit
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

TOLERANCE = 1e-9
N_PROBE_USERS = 25
N_PROBE_ITEMS = 25
TOP_N = 5


def diff_serving(reference_predict: dict, reference_topn: dict,
                 served_predict: dict, served_topn: dict,
                 tolerance: float = TOLERANCE) -> tuple[float, bool]:
    """Diff served responses against references (shared with the
    crash-recovery smoke in ``crash_smoke.py``).

    *reference_topn* maps user → [(item, score), ...];
    *served_topn* may hold lists instead of tuples (JSON round trip).
    Returns ``(worst_abs_prediction_delta, topn_ok)`` where ``topn_ok``
    requires identical item lists and scores within *tolerance*.
    """
    worst = 0.0
    for key, want in reference_predict.items():
        worst = max(worst, abs(served_predict[key] - want))
    topn_ok = all(
        [tuple(pair) for pair in served_topn[user]]
        == [(item, score) for item, score in reference]
        or (
            [item for item, _ in served_topn[user]]
            == [item for item, _ in reference]
            and all(abs(got[1] - want[1]) <= tolerance
                    for got, want in zip(served_topn[user], reference))
        )
        for user, reference in reference_topn.items())
    return worst, topn_ok


def _serve(snapshot_dir: str, probes_path: str, out_path: str) -> int:
    from repro.serving.service import RecommendationService
    from repro.serving.snapshot import ModelSnapshot

    probes = json.loads(Path(probes_path).read_text(encoding="utf-8"))
    snapshot = ModelSnapshot.load(snapshot_dir)
    service = RecommendationService(snapshot)
    users = probes["users"]
    responses = service.recommend_batch(users, n=probes["top_n"])
    out = {
        "backend": snapshot.backend,
        "predict": {
            f"{user}\t{item}": service.predict(user, item)
            for user in users for item in probes["items"]},
        "topn": {user: response for user, response in zip(users, responses)},
    }
    Path(out_path).write_text(json.dumps(out), encoding="utf-8")
    return 0


def _drive(trace_dir: str, snapshot_dir: str) -> int:
    from repro.core.pipeline import NXMapRecommender, XMapConfig
    from repro.data.loaders import read_cross_domain

    data = read_cross_domain(trace_dir, "movies", "books")
    pipeline = NXMapRecommender(XMapConfig(mode="item", cf_k=10)).fit(data)
    pipeline.snapshot().save(snapshot_dir, overwrite=True)

    users = sorted(data.source.users)[:N_PROBE_USERS]
    items = sorted(data.target.ratings.items)[:N_PROBE_ITEMS]
    probes = {"users": users, "items": items, "top_n": TOP_N}
    probes_path = Path(snapshot_dir) / "smoke_probes.json"
    probes_path.write_text(json.dumps(probes), encoding="utf-8")

    reference_predict = {
        f"{user}\t{item}": pipeline.predict(user, item)
        for user in users for item in items}
    reference_topn = {user: pipeline.recommend(user, n=TOP_N) for user in users}

    failures = 0
    for label, overrides in (("numpy", {"REPRO_PURE_PYTHON": ""}),
                             ("pure-python", {"REPRO_PURE_PYTHON": "1"})):
        out_path = Path(snapshot_dir) / f"smoke_served_{label}.json"
        env = {**os.environ, **overrides}
        subprocess.run(
            [sys.executable, __file__, "--serve", snapshot_dir,
             str(probes_path), str(out_path)],
            check=True, env=env)
        served = json.loads(out_path.read_text(encoding="utf-8"))
        worst, topn_ok = diff_serving(
            reference_predict, reference_topn,
            served["predict"], served["topn"])
        ok = worst <= TOLERANCE and topn_ok
        failures += 0 if ok else 1
        print(f"serving-smoke[{label}]: backend={served['backend']} "
              f"max|Δpredict|={worst:.3e} topn={'ok' if topn_ok else 'MISMATCH'} "
              f"-> {'PASS' if ok else 'FAIL'}")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    if len(argv) == 5 and argv[1] == "--serve":
        return _serve(argv[2], argv[3], argv[4])
    parser = argparse.ArgumentParser(
        description="serving smoke: build, snapshot, re-serve from a "
                    "fresh process on both backends, diff")
    parser.add_argument("trace_dir", help="trace directory to fit on")
    parser.add_argument("snapshot_dir", nargs="?", default=None,
                        help="snapshot directory (default: fresh temp "
                             "dir, removed at exit)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the snapshot directory (CI passes "
                             "this when a later step serves from it)")
    args = parser.parse_args(argv[1:])
    snapshot_dir = (args.snapshot_dir or tempfile.mkdtemp(prefix="serving-smoke-"))
    if not args.keep:
        atexit.register(shutil.rmtree, snapshot_dir, ignore_errors=True)
    return _drive(args.trace_dir, snapshot_dir)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
