"""Unit tests for Dataset / CrossDomainDataset (repro.data.dataset)."""

import pytest

from repro.data.dataset import CrossDomainDataset, Dataset
from repro.data.ratings import Rating, RatingTable
from repro.errors import DataError, DomainError


def _dataset(name, prefix, users=("u1", "u2")):
    ratings = [Rating(u, f"{prefix}{k}", 3.0 + k % 2) for u in users for k in range(2)]
    return Dataset(name, RatingTable(ratings))


class TestDataset:
    def test_accepts_iterable_of_ratings(self):
        ds = Dataset("d", [Rating("u", "i", 4.0)])
        assert ds.items == {"i"}

    def test_empty_name_rejected(self):
        with pytest.raises(DataError):
            Dataset("", RatingTable())

    def test_title_of_falls_back_to_id(self):
        ds = Dataset("d", [Rating("u", "i", 4.0)], item_titles={"i": "Item One"})
        assert ds.title_of("i") == "Item One"
        assert ds.title_of("j") == "j"

    def test_with_ratings_shares_metadata(self):
        ds = Dataset("d", [Rating("u", "i", 4.0)], item_titles={"i": "Item"})
        replaced = ds.with_ratings(RatingTable([Rating("v", "i", 2.0)]))
        assert replaced.title_of("i") == "Item"
        assert replaced.users == {"v"}

    def test_len(self):
        assert len(_dataset("d", "i")) == 4


class TestCrossDomain:
    def test_same_name_rejected(self):
        with pytest.raises(DomainError, match="differ"):
            CrossDomainDataset(_dataset("d", "a"), _dataset("d", "b"))

    def test_shared_items_rejected(self):
        with pytest.raises(DomainError, match="disjoint"):
            CrossDomainDataset(_dataset("d1", "x"), _dataset("d2", "x"))

    def test_overlap_users(self):
        data = CrossDomainDataset(
            _dataset("d1", "a", users=("u1", "u2")),
            _dataset("d2", "b", users=("u2", "u3")))
        assert data.overlap_users == {"u2"}

    def test_domain_of(self):
        data = CrossDomainDataset(_dataset("d1", "a"), _dataset("d2", "b"))
        assert data.domain_of("a0") == "d1"
        assert data.domain_of("b1") == "d2"
        with pytest.raises(DomainError):
            data.domain_of("zzz")

    def test_dataset_lookup(self):
        data = CrossDomainDataset(_dataset("d1", "a"), _dataset("d2", "b"))
        assert data.dataset("d1").name == "d1"
        with pytest.raises(DomainError):
            data.dataset("d3")

    def test_merged_has_all_ratings(self):
        data = CrossDomainDataset(_dataset("d1", "a"), _dataset("d2", "b"))
        assert len(data.merged()) == len(data.source.ratings) + len(data.target.ratings)

    def test_reversed_swaps(self):
        data = CrossDomainDataset(_dataset("d1", "a"), _dataset("d2", "b"))
        swapped = data.reversed()
        assert swapped.source.name == "d2"
        assert swapped.target.name == "d1"
        assert swapped.overlap_users == data.overlap_users

    def test_with_target_ratings(self):
        data = CrossDomainDataset(_dataset("d1", "a"), _dataset("d2", "b"))
        emptied = data.with_target_ratings(RatingTable())
        assert len(emptied.target.ratings) == 0
        assert len(data.target.ratings) == 4  # original untouched

    def test_domain_map_covers_all_items(self, small_trace):
        mapping = small_trace.domain_map()
        assert set(mapping) == set(small_trace.source.items | small_trace.target.items)
