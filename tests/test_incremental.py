"""The incremental update path: append a rating batch without rebuilds.

The equality contract under test, at every layer: appending a batch
through the incremental machinery produces **the same object a full
rebuild would** — bit-identical store arrays, accumulations, adjacency
and serving-index rows on a fixed backend and shard count, and within
the standing 1e-9 sweep tolerance across shard counts. Batches cover
the hard cases: new users, new items, ratings from existing users, and
value overrides of existing (user, item) pairs.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.alterego import AlterEgoGenerator, OnlineAlterEgoUpdater
from repro.core.baseliner import Baseliner
from repro.data.dataset import CrossDomainDataset, Dataset
from repro.data.matrix import MatrixRatingStore, numpy_available
from repro.data.ratings import Rating, RatingTable
from repro.engine.sharded_sweep import IncrementalSweep
from repro.errors import ConfigError

# -- strategies ---------------------------------------------------------

_users = st.sampled_from([f"u{k}" for k in range(8)])
_items = st.sampled_from([f"i{k}" for k in range(8)])
# Batches draw from a superset so they introduce new users and items.
_batch_users = st.sampled_from([f"u{k}" for k in range(11)])
_batch_items = st.sampled_from([f"i{k}" for k in range(11)])
_values = st.sampled_from([1.0, 1.5, 2.0, 3.0, 4.0, 4.5, 5.0])


@st.composite
def base_and_batch(draw, min_base=2, max_base=30, max_batch=6):
    """A random base table plus an append batch that may add new users,
    new items, ratings from existing users, and value overrides."""
    pairs = draw(st.lists(
        st.tuples(_users, _items), min_size=min_base, max_size=max_base,
        unique=True))
    base = [Rating(u, i, draw(_values), timestep=k) for k, (u, i) in enumerate(pairs)]
    batch_pairs = draw(st.lists(
        st.tuples(_batch_users, _batch_items), min_size=1,
        max_size=max_batch, unique=True))
    batch = [Rating(u, i, draw(_values), timestep=100 + k)
             for k, (u, i) in enumerate(batch_pairs)]
    return base, batch


_common = settings(max_examples=50, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])

_STORE_ARRAYS = (
    "user_means", "item_means", "user_ptr", "user_item_idx", "user_values",
    "user_centered", "user_item_centered", "user_item_centered_norms",
    "item_ptr", "item_user_idx", "item_values", "item_centered",
    "item_likes", "item_centered_norms", "item_raw_norms")


def _aslist(values):
    return values.tolist() if hasattr(values, "tolist") else list(values)


def assert_stores_equal(appended: MatrixRatingStore,
                        rebuilt: MatrixRatingStore) -> None:
    """Bit-identical equality over every interning and derived array."""
    assert appended.users == rebuilt.users
    assert appended.items == rebuilt.items
    assert appended.user_index == rebuilt.user_index
    assert appended.item_index == rebuilt.item_index
    assert appended.n_ratings == rebuilt.n_ratings
    assert appended.global_mean == rebuilt.global_mean
    for name in _STORE_ARRAYS:
        got = _aslist(getattr(appended, name))
        want = _aslist(getattr(rebuilt, name))
        assert got == want, name


def _acc_tuple(store, acc):
    """Canonical (keys, sums, counts, agree) view of an accumulation —
    float equality is exact, so == means bit-identical."""
    if store.uses_numpy:
        return (acc.keys.tolist(), acc.sums.tolist(), acc.counts.tolist(),
                None if acc.agree is None else acc.agree.tolist())
    keys = sorted(acc.sums)
    return (keys,
            [acc.sums[k] for k in keys],
            [acc.counts[k] for k in keys],
            None if acc.agree is None
            else [acc.agree.get(k, 0) for k in keys])


def _index_tuple(index):
    if index is None:
        return None
    return (list(index.items), _aslist(index.ptr),
            _aslist(index.neighbor_ids), _aslist(index.weights), index.k)


def _store(table, use_numpy):
    if use_numpy and not numpy_available():
        pytest.skip("numpy fast path unavailable")
    return MatrixRatingStore(table, use_numpy=use_numpy)


_BACKENDS = [pytest.param(True, id="numpy"), pytest.param(False, id="pure-python")]


# -- store append == rebuild (the tentpole's base contract) -------------

@pytest.mark.parametrize("use_numpy", _BACKENDS)
@_common
@given(data=base_and_batch())
def test_append_ratings_equals_rebuild(data, use_numpy):
    base, batch = data
    table = RatingTable(base)
    appended, delta = _store(table, use_numpy).append_ratings(batch)
    rebuilt = _store(table.with_ratings(batch), use_numpy)
    assert_stores_equal(appended, rebuilt)
    # The delta's interning maps are consistent with the new store.
    for old_idx, name in enumerate(sorted(table.items)):
        assert appended.items[delta.item_map[old_idx]] == name
    for old_idx, name in enumerate(sorted(table.users)):
        assert appended.users[delta.user_map[old_idx]] == name


@pytest.mark.parametrize("use_numpy", _BACKENDS)
def test_append_to_empty_store(use_numpy):
    table = RatingTable()
    batch = [Rating("u", "a", 3.0, 0), Rating("v", "a", 5.0, 1)]
    appended, delta = _store(table, use_numpy).append_ratings(batch)
    assert_stores_equal(appended, _store(table.with_ratings(batch), use_numpy))
    assert delta.new_users == ("u", "v")
    assert delta.new_items == ("a",)


@pytest.mark.parametrize("use_numpy", _BACKENDS)
def test_empty_batch_is_identity(tiny_table, use_numpy):
    store = _store(tiny_table, use_numpy)
    appended, delta = store.append_ratings([])
    assert_stores_equal(appended, store)
    assert delta.touched_users == []
    assert delta.touched_items == []


# -- delta accumulation fold == full sweep ------------------------------

@pytest.mark.parametrize("use_numpy", _BACKENDS)
@pytest.mark.parametrize("with_significance", [False, True])
@_common
@given(data=base_and_batch())
def test_delta_fold_equals_full_accumulation(data, use_numpy, with_significance):
    base, batch = data
    store = _store(RatingTable(base), use_numpy)
    old_acc = store.pair_accumulation(with_significance=with_significance)
    new_store, delta = store.append_ratings(batch)
    delta_acc = new_store.delta_pair_accumulation(
        delta, with_significance=with_significance)
    folded = new_store.apply_accumulation_delta(old_acc, delta_acc, delta)
    fresh = new_store.pair_accumulation(with_significance=with_significance)
    assert _acc_tuple(new_store, folded) == _acc_tuple(new_store, fresh)


# -- end to end: IncrementalSweep.update == fresh build -----------------

def _toggle_backend(monkeypatch, use_numpy):
    if use_numpy and not numpy_available():
        pytest.skip("numpy fast path unavailable")
    monkeypatch.setenv("REPRO_PURE_PYTHON", "" if use_numpy else "1")


@pytest.mark.parametrize("use_numpy", _BACKENDS)
@pytest.mark.parametrize("n_shards", [1, 3])
@pytest.mark.parametrize("with_significance", [False, True])
def test_sweep_update_equals_rebuild(monkeypatch, use_numpy, n_shards,
                                     with_significance):
    _toggle_backend(monkeypatch, use_numpy)
    rng = random.Random(7)
    base, pairs = [], set()
    for _ in range(60):
        user, item = f"u{rng.randint(0, 11)}", f"i{rng.randint(0, 11)}"
        if (user, item) in pairs:
            continue
        pairs.add((user, item))
        base.append(Rating(user, item, float(rng.randint(1, 5))))
    sweep = IncrementalSweep(RatingTable(base), n_shards=n_shards,
                             with_significance=with_significance)
    table = RatingTable(base)
    for round_ in range(3):
        batch = [Rating(f"u{rng.randint(0, 13)}", f"i{rng.randint(0, 13)}",
                        float(rng.randint(1, 5)), timestep=round_)
                 for _ in range(rng.randint(1, 5))]
        sweep.update(batch)
        table = table.with_ratings(batch)
    fresh = IncrementalSweep(RatingTable(list(table)), n_shards=n_shards,
                             with_significance=with_significance)
    assert_stores_equal(sweep.store, fresh.store)
    assert _acc_tuple(sweep.store, sweep.accumulation) == \
        _acc_tuple(fresh.store, fresh.accumulation)
    assert sweep.graph._adjacency == fresh.graph._adjacency
    assert _index_tuple(sweep.index) == _index_tuple(fresh.index)
    if with_significance:
        assert sweep.significance == fresh.significance
        assert sweep.common_raters == fresh.common_raters


def test_sweep_update_across_shard_counts_1e9(monkeypatch):
    """Incremental at 2 shards vs fresh at 1 shard: the standing
    cross-shard contract (≤1e-9 weights, identical structure)."""
    monkeypatch.setenv("REPRO_PURE_PYTHON", "")
    rng = random.Random(11)
    base = [Rating(f"u{rng.randint(0, 9)}", f"i{rng.randint(0, 9)}",
                   float(rng.randint(1, 5)), timestep=k)
            for k, _ in enumerate(range(70))]
    base = list({(r.user, r.item): r for r in base}.values())
    batch = [Rating(f"u{rng.randint(0, 11)}", f"i{rng.randint(0, 11)}",
                    float(rng.randint(1, 5)), timestep=99)
             for _ in range(5)]
    sweep = IncrementalSweep(RatingTable(base), n_shards=2)
    sweep.update(batch)
    flat = IncrementalSweep(RatingTable(base).with_ratings(batch), n_shards=1)
    assert sweep.graph.items == flat.graph.items
    for item in sorted(flat.graph.items):
        got = sweep.graph.neighbors(item)
        want = flat.graph.neighbors(item)
        assert got.keys() == want.keys()
        for neighbor, sim in want.items():
            assert abs(got[neighbor] - sim) < 1e-9


def test_update_reports_edge_census(monkeypatch):
    monkeypatch.setenv("REPRO_PURE_PYTHON", "")
    base = [Rating("u1", "a", 5.0), Rating("u1", "b", 3.0),
            Rating("u2", "b", 4.0), Rating("u2", "c", 2.0)]
    sweep = IncrementalSweep(RatingTable(base))
    before = {frozenset(edge) for edge in ((i, j) for i, j, _ in sweep.graph.edges())}
    stats = sweep.update([Rating("u3", "a", 4.0), Rating("u3", "c", 5.0)])
    after = {frozenset(edge) for edge in ((i, j) for i, j, _ in sweep.graph.edges())}
    added = {frozenset(edge) for edge in stats.edges_added}
    removed = {frozenset(edge) for edge in stats.edges_removed}
    assert after - before == added
    assert before - after == removed
    assert frozenset(("a", "c")) in added


# -- the table-level delta handoff --------------------------------------

class TestDeltaHandoff:
    def _base(self):
        rng = random.Random(3)
        ratings = list({(r.user, r.item): r for r in (
            Rating(f"u{rng.randint(0, 7)}", f"i{rng.randint(0, 7)}",
                   float(rng.randint(1, 5)), timestep=k)
            for k in range(60))}.values())
        return RatingTable(ratings)

    def test_with_ratings_hands_off_built_store(self):
        base = self._base()
        base.matrix()  # memoize
        batch = [Rating("u-new", "i0", 4.0, 0), Rating("u0", "i-new", 2.0, 1)]
        derived = base.with_ratings(batch)
        assert derived._matrix_delta_base is not None
        assert_stores_equal(derived.matrix(), MatrixRatingStore(derived))

    def test_no_handoff_without_built_store(self):
        base = self._base()
        derived = base.with_ratings([Rating("u-new", "i0", 4.0, 0)])
        assert derived._matrix_delta_base is None

    def test_no_handoff_for_large_batches(self):
        base = self._base()
        base.matrix()
        batch = [Rating(f"w{k}", "i0", 3.0, k) for k in range(len(base))]
        derived = base.with_ratings(batch)
        assert derived._matrix_delta_base is None
        assert_stores_equal(derived.matrix(), MatrixRatingStore(derived))

    def test_merged_with_hands_off_built_store(self):
        base = self._base()
        base.matrix()
        other = RatingTable([Rating("u-new", "i1", 5.0, 0),
                             Rating("u-new", "i2", 1.0, 1)])
        merged = base.merged_with(other)
        assert merged._matrix_delta_base is not None
        assert_stores_equal(merged.matrix(), MatrixRatingStore(merged))


# -- the online AlterEgo path -------------------------------------------

class TestOnlineAlterEgo:
    def _generator(self):
        xsim_map = {
            "s1": {"t1": 0.9, "t2": 0.5, "t3": 0.1},
            "s2": {"t1": 0.4, "t4": 0.8},
            "s3": {},
        }
        return AlterEgoGenerator(xsim_map, n_replacements=2)

    def _tables(self):
        source = RatingTable([Rating("u", "s1", 5.0, 0), Rating("w", "s2", 2.0, 0)])
        target = RatingTable([Rating("u", "t4", 3.0, 0), Rating("other", "t1", 4.0, 0)])
        return source, target

    def test_flush_matches_batch_alterego_table(self):
        generator = self._generator()
        source, target = self._tables()
        updater = OnlineAlterEgoUpdater(
            generator, source, target,
            augmented=generator.alterego_table(["u", "w"], source, target))
        arrivals = [Rating("u", "s2", 4.0, 5), Rating("w", "s1", 1.0, 6)]
        for rating in arrivals:
            updater.observe(rating)
        augmented, batch = updater.flush()
        extended = source.with_ratings(arrivals)
        want = self._generator().alterego_table(["u", "w"], extended, target)
        got = {(r.user, r.item): (r.value, r.timestep) for r in augmented}
        expected = {(r.user, r.item): (r.value, r.timestep) for r in want}
        assert got == expected
        assert batch  # the flush reported the ratings it appended
        assert updater.pending() == 0

    def test_real_target_ratings_keep_precedence(self):
        generator = self._generator()
        source, target = self._tables()
        updater = OnlineAlterEgoUpdater(generator, source, target)
        # s2 maps to t4 (0.8) and t1 (0.4); u already rated t4 for real.
        updater.observe(Rating("u", "s2", 1.0, 3))
        augmented, batch = updater.flush()
        assert augmented.value("u", "t4") == 3.0
        assert all(r.item != "t4" for r in batch)

    def test_unmappable_source_item_is_noop(self):
        generator = self._generator()
        source, target = self._tables()
        updater = OnlineAlterEgoUpdater(generator, source, target)
        assert updater.observe(Rating("u", "s3", 2.0, 1)) == []
        augmented, batch = updater.flush()
        assert batch == []
        assert augmented is target

    def test_duplicate_observation_rejected(self):
        generator = self._generator()
        source, target = self._tables()
        updater = OnlineAlterEgoUpdater(generator, source, target)
        with pytest.raises(ConfigError, match="already folded"):
            updater.observe(Rating("u", "s1", 2.0, 9))

    def test_flush_uses_store_delta_handoff(self):
        generator = self._generator()
        rng = random.Random(5)
        source = RatingTable([Rating("u", "s1", 5.0, 0)])
        target = RatingTable(list({(r.user, r.item): r for r in (
            Rating(f"v{rng.randint(0, 9)}", f"t{rng.randint(5, 14)}",
                   float(rng.randint(1, 5)), timestep=k)
            for k in range(50))}.values()))
        target.matrix()
        updater = OnlineAlterEgoUpdater(generator, source, target)
        updater.observe(Rating("u", "s2", 4.0, 1))
        augmented, _ = updater.flush()
        assert augmented._matrix_delta_base is not None
        assert_stores_equal(augmented.matrix(), MatrixRatingStore(augmented))


# -- Baseliner.update ----------------------------------------------------

def _scenario_with(extra_books: list[Rating]) -> CrossDomainDataset:
    movies = [Rating("alice", "interstellar", 5.0, 0),
              Rating("alice", "gravity", 4.0, 1),
              Rating("bob", "interstellar", 5.0, 0),
              Rating("bob", "inception", 5.0, 1),
              Rating("cecilia", "inception", 5.0, 0)]
    books = [Rating("cecilia", "forever-war", 5.0, 1),
             Rating("cecilia", "hyperion", 4.0, 2),
             Rating("emma", "forever-war", 5.0, 0),
             Rating("emma", "hyperion", 5.0, 2)]
    return CrossDomainDataset(
        Dataset("movies", RatingTable(movies)),
        Dataset("books", RatingTable(books + extra_books)))


class TestBaselinerUpdate:
    def test_update_matches_fresh_compute(self):
        batch = [Rating("alice", "forever-war", 4.0, 9),
                 Rating("emma", "dune", 5.0, 9),
                 Rating("cecilia", "dune", 4.0, 9)]
        baseliner = Baseliner(keep_state=True)
        baseline = baseliner.compute(_scenario_with([]))
        updated_data = _scenario_with(batch)
        updated, stats = baseliner.update(baseline, batch, updated_data.domain_map())
        fresh = baseliner.compute(updated_data)
        assert updated.n_homogeneous == fresh.n_homogeneous
        assert updated.n_heterogeneous == fresh.n_heterogeneous
        assert updated.graph._adjacency == fresh.graph._adjacency
        assert stats.n_batch == len(batch)
        assert stats.n_new_items == 1

    def test_update_requires_kept_state(self):
        data = _scenario_with([])
        baseline = Baseliner().compute(data)
        with pytest.raises(ConfigError, match="keep_state"):
            Baseliner().update(baseline, [], data.domain_map())

    def test_keep_state_matches_stateless_compute(self):
        data = _scenario_with([])
        stateless = Baseliner().compute(data)
        stateful = Baseliner(keep_state=True).compute(data)
        assert stateful.n_homogeneous == stateless.n_homogeneous
        assert stateful.n_heterogeneous == stateless.n_heterogeneous
        assert stateful.graph._adjacency == stateless.graph._adjacency
        assert stateful.state is not None
