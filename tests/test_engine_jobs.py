"""Integration tests for the dataflow jobs (xmap_job / als_job)."""

import pytest

from repro.competitors.als import ALSConfig
from repro.core.baseliner import Baseliner
from repro.engine.als_job import run_als_job
from repro.engine.cluster import ClusterSpec
from repro.engine.xmap_job import run_xmap_job


@pytest.fixture(scope="module")
def xmap_result(small_trace):
    return run_xmap_job(small_trace, ClusterSpec(n_machines=4), prune_k=6)


class TestXMapJob:
    def test_baseline_edges_match_library_path(self, small_trace, xmap_result):
        reference = Baseliner().compute(small_trace)
        assert xmap_result.n_baseline_edges == reference.n_edges

    def test_produces_xsim_pairs_and_alteregos(self, xmap_result):
        assert xmap_result.n_xsim_pairs > 0
        assert xmap_result.n_alteregos > 0

    def test_xsim_pairs_match_library_extender(self, small_trace, xmap_result):
        """The dataflow rendition computes the *same* X-Sim map as the
        in-process Extender (same pruning, same path caps)."""
        from repro.core.extender import (
            Extender,
            ExtenderConfig,
            count_heterogeneous_pairs,
        )
        from repro.core.layers import LayerPartition
        baseline = Baseliner().compute(small_trace)
        partition = LayerPartition.from_graph(baseline.graph, small_trace.domain_map())
        xsim_map = Extender(ExtenderConfig(k=6, max_paths_per_item=2000)).extend(
            baseline.graph, partition, small_trace.merged(),
            source_domain=small_trace.source.name)
        assert xmap_result.n_xsim_pairs == count_heterogeneous_pairs(xsim_map)

    def test_report_has_simulated_time(self, xmap_result):
        assert xmap_result.report.makespan > 0
        assert xmap_result.report.total_task_seconds > 0
        assert xmap_result.report.describe()

    def test_results_independent_of_cluster_size(self, small_trace, xmap_result):
        bigger = run_xmap_job(small_trace, ClusterSpec(n_machines=12), prune_k=6)
        assert bigger.n_xsim_pairs == xmap_result.n_xsim_pairs
        assert bigger.n_alteregos == xmap_result.n_alteregos

    def test_more_machines_not_slower_at_scale(self, small_trace):
        slow = run_xmap_job(small_trace, ClusterSpec(n_machines=2), prune_k=6)
        fast = run_xmap_job(small_trace, ClusterSpec(n_machines=8), prune_k=6)
        assert fast.report.makespan < slow.report.makespan


class TestALSJob:
    def test_converges(self, small_trace):
        result = run_als_job(
            small_trace.target.ratings, ClusterSpec(n_machines=4),
            ALSConfig(n_iterations=6))
        assert result.training_rmse < 0.6

    def test_rmse_independent_of_cluster_size(self, small_trace):
        table = small_trace.target.ratings
        a = run_als_job(table, ClusterSpec(n_machines=2), ALSConfig(n_iterations=3))
        b = run_als_job(table, ClusterSpec(n_machines=10), ALSConfig(n_iterations=3))
        assert a.training_rmse == pytest.approx(b.training_rmse)

    def test_broadcast_cost_grows_with_cluster(self, small_trace):
        table = small_trace.target.ratings
        small = run_als_job(table, ClusterSpec(n_machines=2), ALSConfig(n_iterations=2))
        large = run_als_job(table, ClusterSpec(n_machines=16),
                            ALSConfig(n_iterations=2))
        assert (large.report.broadcast_seconds > small.report.broadcast_seconds)
