"""The general fault-injection plan and the circuit breaker, in-process.

The plan layer (`repro.faults`) is pure bookkeeping — seeded RNGs,
visit counters, kind filtering — so almost everything here runs without
a subprocess. The chaos tests over real worker fleets live in
``test_chaos.py``; this file pins the semantics those tests rely on:
deterministic per-seed decisions, the crash-point superset contract,
frame-kind filtering, and the breaker's state machine.
"""

from __future__ import annotations

import random
import socket
import time

import pytest

from repro.durability.faults import InjectedCrash, crash_point
from repro.errors import GatewayError, ReproError
from repro.faults import (
    PLAN_ENV,
    SPAWN_SEQ_ENV,
    FaultPlan,
    FaultRule,
    InjectedFault,
    fault_point,
    frame_fault,
    injected_faults,
)
from repro.gateway.protocol import recv_frame, send_frame
from repro.gateway.supervisor import CircuitBreaker

# ----------------------------------------------------------------------
# Rules and plans
# ----------------------------------------------------------------------


def test_rule_validation():
    with pytest.raises(ReproError, match="unknown fault kind"):
        FaultRule("test.p", "explode")
    with pytest.raises(ReproError, match="probability"):
        FaultRule("test.p", "error", probability=1.5)
    with pytest.raises(ReproError, match="after"):
        FaultRule("test.p", "error", after=0)
    with pytest.raises(ReproError, match="times"):
        FaultRule("test.p", "error", times=0)
    with pytest.raises(ReproError, match="delay_s"):
        FaultRule("test.p", "delay", delay_s=-1.0)


def test_plan_json_roundtrip():
    plan = FaultPlan(seed=42, rules=[
        FaultRule("gateway.worker.request", "error", after=3, times=2),
        FaultRule("gateway.worker.send", "drop", probability=0.25),
        FaultRule("gateway.worker.load", "kill", max_spawn_seq=2),
    ])
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.to_dict() == plan.to_dict()
    env = plan.to_env()
    assert set(env) == {PLAN_ENV}
    assert FaultPlan.from_json(env[PLAN_ENV]).seed == 42
    with pytest.raises(ReproError, match="malformed"):
        FaultPlan.from_json("{nope")


def test_decide_schedules_after_and_times():
    plan = FaultPlan(rules=[FaultRule("test.p", "error", after=2, times=2)])
    fired = [plan.decide("test.p") is not None for _ in range(5)]
    # Skips visit 1, fires on visits 2 and 3, then is spent.
    assert fired == [False, True, True, False, False]


def test_decide_matches_globs_and_filters_kinds():
    plan = FaultPlan(rules=[
        FaultRule("wal.*", "delay", delay_s=0.0),
        FaultRule("gateway.*", "drop"),
    ])
    assert plan.decide("wal.fsync").kind == "delay"
    assert plan.decide("snapshot.rename") is None
    # Frame-only kinds never fire at plain points ...
    assert plan.decide("gateway.worker.send") is None
    # ... but do at frame points, where error-kind rules are skipped.
    assert plan.decide("gateway.worker.send", frame=True).kind == "drop"
    error_plan = FaultPlan(rules=[FaultRule("test.p", "error")])
    assert error_plan.decide("test.p", frame=True) is None


def test_probability_decisions_are_deterministic_per_seed():
    def firings(seed: int) -> list[bool]:
        plan = FaultPlan(seed=seed, rules=[
            FaultRule("test.p", "error", probability=0.5)])
        return [plan.decide("test.p") is not None for _ in range(64)]

    assert firings(7) == firings(7)  # same seed: same schedule
    assert firings(7) != firings(8)  # different seed: different one
    assert any(firings(7)) and not all(firings(7))


def test_spawn_seq_gates_rules(monkeypatch):
    plan = FaultPlan(rules=[FaultRule("test.p", "error", max_spawn_seq=2)])
    monkeypatch.setenv(SPAWN_SEQ_ENV, "1")
    assert plan.decide("test.p") is not None
    monkeypatch.setenv(SPAWN_SEQ_ENV, "2")
    assert plan.decide("test.p") is None  # the third spawn is spared
    monkeypatch.delenv(SPAWN_SEQ_ENV)
    assert plan.decide("test.p") is not None  # unset counts as spawn 0


# ----------------------------------------------------------------------
# The hooks
# ----------------------------------------------------------------------


def test_fault_point_raises_injected_fault():
    plan = FaultPlan(rules=[FaultRule("test.my.point", "error", after=2)])
    with injected_faults(plan):
        fault_point("test.my.point")  # visit 1: spared
        with pytest.raises(InjectedFault) as excinfo:
            fault_point("test.my.point")
        assert excinfo.value.point == "test.my.point"
    fault_point("test.my.point")  # uninstalled: free no-op


def test_fault_point_crash_kind_raises_injected_crash():
    plan = FaultPlan(rules=[FaultRule("test.my.point", "crash")])
    with injected_faults(plan):
        with pytest.raises(InjectedCrash):
            fault_point("test.my.point")


def test_plan_fires_at_durability_crash_points():
    """The superset contract: a plan rule fires at a point declared via
    the PR-6 ``crash_point`` helper without that layer changing."""
    plan = FaultPlan(rules=[FaultRule("wal.fsync", "error")])
    with injected_faults(plan):
        with pytest.raises(InjectedFault):
            crash_point("wal.fsync")


def test_delay_rule_sleeps():
    plan = FaultPlan(rules=[FaultRule("test.p", "delay", delay_s=0.05, times=1)])
    with injected_faults(plan):
        t0 = time.perf_counter()
        fault_point("test.p")
        assert time.perf_counter() - t0 >= 0.04
        t0 = time.perf_counter()
        fault_point("test.p")  # times=1: the second visit is free
        assert time.perf_counter() - t0 < 0.04


def test_frame_fault_returns_byte_level_rules():
    plan = FaultPlan(rules=[FaultRule("test.wire", "corrupt", after=2)])
    with injected_faults(plan):
        assert frame_fault("test.wire") is None
        rule = frame_fault("test.wire")
        assert rule is not None and rule.kind == "corrupt"
    assert frame_fault("test.wire") is None


def test_send_frame_drop_swallows_the_frame():
    plan = FaultPlan(rules=[FaultRule("gateway.worker.send", "drop", times=1)])
    left, right = socket.socketpair()
    try:
        right.settimeout(0.2)
        with injected_faults(plan):
            send_frame(left, {"seq": 1})  # dropped: the peer sees silence
            with pytest.raises(socket.timeout):
                recv_frame(right)
            send_frame(left, {"seq": 2})  # rule spent: goes through
            assert recv_frame(right) == {"seq": 2}
    finally:
        left.close()
        right.close()


def test_send_frame_corrupt_is_detected_by_the_reader():
    plan = FaultPlan(rules=[FaultRule("gateway.worker.send", "corrupt")])
    left, right = socket.socketpair()
    try:
        right.settimeout(1.0)
        with injected_faults(plan):
            send_frame(left, {"seq": 1})
        with pytest.raises(GatewayError, match="corrupt"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


# ----------------------------------------------------------------------
# The circuit breaker
# ----------------------------------------------------------------------


def test_breaker_trips_at_threshold_and_closes_on_success():
    breaker = CircuitBreaker(threshold=3, rng=random.Random(0))
    assert breaker.state == "closed" and breaker.next_delay() == 0.0
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "open" and breaker.n_trips == 1
    breaker.on_probe()
    assert breaker.state == "half_open"
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.consecutive_failures == 0


def test_breaker_reopens_when_the_probe_fails():
    breaker = CircuitBreaker(threshold=3, rng=random.Random(0))
    for _ in range(3):
        breaker.record_failure()
    breaker.on_probe()
    breaker.record_failure()  # the probe's first outcome is a failure
    assert breaker.state == "open" and breaker.n_trips == 2


def test_breaker_backoff_is_exponential_jittered_and_capped():
    breaker = CircuitBreaker(
        threshold=2, base_delay=0.1, max_delay=1.0,
        rng=random.Random(123))
    delays = []
    for _ in range(8):
        breaker.record_failure()
        delays.append(breaker.next_delay())
    # Equal jitter: uniform in [ceiling/2, ceiling] for
    # ceiling = min(cap, base * 2^(n-1)).
    for n, delay in enumerate(delays, start=1):
        ceiling = min(1.0, 0.1 * 2 ** (n - 1))
        assert ceiling / 2 <= delay <= ceiling
    assert delays[-1] <= 1.0  # capped, not unbounded


def test_breaker_validation():
    with pytest.raises(GatewayError, match="threshold"):
        CircuitBreaker(threshold=0)
    with pytest.raises(GatewayError, match="base_delay"):
        CircuitBreaker(base_delay=0.5, max_delay=0.1)
