"""Unit tests for the incremental AlterEgo builder (§4.3)."""

import pytest

from repro.core.alterego import AlterEgoGenerator, ReplacementPolicy
from repro.data.ratings import Rating
from repro.errors import ConfigError


@pytest.fixture()
def generator():
    xsim_map = {
        "s1": {"t1": 0.9, "t2": 0.5, "t3": 0.1},
        "s2": {"t1": 0.4, "t4": 0.8},
        "s3": {},
    }
    return AlterEgoGenerator(xsim_map, n_replacements=2)


class TestIncremental:
    def test_matches_batch_profile(self, generator):
        profile = {"s1": Rating("u", "s1", 5.0, 0), "s2": Rating("u", "s2", 2.0, 1)}
        batch = generator.alterego_profile("u", profile)
        builder = generator.incremental("u")
        builder.add(profile["s1"])
        builder.add(profile["s2"])
        assert builder.profile() == batch

    def test_order_independent(self, generator):
        ratings = [Rating("u", "s1", 5.0, 0), Rating("u", "s2", 2.0, 1)]
        forward = generator.incremental("u")
        backward = generator.incremental("u")
        for rating in ratings:
            forward.add(rating)
        for rating in reversed(ratings):
            backward.add(rating)
        assert forward.profile() == backward.profile()

    def test_duplicate_source_item_rejected(self, generator):
        builder = generator.incremental("u")
        builder.add(Rating("u", "s1", 5.0, 0))
        with pytest.raises(ConfigError, match="already folded"):
            builder.add(Rating("u", "s1", 4.0, 1))

    def test_unmappable_item_is_noop(self, generator):
        builder = generator.incremental("u")
        builder.add(Rating("u", "s3", 3.0, 0))
        assert builder.profile() == []
        assert len(builder) == 0

    def test_grows_monotonically(self, generator):
        builder = generator.incremental("u")
        builder.add(Rating("u", "s1", 5.0, 0))
        first = len(builder)
        builder.add(Rating("u", "s2", 2.0, 1))
        assert len(builder) >= first

    def test_private_incremental_consistent(self):
        xsim_map = {"s1": {"t1": 0.9, "t2": 0.1}}
        generator = AlterEgoGenerator(
            xsim_map, policy=ReplacementPolicy.PRIVATE,
            epsilon=1.0, seed=4, n_replacements=1)
        batch = generator.alterego_profile("u", {"s1": Rating("u", "s1", 4.0, 2)})
        builder = generator.incremental("u")
        builder.add(Rating("u", "s1", 4.0, 2))
        # memoised replacement draws make the two paths agree
        assert builder.profile() == batch
