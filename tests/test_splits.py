"""Unit tests for the evaluation split protocols (repro.data.splits)."""

import pytest

from repro.data.splits import (
    cold_start_split,
    overlap_fraction_split,
    sparsity_split,
)
from repro.errors import EvaluationError


class TestColdStart:
    def test_hides_entire_target_profiles(self, small_trace):
        split = cold_start_split(small_trace, seed=1)
        for user in split.test_users:
            assert not split.train.target.ratings.user_items(user)
            assert len(split.hidden.user_items(user)) > 0

    def test_source_profiles_untouched(self, small_trace):
        split = cold_start_split(small_trace, seed=1)
        for user in split.test_users:
            assert (split.train.source.ratings.user_items(user)
                    == small_trace.source.ratings.user_items(user))

    def test_deterministic(self, small_trace):
        assert (cold_start_split(small_trace, seed=5).test_users
                == cold_start_split(small_trace, seed=5).test_users)

    def test_seed_changes_selection(self, small_trace):
        assert (cold_start_split(small_trace, seed=5).test_users
                != cold_start_split(small_trace, seed=6).test_users)

    def test_bad_fraction_rejected(self, small_trace):
        with pytest.raises(EvaluationError):
            cold_start_split(small_trace, test_fraction=0.0)
        with pytest.raises(EvaluationError):
            cold_start_split(small_trace, test_fraction=1.0)

    def test_thresholds_too_strict(self, small_trace):
        with pytest.raises(EvaluationError, match="eligibility"):
            cold_start_split(small_trace, min_source=10_000)

    def test_hidden_pairs_match_hidden_table(self, small_split):
        assert len(small_split.hidden_pairs()) == small_split.n_hidden


class TestSparsity:
    def test_keeps_exactly_auxiliary(self, small_trace):
        split = sparsity_split(small_trace, auxiliary_size=2,
                               min_source=8, min_target=8, seed=1)
        for user in split.test_users:
            kept = split.train.target.ratings.user_items(user)
            assert len(kept) == 2

    def test_keeps_earliest_ratings(self, small_trace):
        split = sparsity_split(small_trace, auxiliary_size=1,
                               min_source=8, min_target=8, seed=1)
        user = split.test_users[0]
        kept = list(split.train.target.ratings.user_profile(user).values())
        hidden = [r for r in split.hidden if r.user == user]
        assert kept[0].timestep <= min(r.timestep for r in hidden)

    def test_zero_auxiliary_equals_cold_start_hiding(self, small_trace):
        split = sparsity_split(small_trace, auxiliary_size=0,
                               min_source=8, min_target=8, seed=1)
        for user in split.test_users:
            assert not split.train.target.ratings.user_items(user)

    def test_negative_auxiliary_rejected(self, small_trace):
        with pytest.raises(EvaluationError):
            sparsity_split(small_trace, auxiliary_size=-1)


class TestOverlapFraction:
    def test_test_users_stable_across_fractions(self, small_trace):
        low = overlap_fraction_split(small_trace, fraction=0.2, seed=2)
        high = overlap_fraction_split(small_trace, fraction=0.8, seed=2)
        assert low.test_users == high.test_users
        assert low.n_hidden == high.n_hidden

    def test_overlap_shrinks_with_fraction(self, small_trace):
        low = overlap_fraction_split(small_trace, fraction=0.2, seed=2)
        high = overlap_fraction_split(small_trace, fraction=0.8, seed=2)
        assert len(low.train.overlap_users) < len(high.train.overlap_users)

    def test_full_fraction_keeps_all_straddlers(self, small_trace):
        base = cold_start_split(small_trace, seed=2)
        full = overlap_fraction_split(small_trace, fraction=1.0, seed=2)
        assert full.train.overlap_users == base.train.overlap_users

    def test_bad_fraction_rejected(self, small_trace):
        with pytest.raises(EvaluationError):
            overlap_fraction_split(small_trace, fraction=0.0)
