"""Unit tests for the synthetic generators (repro.data.synthetic)."""

import pytest

from repro.data.synthetic import (
    MOVIELENS_GENRES,
    SyntheticConfig,
    amazon_like,
    movielens_like,
    scaled,
)
from repro.errors import ConfigError


class TestConfigValidation:
    def test_default_is_valid(self):
        SyntheticConfig().validated()

    def test_overlap_exceeding_users(self):
        with pytest.raises(ConfigError, match="n_overlap"):
            SyntheticConfig(n_users_source=10, n_overlap=20).validated()

    def test_bad_transfer_strength(self):
        with pytest.raises(ConfigError, match="transfer_strength"):
            SyntheticConfig(transfer_strength=1.5).validated()

    def test_nonpositive_counts(self):
        with pytest.raises(ConfigError):
            SyntheticConfig(n_items_source=0).validated()

    def test_ratings_below_minimum(self):
        with pytest.raises(ConfigError):
            SyntheticConfig(ratings_per_user=2.0, min_ratings_per_user=4).validated()

    def test_scaled(self):
        config = scaled(SyntheticConfig(), 0.5)
        assert config.n_users_source == SyntheticConfig().n_users_source // 2

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            scaled(SyntheticConfig(), 0)


class TestAmazonLike:
    def test_deterministic(self, small_config):
        first = amazon_like(small_config)
        second = amazon_like(small_config)
        assert sorted(map(repr, first.source.ratings)) == sorted(
            map(repr, second.source.ratings))

    def test_counts_respected(self, small_trace, small_config):
        assert len(small_trace.source.users) == small_config.n_users_source
        assert len(small_trace.overlap_users) == small_config.n_overlap

    def test_item_domains_disjoint(self, small_trace):
        assert not (small_trace.source.items & small_trace.target.items)

    def test_ratings_in_scale(self, small_trace):
        for rating in small_trace.merged():
            assert 1.0 <= rating.value <= 5.0
            assert rating.value == int(rating.value)

    def test_min_ratings_per_user(self, small_trace, small_config):
        for user in small_trace.source.users:
            profile = small_trace.source.ratings.user_profile(user)
            assert len(profile) >= small_config.min_ratings_per_user

    def test_timesteps_strided_and_increasing(self, small_trace, small_config):
        user = sorted(small_trace.source.users)[0]
        steps = sorted(r.timestep for r in
                       small_trace.source.ratings.user_profile(user).values())
        assert steps[0] == 0
        assert all(b - a == small_config.timestep_stride
                   for a, b in zip(steps, steps[1:]))

    def test_different_seeds_differ(self, small_config):
        from dataclasses import replace
        other = amazon_like(replace(small_config, seed=99))
        base = amazon_like(small_config)
        assert sorted(map(repr, other.source.ratings)) != sorted(
            map(repr, base.source.ratings))


class TestMovielensLike:
    def test_genres_assigned_to_every_item(self):
        dataset = movielens_like(n_users=60, n_items=50, seed=5)
        assert set(dataset.item_genres) == set(dataset.items) | (
            set(dataset.item_genres) - set(dataset.items))
        for genres in dataset.item_genres.values():
            assert 1 <= len(genres) <= 3
            assert all(g in MOVIELENS_GENRES for g in genres)

    def test_too_many_genres_rejected(self):
        with pytest.raises(ConfigError):
            movielens_like(n_genres=99)

    def test_deterministic(self):
        a = movielens_like(n_users=40, n_items=30, seed=2)
        b = movielens_like(n_users=40, n_items=30, seed=2)
        assert sorted(map(repr, a.ratings)) == sorted(map(repr, b.ratings))


class TestInterstellarScenario:
    def test_matches_figure_1a(self, scenario):
        # Cecilia is the only straddler.
        assert scenario.overlap_users == {"cecilia"}
        # Interstellar and The Forever War share no rater...
        movies = scenario.source.ratings
        books = scenario.target.ratings
        assert not (movies.item_users("interstellar") & books.item_users("forever-war"))
        # ...but the Bob->Inception->Cecilia meta-path exists.
        assert "inception" in movies.user_items("bob")
        assert "forever-war" in books.user_items("cecilia")

    def test_titles_present(self, scenario):
        assert scenario.source.title_of("interstellar") == "Interstellar"
        assert scenario.target.title_of("forever-war") == "The Forever War"
