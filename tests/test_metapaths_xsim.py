"""Unit tests for meta-path enumeration and the X-Sim metric."""

import pytest

from repro.core.layers import Layer, LayerPartition
from repro.core.metapaths import (
    build_pruned_adjacency,
    enumerate_meta_paths,
    layer_sequence,
)
from repro.core.xsim import (
    SignificanceCache,
    aggregate_xsim,
    path_certainty,
    path_similarity,
)
from repro.errors import GraphError, SimilarityError
from repro.similarity.graph import build_similarity_graph


class TestPathMath:
    def test_path_similarity_weighted_mean(self):
        # edges: (sim, significance)
        assert path_similarity([(1.0, 3), (0.0, 1)]) == pytest.approx(0.75)

    def test_path_similarity_zero_significance_undefined(self):
        with pytest.raises(SimilarityError):
            path_similarity([(0.5, 0), (0.9, 0)])

    def test_path_similarity_empty(self):
        with pytest.raises(SimilarityError):
            path_similarity([])

    def test_certainty_is_product(self):
        assert path_certainty([0.5, 0.5]) == pytest.approx(0.25)

    def test_longer_paths_lose_certainty(self):
        short = path_certainty([0.8])
        long = path_certainty([0.8, 0.8, 0.8])
        assert long < short

    def test_aggregate_xsim_weighted(self):
        # two paths: (s_p, c_p)
        value = aggregate_xsim([(1.0, 0.8), (0.0, 0.2)])
        assert value == pytest.approx(0.8)

    def test_aggregate_no_certain_paths_is_none(self):
        assert aggregate_xsim([(0.7, 0.0)]) is None
        assert aggregate_xsim([]) is None


class TestLayerSequence:
    def test_from_nn(self):
        keys = layer_sequence(Layer.NN, "s", "t")
        assert keys == [("s", Layer.NB), ("s", Layer.BB),
                        ("t", Layer.BB), ("t", Layer.NB), ("t", Layer.NN)]

    def test_from_bb(self):
        keys = layer_sequence(Layer.BB, "s", "t")
        assert keys == [("t", Layer.BB), ("t", Layer.NB), ("t", Layer.NN)]


class TestPrunedAdjacency:
    def test_respects_k(self, small_trace):
        graph = build_similarity_graph(small_trace.merged())
        partition = LayerPartition.from_graph(graph, small_trace.domain_map())
        adjacency = build_pruned_adjacency(graph, partition, k=3)
        for per_layer in adjacency.values():
            for edges in per_layer.values():
                assert len(edges) <= 3

    def test_no_same_layer_edges(self, small_trace):
        graph = build_similarity_graph(small_trace.merged())
        partition = LayerPartition.from_graph(graph, small_trace.domain_map())
        adjacency = build_pruned_adjacency(graph, partition, k=5)
        for item, per_layer in adjacency.items():
            own = (partition.domain_of(item), partition.layer_of(item))
            assert own not in per_layer

    def test_invalid_k(self, small_trace):
        graph = build_similarity_graph(small_trace.merged())
        partition = LayerPartition.from_graph(graph, small_trace.domain_map())
        with pytest.raises(GraphError):
            build_pruned_adjacency(graph, partition, k=0)


class TestEnumeration:
    def _setup(self, data):
        merged = data.merged()
        graph = build_similarity_graph(merged)
        partition = LayerPartition.from_graph(graph, data.domain_map())
        adjacency = build_pruned_adjacency(graph, partition, k=5)
        cache = SignificanceCache(merged)
        return partition, adjacency, cache

    def test_paths_end_in_target_domain(self, two_domain_micro):
        partition, adjacency, cache = self._setup(two_domain_micro)
        for item in two_domain_micro.source.items:
            for path in enumerate_meta_paths(
                    item, partition, adjacency, cache.significance):
                assert partition.domain_of(path.terminal) == "b"
                assert path.source == item

    def test_at_most_one_item_per_layer(self, two_domain_micro):
        partition, adjacency, cache = self._setup(two_domain_micro)
        for item in two_domain_micro.source.items:
            for path in enumerate_meta_paths(
                    item, partition, adjacency, cache.significance):
                layers = [(partition.domain_of(i), partition.layer_of(i))
                          for i in path.items]
                assert len(layers) == len(set(layers))

    def test_max_paths_cap(self, small_trace):
        partition, adjacency, cache = self._setup(small_trace)
        item = sorted(small_trace.source.items)[0]
        capped = list(enumerate_meta_paths(
            item, partition, adjacency, cache.significance, max_paths=3))
        assert len(capped) <= 3

    def test_figure_1a_path_found(self, scenario):
        partition, adjacency, cache = self._setup(scenario)
        paths = list(enumerate_meta_paths(
            "interstellar", partition, adjacency, cache.significance))
        routes = {path.items for path in paths}
        assert any(
            path[-1] == "forever-war" and "inception" in path
            for path in routes), routes

    def test_edges_align_with_items(self, two_domain_micro):
        partition, adjacency, cache = self._setup(two_domain_micro)
        for item in two_domain_micro.source.items:
            for path in enumerate_meta_paths(
                    item, partition, adjacency, cache.significance):
                assert len(path.edges) == len(path.items) - 1


class TestSignificanceCache:
    def test_cache_consistency(self, tiny_table):
        from repro.similarity.significance import (
            normalized_significance,
            significance,
        )
        cache = SignificanceCache(tiny_table)
        assert cache.significance("a", "b") == significance(tiny_table, "a", "b")
        assert cache.normalized("a", "b") == normalized_significance(
            tiny_table, "a", "b")
        # order-insensitive
        assert cache.significance("b", "a") == cache.significance("a", "b")
