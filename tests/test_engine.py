"""Unit tests for the sparklite dataflow engine (repro.engine)."""

import subprocess
import sys

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.cluster import ClusterSpec, CostModel
from repro.engine.dataset_api import DataflowContext
from repro.engine.metrics import merge_reports, speedup_curve
from repro.engine.partitioner import HashPartitioner, stable_hash
from repro.engine.scheduler import stage_makespan
from repro.errors import EngineError


@pytest.fixture()
def context():
    return DataflowContext(ClusterSpec(n_machines=2))


#: Keys mixing every repr-stable type the engine shuffles, with their
#: pinned FNV-1a values. Pinning exact integers is the strongest possible
#: cross-process/cross-run guarantee: any change to repr formatting, the
#: hash constants or the guard would break these on every platform.
_GOLDEN_HASHES = [
    ("u00042", 5148693919920118806),
    (("u7", 3.5), 2188899342245529074),
    ((1, 2.5, "x"), 17917055962576785306),
    (0.1, 5627490830035591270),
    (-0.0, 13250730907835653014),
    (float("inf"), 3143526941665320968),
    (12345, 16534377278781491704),
    (b"bytes", 922132580873029630),
    (None, 7393530455478880603),
    (True, 9649694456298746757),
]

#: Hashable repr-stable scalars for the partition-assignment property.
_scalar_keys = st.one_of(
    st.text(max_size=8),
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.none(),
)
_stable_keys = st.one_of(_scalar_keys, st.tuples(_scalar_keys, _scalar_keys))


class TestPartitioner:
    def test_stable_across_calls(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_range(self):
        partitioner = HashPartitioner(7)
        for key in ("x", "y", 123, ("a", "b")):
            assert 0 <= partitioner.partition_of(key) < 7

    def test_invalid_partition_count(self):
        with pytest.raises(EngineError):
            HashPartitioner(0)

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)

    def test_golden_hashes_pinned(self):
        for key, expected in _GOLDEN_HASHES:
            assert stable_hash(key) == expected, key

    @given(key=_stable_keys, n_partitions=st.integers(1, 16))
    def test_partition_assignment_is_value_determined(self, key, n_partitions):
        # repr-stable keys (floats included: repr is the shortest
        # round-tripping decimal, fixed since CPython 3.1) must route to
        # one partition however many times and wherever they are hashed.
        partitioner = HashPartitioner(n_partitions)
        first = partitioner.partition_of(key)
        assert 0 <= first < n_partitions
        assert partitioner.partition_of(key) == first
        assert stable_hash(key) == stable_hash(eval(repr(key)))

    def test_assignment_identical_in_fresh_process(self):
        # The property the sharded sweep leans on: a worker process (no
        # shared interpreter state, fresh hash salt) computes the exact
        # same shard layout as the driver.
        import os
        from pathlib import Path

        import repro

        keys = [key for key, _ in _GOLDEN_HASHES]
        expected = [stable_hash(key) for key in keys]
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        script = (
            "from repro.engine.partitioner import stable_hash\n"
            "inf = float('inf')\n"
            f"keys = {keys!r}\n"
            "print([stable_hash(k) for k in keys])\n")
        env = dict(os.environ, PYTHONPATH=src_dir, PYTHONHASHSEED="random")
        output = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            check=True, env=env).stdout
        assert eval(output) == expected

    def test_id_based_default_repr_rejected(self):
        class Opaque:
            pass

        with pytest.raises(EngineError, match="id-based repr"):
            stable_hash(Opaque())
        with pytest.raises(EngineError, match="id-based repr"):
            HashPartitioner(4).partition_of(("u1", Opaque()))

    def test_unordered_collections_rejected(self):
        # Set repr order follows the per-process hash salt — hashing it
        # would shard nondeterministically, so it must raise instead.
        with pytest.raises(EngineError, match="repr order"):
            stable_hash(frozenset({"a", "b"}))
        with pytest.raises(EngineError, match="repr order"):
            HashPartitioner(4).partition_of(("u1", {"x", "y"}))

    def test_value_repr_with_scary_substring_allowed(self):
        # The guard must not reject value-typed keys whose repr merely
        # contains the " at 0x" marker.
        assert stable_hash("object at 0xdeadbeef") == stable_hash(
            "object at 0xdeadbeef")

    def test_assign_and_split(self):
        partitioner = HashPartitioner(3)
        keys = [f"u{k}" for k in range(20)]
        assignments = partitioner.assign(keys)
        assert assignments == [partitioner.partition_of(k) for k in keys]
        parts = partitioner.split(keys)
        assert sorted(sum(parts, [])) == list(range(20))
        for part_id, positions in enumerate(parts):
            assert positions == sorted(positions)
            for position in positions:
                assert assignments[position] == part_id


class TestClusterSpec:
    def test_validation(self):
        with pytest.raises(EngineError):
            ClusterSpec(n_machines=0).validated()
        with pytest.raises(EngineError):
            ClusterSpec(n_machines=1, n_slots_per_machine=0).validated()
        with pytest.raises(EngineError):
            ClusterSpec(n_machines=1, cost=CostModel(task_overhead=-1)).validated()

    def test_slots(self):
        spec = ClusterSpec(n_machines=3, n_slots_per_machine=4)
        assert spec.total_slots == 12
        assert spec.default_parallelism() == 24


class TestScheduler:
    def test_empty_stage(self):
        assert stage_makespan([], ClusterSpec(n_machines=2)) == 0.0

    def test_single_slot_sums(self):
        spec = ClusterSpec(n_machines=1, n_slots_per_machine=1)
        assert stage_makespan([1.0, 2.0, 3.0], spec) == pytest.approx(6.0)

    def test_parallel_slots_split(self):
        spec = ClusterSpec(n_machines=1, n_slots_per_machine=2)
        assert stage_makespan([2.0, 2.0], spec) == pytest.approx(2.0)

    def test_lpt_handles_skew(self):
        spec = ClusterSpec(n_machines=1, n_slots_per_machine=2)
        # one whale bounds the makespan
        assert stage_makespan([10.0, 1.0, 1.0], spec) == pytest.approx(10.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(EngineError):
            stage_makespan([-1.0], ClusterSpec(n_machines=1))


class TestTransformations:
    def test_map_filter_collect(self, context):
        result = (context.parallelize(range(10))
                  .map(lambda x: x * 2)
                  .filter(lambda x: x % 4 == 0)
                  .collect())
        assert sorted(result) == [0, 4, 8, 12, 16]

    def test_flat_map(self, context):
        result = context.parallelize([1, 2]).flat_map(lambda x: [x] * x).collect()
        assert sorted(result) == [1, 2, 2]

    def test_reduce_by_key(self, context):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        result = context.parallelize(pairs).reduce_by_key(lambda x, y: x + y).collect()
        assert sorted(result) == [("a", 4), ("b", 2)]

    def test_group_by_key(self, context):
        pairs = [("a", 1), ("a", 2), ("b", 3)]
        result = dict(context.parallelize(pairs).group_by_key().collect())
        assert sorted(result["a"]) == [1, 2]
        assert result["b"] == [3]

    def test_map_values_and_key_by(self, context):
        result = (context.parallelize([1, 2, 3])
                  .key_by(lambda x: x % 2)
                  .map_values(lambda v: v * 10)
                  .collect())
        assert sorted(result) == [(0, 20), (1, 10), (1, 30)]

    def test_join(self, context):
        left = context.parallelize([("a", 1), ("b", 2)])
        right = context.parallelize([("a", "x"), ("c", "y")])
        assert left.join(right).collect() == [("a", (1, "x"))]

    def test_union(self, context):
        left = context.parallelize([1, 2])
        right = context.parallelize([3])
        assert sorted(left.union(right).collect()) == [1, 2, 3]

    def test_count(self, context):
        assert context.parallelize(range(17)).count() == 17

    def test_keyed_op_requires_pairs(self, context):
        collection = context.parallelize([1, 2, 3]).reduce_by_key(lambda a, b: a + b)
        with pytest.raises(EngineError, match="requires .key, value."):
            collection.collect()

    def test_cross_context_join_rejected(self, context):
        other = DataflowContext(ClusterSpec(n_machines=1))
        left = context.parallelize([("a", 1)])
        right = other.parallelize([("a", 2)])
        with pytest.raises(EngineError, match="different contexts"):
            left.join(right)

    def test_map_partitions(self, context):
        result = context.parallelize(range(8), n_partitions=2).map_partitions(
            lambda part: [sum(part)]).collect()
        assert sum(result) == sum(range(8))

    def test_cache_reuses_materialisation(self, context):
        calls = []

        def spy(x):
            calls.append(x)
            return x
        cached = context.parallelize(range(5)).map(spy).cache()
        cached.collect()
        first = len(calls)
        cached.collect()
        assert len(calls) == first  # no recomputation

    def test_results_independent_of_machine_count(self):
        pairs = [(k % 5, k) for k in range(60)]
        results = []
        for machines in (1, 4, 9):
            ctx = DataflowContext(ClusterSpec(n_machines=machines))
            results.append(sorted(ctx.parallelize(pairs).reduce_by_key(
                lambda a, b: a + b).collect()))
        assert results[0] == results[1] == results[2]


class TestReports:
    def test_report_contains_stages(self, context):
        _, report = (context.parallelize(range(50))
                     .map(lambda x: (x % 3, x))
                     .reduce_by_key(lambda a, b: a + b)
                     .collect_with_report())
        assert report.makespan > 0
        assert any("reduce_by_key" in s.description for s in report.stages)

    def test_narrow_ops_fused_into_one_stage(self, context):
        _, report = (context.parallelize(range(10))
                     .map(lambda x: x + 1)
                     .filter(lambda x: x > 2)
                     .map(lambda x: x * 2)
                     .collect_with_report())
        assert len(report.stages) == 1
        assert "map+filter+map" in report.stages[0].description

    def test_broadcast_cost_charged_once(self, context):
        context.broadcast([1] * 100, n_records=100)
        _, report = context.parallelize([1]).map(lambda x: x).collect_with_report()
        assert report.broadcast_seconds > 0
        _, second = context.parallelize([1]).map(lambda x: x).collect_with_report()
        assert second.broadcast_seconds == 0.0

    def test_merge_reports(self, context):
        _, first = context.parallelize([1]).map(lambda x: x).collect_with_report()
        _, second = context.parallelize([2]).map(lambda x: x).collect_with_report()
        merged = merge_reports([first, second])
        assert merged.makespan == pytest.approx(first.makespan + second.makespan)

    def test_merge_rejects_mixed_clusters(self, context):
        other = DataflowContext(ClusterSpec(n_machines=9))
        _, first = context.parallelize([1]).map(lambda x: x).collect_with_report()
        _, second = other.parallelize([1]).map(lambda x: x).collect_with_report()
        with pytest.raises(EngineError):
            merge_reports([first, second])


class TestSpeedupCurve:
    def test_relative_to_baseline(self):
        curve = speedup_curve({5: 10.0, 10: 5.0, 20: 2.5})
        assert curve == {5: 1.0, 10: 2.0, 20: 4.0}

    def test_missing_baseline_rejected(self):
        with pytest.raises(EngineError):
            speedup_curve({10: 5.0}, baseline_machines=5)
