"""Unit tests for the sparklite dataflow engine (repro.engine)."""

import pytest

from repro.engine.cluster import ClusterSpec, CostModel
from repro.engine.dataset_api import DataflowContext
from repro.engine.metrics import merge_reports, speedup_curve
from repro.engine.partitioner import HashPartitioner, stable_hash
from repro.engine.scheduler import stage_makespan
from repro.errors import EngineError


@pytest.fixture()
def context():
    return DataflowContext(ClusterSpec(n_machines=2))


class TestPartitioner:
    def test_stable_across_calls(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_range(self):
        partitioner = HashPartitioner(7)
        for key in ("x", "y", 123, ("a", "b")):
            assert 0 <= partitioner.partition_of(key) < 7

    def test_invalid_partition_count(self):
        with pytest.raises(EngineError):
            HashPartitioner(0)

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)


class TestClusterSpec:
    def test_validation(self):
        with pytest.raises(EngineError):
            ClusterSpec(n_machines=0).validated()
        with pytest.raises(EngineError):
            ClusterSpec(n_machines=1, n_slots_per_machine=0).validated()
        with pytest.raises(EngineError):
            ClusterSpec(n_machines=1,
                        cost=CostModel(task_overhead=-1)).validated()

    def test_slots(self):
        spec = ClusterSpec(n_machines=3, n_slots_per_machine=4)
        assert spec.total_slots == 12
        assert spec.default_parallelism() == 24


class TestScheduler:
    def test_empty_stage(self):
        assert stage_makespan([], ClusterSpec(n_machines=2)) == 0.0

    def test_single_slot_sums(self):
        spec = ClusterSpec(n_machines=1, n_slots_per_machine=1)
        assert stage_makespan([1.0, 2.0, 3.0], spec) == pytest.approx(6.0)

    def test_parallel_slots_split(self):
        spec = ClusterSpec(n_machines=1, n_slots_per_machine=2)
        assert stage_makespan([2.0, 2.0], spec) == pytest.approx(2.0)

    def test_lpt_handles_skew(self):
        spec = ClusterSpec(n_machines=1, n_slots_per_machine=2)
        # one whale bounds the makespan
        assert stage_makespan([10.0, 1.0, 1.0], spec) == pytest.approx(10.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(EngineError):
            stage_makespan([-1.0], ClusterSpec(n_machines=1))


class TestTransformations:
    def test_map_filter_collect(self, context):
        result = (context.parallelize(range(10))
                  .map(lambda x: x * 2)
                  .filter(lambda x: x % 4 == 0)
                  .collect())
        assert sorted(result) == [0, 4, 8, 12, 16]

    def test_flat_map(self, context):
        result = context.parallelize([1, 2]).flat_map(
            lambda x: [x] * x).collect()
        assert sorted(result) == [1, 2, 2]

    def test_reduce_by_key(self, context):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        result = context.parallelize(pairs).reduce_by_key(
            lambda x, y: x + y).collect()
        assert sorted(result) == [("a", 4), ("b", 2)]

    def test_group_by_key(self, context):
        pairs = [("a", 1), ("a", 2), ("b", 3)]
        result = dict(context.parallelize(pairs).group_by_key().collect())
        assert sorted(result["a"]) == [1, 2]
        assert result["b"] == [3]

    def test_map_values_and_key_by(self, context):
        result = (context.parallelize([1, 2, 3])
                  .key_by(lambda x: x % 2)
                  .map_values(lambda v: v * 10)
                  .collect())
        assert sorted(result) == [(0, 20), (1, 10), (1, 30)]

    def test_join(self, context):
        left = context.parallelize([("a", 1), ("b", 2)])
        right = context.parallelize([("a", "x"), ("c", "y")])
        assert left.join(right).collect() == [("a", (1, "x"))]

    def test_union(self, context):
        left = context.parallelize([1, 2])
        right = context.parallelize([3])
        assert sorted(left.union(right).collect()) == [1, 2, 3]

    def test_count(self, context):
        assert context.parallelize(range(17)).count() == 17

    def test_keyed_op_requires_pairs(self, context):
        collection = context.parallelize([1, 2, 3]).reduce_by_key(
            lambda a, b: a + b)
        with pytest.raises(EngineError, match="requires .key, value."):
            collection.collect()

    def test_cross_context_join_rejected(self, context):
        other = DataflowContext(ClusterSpec(n_machines=1))
        left = context.parallelize([("a", 1)])
        right = other.parallelize([("a", 2)])
        with pytest.raises(EngineError, match="different contexts"):
            left.join(right)

    def test_map_partitions(self, context):
        result = context.parallelize(range(8), n_partitions=2).map_partitions(
            lambda part: [sum(part)]).collect()
        assert sum(result) == sum(range(8))

    def test_cache_reuses_materialisation(self, context):
        calls = []

        def spy(x):
            calls.append(x)
            return x
        cached = context.parallelize(range(5)).map(spy).cache()
        cached.collect()
        first = len(calls)
        cached.collect()
        assert len(calls) == first  # no recomputation

    def test_results_independent_of_machine_count(self):
        pairs = [(k % 5, k) for k in range(60)]
        results = []
        for machines in (1, 4, 9):
            ctx = DataflowContext(ClusterSpec(n_machines=machines))
            results.append(sorted(ctx.parallelize(pairs).reduce_by_key(
                lambda a, b: a + b).collect()))
        assert results[0] == results[1] == results[2]


class TestReports:
    def test_report_contains_stages(self, context):
        _, report = (context.parallelize(range(50))
                     .map(lambda x: (x % 3, x))
                     .reduce_by_key(lambda a, b: a + b)
                     .collect_with_report())
        assert report.makespan > 0
        assert any("reduce_by_key" in s.description for s in report.stages)

    def test_narrow_ops_fused_into_one_stage(self, context):
        _, report = (context.parallelize(range(10))
                     .map(lambda x: x + 1)
                     .filter(lambda x: x > 2)
                     .map(lambda x: x * 2)
                     .collect_with_report())
        assert len(report.stages) == 1
        assert "map+filter+map" in report.stages[0].description

    def test_broadcast_cost_charged_once(self, context):
        context.broadcast([1] * 100, n_records=100)
        _, report = context.parallelize([1]).map(
            lambda x: x).collect_with_report()
        assert report.broadcast_seconds > 0
        _, second = context.parallelize([1]).map(
            lambda x: x).collect_with_report()
        assert second.broadcast_seconds == 0.0

    def test_merge_reports(self, context):
        _, first = context.parallelize([1]).map(
            lambda x: x).collect_with_report()
        _, second = context.parallelize([2]).map(
            lambda x: x).collect_with_report()
        merged = merge_reports([first, second])
        assert merged.makespan == pytest.approx(
            first.makespan + second.makespan)

    def test_merge_rejects_mixed_clusters(self, context):
        other = DataflowContext(ClusterSpec(n_machines=9))
        _, first = context.parallelize([1]).map(
            lambda x: x).collect_with_report()
        _, second = other.parallelize([1]).map(
            lambda x: x).collect_with_report()
        with pytest.raises(EngineError):
            merge_reports([first, second])


class TestSpeedupCurve:
    def test_relative_to_baseline(self):
        curve = speedup_curve({5: 10.0, 10: 5.0, 20: 2.5})
        assert curve == {5: 1.0, 10: 2.0, 20: 4.0}

    def test_missing_baseline_rejected(self):
        with pytest.raises(EngineError):
            speedup_curve({10: 5.0}, baseline_machines=5)
