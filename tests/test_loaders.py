"""Unit tests for CSV persistence (repro.data.loaders)."""

import pytest

from repro.data.dataset import Dataset
from repro.data.loaders import (
    read_cross_domain,
    read_dataset,
    read_ratings_csv,
    write_cross_domain,
    write_dataset,
    write_ratings_csv,
)
from repro.data.ratings import Rating, RatingTable
from repro.errors import DataError


class TestRatingsRoundtrip:
    def test_roundtrip_preserves_everything(self, tiny_table, tmp_path):
        path = tmp_path / "ratings.csv"
        write_ratings_csv(tiny_table, path)
        loaded = read_ratings_csv(path)
        assert sorted(map(repr, loaded)) == sorted(map(repr, tiny_table))

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("user,thing\nu,1\n")
        with pytest.raises(DataError, match="header"):
            read_ratings_csv(path)

    def test_bad_row_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("user,item,rating\nu,i,notanumber\n")
        with pytest.raises(DataError, match=":2:"):
            read_ratings_csv(path)

    def test_missing_timestep_defaults_zero(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("user,item,rating\nu,i,3\n")
        loaded = read_ratings_csv(path)
        assert loaded.get("u", "i").timestep == 0


class TestDatasetRoundtrip:
    def test_with_metadata(self, tmp_path):
        dataset = Dataset(
            "books", RatingTable([Rating("u", "b1", 4.0, 3)]),
            item_titles={"b1": "The Forever War"},
            item_genres={"b1": ("Sci-Fi", "War")})
        write_dataset(dataset, tmp_path / "books")
        loaded = read_dataset(tmp_path / "books", "books")
        assert loaded.title_of("b1") == "The Forever War"
        assert loaded.item_genres["b1"] == ("Sci-Fi", "War")
        assert loaded.ratings.value("u", "b1") == 4.0

    def test_without_metadata_files(self, tmp_path):
        dataset = Dataset("d", RatingTable([Rating("u", "i", 2.0)]))
        write_dataset(dataset, tmp_path / "d")
        loaded = read_dataset(tmp_path / "d", "d")
        assert loaded.item_titles == {}
        assert loaded.item_genres == {}


class TestCrossDomainRoundtrip:
    def test_roundtrip(self, scenario, tmp_path):
        write_cross_domain(scenario, tmp_path)
        loaded = read_cross_domain(tmp_path, "movies", "books")
        assert loaded.overlap_users == scenario.overlap_users
        assert loaded.source.items == scenario.source.items
        assert loaded.target.items == scenario.target.items
