"""Unit tests for the evaluation harness, metrics and reporting."""

import pytest

from repro.cf.item_average import ItemAverageRecommender
from repro.evaluation.harness import evaluate
from repro.evaluation.metrics import mae, precision_at_n, rmse
from repro.evaluation.reporting import ExperimentResult, format_table
from repro.evaluation.systems import (
    make_item_average,
    make_knn_sd,
    make_linked_knn,
    make_nxmap,
    make_remote_user,
    make_xmap,
)
from repro.errors import EvaluationError


class TestMetrics:
    def test_mae_hand_computed(self):
        assert mae([3.0, 4.0], [4.0, 4.0]) == pytest.approx(0.5)

    def test_mae_zero_for_perfect(self):
        assert mae([1.0, 5.0], [1.0, 5.0]) == 0.0

    def test_mae_empty_rejected(self):
        with pytest.raises(EvaluationError):
            mae([], [])

    def test_mae_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            mae([1.0], [1.0, 2.0])

    def test_rmse_penalises_outliers_more(self):
        even = [3.0, 3.0]
        truths = [4.0, 2.0]
        spiky = [5.0, 3.0]
        truths2 = [4.0, 2.0]
        assert rmse(spiky, truths2) >= rmse(even, truths)

    def test_rmse_geq_mae(self):
        predictions = [1.0, 4.0, 2.5]
        truths = [2.0, 2.0, 2.5]
        assert rmse(predictions, truths) >= mae(predictions, truths)

    def test_precision_at_n(self):
        assert precision_at_n(["a", "b", "c"], {"a", "c"}, n=2) == 0.5
        assert precision_at_n([], {"a"}, n=3) == 0.0
        with pytest.raises(EvaluationError):
            precision_at_n(["a"], {"a"}, n=0)


class TestHarness:
    def test_evaluate_item_average(self, small_split):
        rec = ItemAverageRecommender(small_split.train.target.ratings)
        result = evaluate("ItemAverage", rec, small_split)
        assert result.n_predictions == small_split.n_hidden
        assert 0.0 < result.mae < 4.0
        assert result.rmse >= result.mae
        assert "ItemAverage" in result.describe()


class TestSystemFactories:
    def test_simple_factories(self, small_split):
        for factory in (make_item_average, make_remote_user,
                        make_linked_knn, make_knn_sd):
            recommender = factory(small_split)
            user, item, _ = small_split.hidden_pairs()[0]
            assert 1.0 <= recommender.predict(user, item) <= 5.0

    def test_nxmap_factory(self, small_split):
        recommender = make_nxmap(small_split, k=10, prune_k=6)
        user, item, _ = small_split.hidden_pairs()[0]
        assert 1.0 <= recommender.predict(user, item) <= 5.0

    def test_xmap_factory_uses_tuned_defaults(self, small_split):
        recommender = make_xmap(small_split, mode="user", k=10, prune_k=6)
        assert recommender.config.epsilon == 0.6
        assert recommender.config.epsilon_prime == 0.3


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 0.51234}, {"name": "bb", "value": 2.0}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "0.5123" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_missing_cells(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "a" in text and "b" in text

    def test_experiment_result_render(self):
        result = ExperimentResult(
            experiment_id="figX", title="demo",
            rows=[{"k": 1}], columns=["k"], notes=["hello"])
        rendered = result.render()
        assert "figX" in rendered
        assert "note: hello" in rendered
