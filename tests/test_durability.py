"""The durability layer: WAL, checkpoints, fault-injected recovery.

Contracts under test:

* **RatingLog** — append → replay round trips batches bit-identically
  (floats through ``repr``), segments rotate by size, group commit
  lags ``durable_seq`` behind ``last_seq`` until a sync, pruning never
  touches the active segment.
* **Repair** — a torn tail, a corrupt CRC frame, or a truncated
  segment cuts the log back to the last valid record (later segments
  dropped), keeps sequence numbering pinned, and read-only opens
  diagnose without modifying a byte.
* **Recovery bit-identity** — the tentpole property: for *every*
  enumerated crash point in a write/checkpoint stream (torn mid-frame
  appends and mid-checkpoint deaths included), recovering the store
  yields stores / indexes / adjacency / significance census
  bit-identical (per backend, per shard count) to a writer that never
  crashed past the durable prefix. Crashes *during recovery itself*
  are swept the same way.
* **kill -9** — the same property under real uncatchable ``SIGKILL``
  in a subprocess writer at deterministic env-armed crash points
  (marked ``crash`` so constrained environments can deselect them).
* **Registry** — :meth:`ModelRegistry.recover` serves within 1e-9 of
  the never-crashed registry across interleaved update rounds.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.data.matrix import numpy_available
from repro.data.ratings import Rating, RatingTable
from repro.durability.faults import InjectedCrash, injected_crashes
from repro.durability.log import SEGMENT_MAGIC, RatingLog
from repro.durability.manager import (
    CHECKPOINT_FILE,
    CheckpointPolicy,
    DurableSweep,
)
from repro.engine.sharded_sweep import IncrementalSweep
from repro.errors import DurabilityError
from repro.serving.registry import ModelRegistry
from repro.serving.service import RecommendationService
from repro.serving.snapshot import STORE_ARRAY_NAMES

_BACKENDS = [pytest.param(True, id="numpy"), pytest.param(False, id="pure-python")]

_SRC = Path(__file__).resolve().parent.parent / "src"


def _toggle_backend(monkeypatch, use_numpy):
    if use_numpy and not numpy_available():
        pytest.skip("numpy fast path unavailable")
    monkeypatch.setenv("REPRO_PURE_PYTHON", "" if use_numpy else "1")


def _aslist(values):
    return values.tolist() if hasattr(values, "tolist") else list(values)


def _batch(*specs) -> list[Rating]:
    return [Rating(user, item, value, timestep)
            for user, item, value, timestep in specs]


def _scenario(seed: int = 3, n_base: int = 36, n_batches: int = 5, batch_size: int = 3):
    """A deterministic base table plus append batches; batches bring in
    new users and new items, (user, item) pairs never repeat."""
    rng = random.Random(seed)
    pairs: set[tuple[str, str]] = set()

    def fresh(n_users, n_items):
        while True:
            pair = (f"u{rng.randrange(n_users)}", f"i{rng.randrange(n_items)}")
            if pair not in pairs:
                pairs.add(pair)
                return pair

    timestep = 0
    base = []
    for _ in range(n_base):
        user, item = fresh(10, 10)
        base.append(Rating(user, item, float(rng.choice([1, 2, 3, 4, 5])), timestep))
        timestep += 1
    batches = []
    for _ in range(n_batches):
        batch = []
        for _ in range(batch_size):
            user, item = fresh(13, 13)
            batch.append(Rating(user, item,
                                float(rng.choice([1, 2, 3, 4, 5])),
                                timestep))
            timestep += 1
        batches.append(batch)
    return RatingTable(base), batches


# The writer configuration the crash sweeps run under: checkpoints
# every 2 batches, rotation after ~192 bytes, fsync every 2nd append —
# small enough that one scenario visits every kind of crash point.
_WRITER_KWARGS = dict(n_shards=2, with_significance=True, cf_k=8,
                      group_commit=2, segment_bytes=192)


def _run_writer(directory, table, batches):
    durable = DurableSweep(directory, table,
                           policy=CheckpointPolicy(max_batches=2),
                           **_WRITER_KWARGS)
    for batch in batches:
        durable.update(batch)
    durable.close()


def _reference(cache: dict, table: RatingTable, batches, applied: int
               ) -> IncrementalSweep:
    """The never-crashed writer after *applied* batches."""
    if applied not in cache:
        sweep = IncrementalSweep(table, n_shards=2,
                                 with_significance=True, with_index=True)
        for batch in batches[:applied]:
            sweep.update(batch)
        cache[applied] = sweep
    return cache[applied]


def _index_tuple(index):
    if index is None:
        return None
    return (list(index.items), _aslist(index.ptr),
            _aslist(index.neighbor_ids), _aslist(index.weights), index.k)


def assert_sweeps_equal(got, want) -> None:
    """Bit-identical equality over everything recovery reconstructs."""
    assert got.store.users == want.store.users
    assert got.store.items == want.store.items
    assert got.store.n_ratings == want.store.n_ratings
    assert got.store.global_mean == want.store.global_mean
    for name in STORE_ARRAY_NAMES:
        assert _aslist(getattr(got.store, name)) \
            == _aslist(getattr(want.store, name)), name
    assert _index_tuple(got.index) == _index_tuple(want.index)
    assert got.graph._adjacency == want.graph._adjacency
    assert got.significance == want.significance
    assert got.common_raters == want.common_raters


# ----------------------------------------------------------------------
# RatingLog basics
# ----------------------------------------------------------------------


class TestRatingLog:
    def test_append_replay_roundtrip_bit_identical(self, tmp_path):
        batches = [
            _batch(("u1", "i1", 4.5, 0), ("u2", "i2", 1.0, 1)),
            _batch(("u1", "i2", 0.30000000000000004, 2)),  # repr exact
            _batch(("ü", "ï", 3.0, 3)),  # non-ASCII ids survive
        ]
        with RatingLog(tmp_path / "wal") as log:
            for k, batch in enumerate(batches):
                assert log.append(batch) == k + 1
            assert [(r.seq, list(r.ratings)) for r in log.replay()] \
                == [(k + 1, batch) for k, batch in enumerate(batches)]
        # A fresh open replays the same history from disk alone.
        with RatingLog(tmp_path / "wal") as log:
            assert log.last_seq == 3
            assert [list(r.ratings) for r in log.replay()] == batches
            assert [r.seq for r in log.replay(after_seq=2)] == [3]

    def test_appends_continue_across_reopen(self, tmp_path):
        with RatingLog(tmp_path / "wal") as log:
            log.append(_batch(("u", "i", 1.0, 0)))
        with RatingLog(tmp_path / "wal") as log:
            assert log.append(_batch(("u", "j", 2.0, 1))) == 2
            assert [r.seq for r in log.replay()] == [1, 2]

    def test_group_commit_watermark_lags_until_sync(self, tmp_path):
        log = RatingLog(tmp_path / "wal", group_commit=3)
        log.append(_batch(("u", "i", 1.0, 0)))
        log.append(_batch(("u", "j", 2.0, 1)))
        assert (log.last_seq, log.durable_seq) == (2, 0)
        log.append(_batch(("u", "k", 3.0, 2)))  # 3rd append fsyncs
        assert (log.last_seq, log.durable_seq) == (3, 3)
        log.append(_batch(("u", "l", 4.0, 3)))
        assert log.durable_seq == 3
        assert log.sync() == 4
        log.append(_batch(("u", "m", 5.0, 4)), sync=True)
        assert log.durable_seq == 5
        log.close()

    def test_rotation_and_prune(self, tmp_path):
        log = RatingLog(tmp_path / "wal", segment_bytes=64)
        for k in range(6):
            log.append(_batch((f"user{k}", f"item{k}", 3.0, k)))
        segments = sorted((tmp_path / "wal").glob("segment-*.wal"))
        assert len(segments) > 1
        # Pruning below the watermark never deletes the active segment.
        deleted = log.prune(upto_seq=4)
        assert deleted >= 1
        remaining = sorted((tmp_path / "wal").glob("segment-*.wal"))
        assert remaining and remaining[-1] == segments[-1]
        assert [r.seq for r in log.replay(after_seq=4)] == [5, 6]
        assert log.append(_batch(("u", "z", 1.0, 9))) == 7
        log.close()
        # The rotated + pruned log reopens with full continuity.
        with RatingLog(tmp_path / "wal", segment_bytes=64) as log:
            assert log.last_seq == 7

    def test_readonly_diagnoses_without_touching(self, tmp_path):
        with RatingLog(tmp_path / "wal") as log:
            log.append(_batch(("u", "i", 1.0, 0)))
        path = next((tmp_path / "wal").glob("segment-*.wal"))
        path.write_bytes(path.read_bytes() + b"torn-garbage")
        before = path.read_bytes()
        readonly = RatingLog(tmp_path / "wal", readonly=True)
        assert readonly.info().segments[-1].torn
        assert [r.seq for r in readonly.replay()] == [1]
        assert path.read_bytes() == before  # untouched
        with pytest.raises(DurabilityError, match="readonly"):
            readonly.append(_batch(("u", "j", 1.0, 1)))
        with pytest.raises(DurabilityError, match="readonly"):
            readonly.prune(1)

    def test_open_validation(self, tmp_path):
        with pytest.raises(DurabilityError, match="segment_bytes"):
            RatingLog(tmp_path / "wal", segment_bytes=0)
        with pytest.raises(DurabilityError, match="group_commit"):
            RatingLog(tmp_path / "wal", group_commit=0)
        with pytest.raises(DurabilityError, match="no log directory"):
            RatingLog(tmp_path / "missing", readonly=True)
        (tmp_path / "wal").mkdir()
        (tmp_path / "wal" / "segment-bogus.wal").write_bytes(b"")
        with pytest.raises(DurabilityError, match="unrecognised"):
            RatingLog(tmp_path / "wal")


# ----------------------------------------------------------------------
# Repair: torn tails, corrupt CRC frames, truncated segments
# ----------------------------------------------------------------------


def _write_log(directory, n_batches: int = 4, **kwargs) -> list[Path]:
    with RatingLog(directory, **kwargs) as log:
        for k in range(n_batches):
            log.append(_batch((f"user{k}", f"item{k}", 3.0, k)))
    return sorted(directory.glob("segment-*.wal"))


class TestRepair:
    def test_torn_tail_truncated_to_last_valid_record(self, tmp_path):
        [segment] = _write_log(tmp_path / "wal")
        whole = segment.read_bytes()
        segment.write_bytes(whole[:len(whole) - 7])  # tear the tail
        with RatingLog(tmp_path / "wal") as log:
            assert log.repairs and "torn" in log.repairs[0]
            assert log.last_seq == 3
            assert [r.seq for r in log.replay()] == [1, 2, 3]
            # Sequence numbering continues past the repaired tail.
            assert log.append(_batch(("u", "x", 1.0, 9))) == 4
        # The repair is durable: a re-open finds nothing left to fix.
        with RatingLog(tmp_path / "wal") as log:
            assert log.repairs == ()
            assert log.last_seq == 4

    def test_corrupt_crc_frame_dropped(self, tmp_path):
        [segment] = _write_log(tmp_path / "wal")
        data = bytearray(segment.read_bytes())
        data[-3] ^= 0xFF  # flip a payload byte inside the last frame
        segment.write_bytes(bytes(data))
        with RatingLog(tmp_path / "wal") as log:
            assert log.repairs and "crc mismatch" in log.repairs[0]
            assert log.last_seq == 3

    def test_mid_segment_corruption_drops_later_segments(self, tmp_path):
        segments = _write_log(tmp_path / "wal", n_batches=6, segment_bytes=64)
        assert len(segments) >= 3
        data = bytearray(segments[0].read_bytes())
        data[len(SEGMENT_MAGIC) + 9] ^= 0xFF  # corrupt the first frame
        segments[0].write_bytes(bytes(data))
        with RatingLog(tmp_path / "wal", segment_bytes=64) as log:
            assert log.last_seq == 0
            assert [path for path in segments[1:] if path.exists()] == []
            # The corrupted segment survives as a valid empty file: its
            # name pins the sequence numbering.
            assert log.append(_batch(("u", "x", 1.0, 9))) == 1

    def test_segment_truncated_below_magic_keeps_numbering(self, tmp_path):
        segments = _write_log(tmp_path / "wal", n_batches=6, segment_bytes=64)
        last_first_seq = int(segments[-1].name[len("segment-"):-4])
        segments[-1].write_bytes(b"XMA")  # torn during segment creation
        with RatingLog(tmp_path / "wal", segment_bytes=64) as log:
            assert log.last_seq == last_first_seq - 1
            assert segments[-1].read_bytes() == SEGMENT_MAGIC
            assert log.append(_batch(("u", "x", 1.0, 9))) \
                == last_first_seq

    def test_sequence_gap_between_segments_drops_tail(self, tmp_path):
        segments = _write_log(tmp_path / "wal", n_batches=6, segment_bytes=64)
        assert len(segments) >= 3
        segments[1].unlink()  # a whole segment vanished
        with RatingLog(tmp_path / "wal", segment_bytes=64) as log:
            assert log.last_seq == int(segments[1].name[len("segment-"):-4]) - 1
            assert any("sequence gap" in repair for repair in log.repairs)


# ----------------------------------------------------------------------
# DurableSweep: checkpoints, compaction, recovery
# ----------------------------------------------------------------------


class TestCheckpointPolicy:
    def test_validation(self):
        with pytest.raises(DurabilityError, match="max_batches"):
            CheckpointPolicy(max_batches=0)
        with pytest.raises(DurabilityError, match="max_log_bytes"):
            CheckpointPolicy(max_log_bytes=-1)

    def test_triggers(self):
        policy = CheckpointPolicy(max_log_bytes=100, max_batches=4,
                                  max_staleness_seconds=60.0)
        assert not policy.due(log_bytes=99, batches=3, staleness_seconds=59.0)
        assert policy.due(log_bytes=100, batches=0, staleness_seconds=0)
        assert policy.due(log_bytes=0, batches=4, staleness_seconds=0)
        assert policy.due(log_bytes=0, batches=0, staleness_seconds=60)
        disabled = CheckpointPolicy(max_log_bytes=None, max_batches=None,
                                    max_staleness_seconds=None)
        assert not disabled.due(log_bytes=1 << 40, batches=1 << 20,
                                staleness_seconds=1e9)


class TestDurableSweep:
    @pytest.mark.parametrize("use_numpy", _BACKENDS)
    def test_recover_equals_never_crashed_run(self, monkeypatch, tmp_path, use_numpy):
        _toggle_backend(monkeypatch, use_numpy)
        table, batches = _scenario()
        _run_writer(tmp_path / "store", table, batches)
        recovered = DurableSweep.recover(tmp_path / "store")
        assert recovered.applied_seq == len(batches)
        assert_sweeps_equal(recovered, _reference({}, table, batches, len(batches)))
        # The recovered writer keeps writing — and stays recoverable.
        extra = _batch(("u20", "i20", 4.0, 900), ("u21", "i21", 2.0, 901))
        stats = recovered.update(extra)
        assert stats.wal_seq == len(batches) + 1
        recovered.close()
        again = DurableSweep.recover(tmp_path / "store")
        assert_sweeps_equal(
            again, _reference({}, table, batches + [extra], len(batches) + 1))
        again.close()

    def test_checkpoint_compaction_bounds_the_log(self, tmp_path):
        table, batches = _scenario()
        durable = DurableSweep(tmp_path / "store", table,
                               policy=CheckpointPolicy(max_batches=2),
                               **_WRITER_KWARGS)
        for batch in batches:
            durable.update(batch)
        snapshots = sorted((tmp_path / "store" / "snapshots").iterdir())
        assert [path.name for path in snapshots] \
            == [f"ckpt-{4:012d}"]  # only the adopted checkpoint remains
        pointer = json.loads((tmp_path / "store" / CHECKPOINT_FILE).read_text())
        assert pointer["applied_seq"] == 4
        # An explicit checkpoint adopts seq 5 and compacts: nothing
        # below the watermark survives except the active segment.
        durable.checkpoint()
        info = durable.log_info()
        assert json.loads((tmp_path / "store" / CHECKPOINT_FILE)
                          .read_text())["applied_seq"] == 5
        assert [segment for segment in info.segments
                if segment is not info.segments[-1]
                and segment.last_seq <= 5] == []
        durable.close()

    def test_create_and_recover_guards(self, tmp_path):
        table, _ = _scenario()
        with pytest.raises(DurabilityError, match="needs the initial"):
            DurableSweep(tmp_path / "store")
        durable = DurableSweep(tmp_path / "store", table, n_shards=2)
        durable.close()
        with pytest.raises(DurabilityError, match="already holds"):
            DurableSweep(tmp_path / "store", table)
        with pytest.raises(DurabilityError, match="not a durable store"):
            DurableSweep.recover(tmp_path / "elsewhere")
        pointer = tmp_path / "store" / CHECKPOINT_FILE
        pointer.write_text("{broken", encoding="utf-8")
        with pytest.raises(DurabilityError, match="corrupt checkpoint"):
            DurableSweep.recover(tmp_path / "store")
        pointer.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(DurabilityError, match="not a durable store"):
            DurableSweep.recover(tmp_path / "store")

    def test_recover_survives_lost_log(self, monkeypatch, tmp_path):
        """A log that lost records below the adopted watermark (fsync
        off + power loss) restarts numbering at the checkpoint."""
        table, batches = _scenario()
        _run_writer(tmp_path / "store", table, batches)
        for segment in (tmp_path / "store" / "wal").glob("*.wal"):
            segment.unlink()  # the power loss ate the whole log
        recovered = DurableSweep.recover(tmp_path / "store")
        # Checkpoints landed every 2 batches: seq 4 is the adopted one.
        assert recovered.applied_seq == 4
        assert_sweeps_equal(recovered, _reference({}, table, batches, 4))
        assert recovered.update(_batch(("u20", "i20", 4.0, 900))).wal_seq == 5
        recovered.close()

    def test_recover_drops_corrupt_crc_tail(self, monkeypatch, tmp_path):
        table, batches = _scenario()
        _run_writer(tmp_path / "store", table, batches)
        segment = sorted((tmp_path / "store" / "wal").glob("*.wal"))[-1]
        data = bytearray(segment.read_bytes())
        data[-2] ^= 0xFF
        segment.write_bytes(bytes(data))
        recovered = DurableSweep.recover(tmp_path / "store")
        assert recovered.applied_seq == len(batches) - 1
        assert any("crc mismatch" in repair
                   for repair in recovered.last_recovery.log_repairs)
        assert_sweeps_equal(recovered, _reference({}, table, batches, len(batches) - 1))
        recovered.close()


# ----------------------------------------------------------------------
# The tentpole property: bit-identical recovery at every crash point
# ----------------------------------------------------------------------


def _recover_and_check(store_dir, table, batches, references) -> None:
    """Recover *store_dir* and compare against the never-crashed
    reference for whatever prefix the log made durable."""
    recovered = DurableSweep.recover(store_dir)
    applied = recovered.applied_seq
    assert 0 <= applied <= len(batches)
    assert_sweeps_equal(recovered, _reference(references, table, batches, applied))
    recovered.close()


@pytest.mark.slow
@pytest.mark.parametrize("use_numpy", _BACKENDS)
def test_recovery_bit_identical_at_every_crash_point(monkeypatch, tmp_path, use_numpy):
    """Enumerate every crash point the write/checkpoint stream visits,
    then die at each one and prove recovery reconstructs the exact
    never-crashed state for the durable prefix."""
    _toggle_backend(monkeypatch, use_numpy)
    table, batches = _scenario()
    with injected_crashes(after=None) as recorder:
        _run_writer(tmp_path / "clean", table, batches)
    n_points = len(recorder.visits)
    # The scenario must exercise the interesting transitions.
    for point in ("wal.append.write", "wal.append.torn", "wal.fsync",
                  "wal.rotate.create", "wal.prune.unlink",
                  "checkpoint.snapshot.save", "checkpoint.pointer.rename",
                  "snapshot.manifest.write", "snapshot.array.fsync"):
        assert point in recorder.visits, point
    references: dict = {}
    skipped_preborn = 0
    for index in range(1, n_points + 1):
        store_dir = tmp_path / f"crash{index}"
        with pytest.raises(InjectedCrash):
            with injected_crashes(after=index):
                _run_writer(store_dir, table, batches)
        if not (store_dir / CHECKPOINT_FILE).exists():
            # Died before the store's very first checkpoint pointer:
            # nothing was ever acknowledged, nothing to recover.
            skipped_preborn += 1
            continue
        _recover_and_check(store_dir, table, batches, references)
        shutil.rmtree(store_dir)  # keep tmp usage bounded
    # The pre-born window is the first checkpoint only — the sweep must
    # have actually tested recovery for the vast majority of points.
    assert skipped_preborn < n_points / 3


@pytest.mark.parametrize("use_numpy", _BACKENDS)
@pytest.mark.parametrize("preparation", ["torn-append", "lost-log"])
def test_crash_during_recovery_is_recoverable(
        monkeypatch, tmp_path, use_numpy, preparation):
    """Recovery itself (repair truncation, segment unlinks, log reset)
    can die at any of its own crash points; a second recovery still
    lands on the exact same state."""
    _toggle_backend(monkeypatch, use_numpy)
    table, batches = _scenario()
    crashed = tmp_path / "crashed"
    if preparation == "torn-append":
        with pytest.raises(InjectedCrash):
            with injected_crashes(at="wal.append.torn", after=3):
                _run_writer(crashed, table, batches)
    else:
        _run_writer(crashed, table, batches)
        for segment in (crashed / "wal").glob("*.wal"):
            segment.unlink()
    references: dict = {}
    _recover_and_check(  # the baseline: clean recovery works at all
        _copy_store(crashed, tmp_path / "baseline"),
        table, batches, references)
    with injected_crashes(after=None) as recorder:
        DurableSweep.recover(_copy_store(crashed, tmp_path / "enumerate")).close()
    for index in range(1, len(recorder.visits) + 1):
        store_dir = _copy_store(crashed, tmp_path / f"rcrash{index}")
        with pytest.raises(InjectedCrash):
            with injected_crashes(after=index):
                DurableSweep.recover(store_dir)
        _recover_and_check(store_dir, table, batches, references)
        shutil.rmtree(store_dir)


def _copy_store(source: Path, destination: Path) -> Path:
    shutil.copytree(source, destination)
    return destination


# ----------------------------------------------------------------------
# Real kill -9: subprocess writers dying at env-armed crash points
# ----------------------------------------------------------------------

_WRITER_SCRIPT = """\
import json, sys
plan_path, store_dir = sys.argv[1], sys.argv[2]
from repro.data.ratings import Rating, RatingTable
from repro.durability.manager import CheckpointPolicy, DurableSweep
plan = json.load(open(plan_path))
durable = DurableSweep(
    store_dir, RatingTable([Rating(*r) for r in plan["base"]]),
    n_shards=2, with_significance=True, cf_k=8,
    policy=CheckpointPolicy(max_batches=2),
    group_commit=2, segment_bytes=192)
for batch in plan["batches"]:
    durable.update([Rating(*r) for r in batch])
durable.close()
"""


def _subprocess_env(use_numpy: bool, crash_index: int | None) -> dict:
    env = {**os.environ,
           "PYTHONPATH": str(_SRC) + os.pathsep
           + os.environ.get("PYTHONPATH", ""),
           "REPRO_PURE_PYTHON": "" if use_numpy else "1"}
    env.pop("REPRO_CRASH_POINT", None)
    env.pop("REPRO_CRASH_KILL", None)
    if crash_index is not None:
        env["REPRO_CRASH_POINT"] = f"*:{crash_index}"
        env["REPRO_CRASH_KILL"] = "1"
    return env


@pytest.mark.crash
@pytest.mark.slow
@pytest.mark.parametrize("use_numpy", _BACKENDS)
def test_kill9_writer_recovers_bit_identical(monkeypatch, tmp_path, use_numpy):
    _toggle_backend(monkeypatch, use_numpy)
    table, batches = _scenario()
    plan = tmp_path / "plan.json"
    plan.write_text(json.dumps({
        "base": [[r.user, r.item, r.value, r.timestep] for r in table],
        "batches": [[[r.user, r.item, r.value, r.timestep]
                     for r in batch] for batch in batches]}),
        encoding="utf-8")
    script = tmp_path / "writer.py"
    script.write_text(_WRITER_SCRIPT, encoding="utf-8")

    # One clean run pins the crash-point count for this scenario; the
    # in-process recorder agrees with the subprocess because both run
    # the identical deterministic stream with an injector armed.
    with injected_crashes(after=None) as recorder:
        _run_writer(tmp_path / "clean", table, batches)
    n_points = len(recorder.visits)
    # Deterministic "random" kill points: spread across the stream,
    # seeded so every CI run reproduces the same deaths.
    indices = sorted(random.Random(20_17).sample(range(2, n_points + 1), 5))
    references: dict = {}
    for index in indices:
        store_dir = tmp_path / f"kill{index}"
        result = subprocess.run(
            [sys.executable, str(script), str(plan), str(store_dir)],
            env=_subprocess_env(use_numpy, index),
            capture_output=True, text=True, timeout=120)
        assert result.returncode == -signal.SIGKILL, result.stderr
        if not (store_dir / CHECKPOINT_FILE).exists():
            continue  # killed before the store's first checkpoint
        _recover_and_check(store_dir, table, batches, references)
        shutil.rmtree(store_dir)


@pytest.mark.crash
def test_kill9_env_activation_matches_named_point(tmp_path):
    """`REPRO_CRASH_POINT=<name>:<n>` arms exactly the named point —
    the subprocess dies by SIGKILL there, and an unarmed subprocess
    finishes cleanly with the same environment shape."""
    table, batches = _scenario(n_base=12, n_batches=2)
    plan = tmp_path / "plan.json"
    plan.write_text(json.dumps({
        "base": [[r.user, r.item, r.value, r.timestep] for r in table],
        "batches": [[[r.user, r.item, r.value, r.timestep]
                     for r in batch] for batch in batches]}),
        encoding="utf-8")
    script = tmp_path / "writer.py"
    script.write_text(_WRITER_SCRIPT, encoding="utf-8")
    env = _subprocess_env(True, None)
    env["REPRO_CRASH_POINT"] = "wal.fsync:1"
    env["REPRO_CRASH_KILL"] = "1"
    result = subprocess.run(
        [sys.executable, str(script), str(plan), str(tmp_path / "s1")],
        env=env, capture_output=True, text=True, timeout=120)
    assert result.returncode == -signal.SIGKILL, result.stderr
    clean = subprocess.run(
        [sys.executable, str(script), str(plan), str(tmp_path / "s2")],
        env=_subprocess_env(True, None),
        capture_output=True, text=True, timeout=120)
    assert clean.returncode == 0, clean.stderr


# ----------------------------------------------------------------------
# Registry recovery: the serving layer over a recovered store
# ----------------------------------------------------------------------


def _assert_serving_equal(got: RecommendationService,
                          want: RecommendationService,
                          tolerance: float = 1e-9) -> None:
    snapshot = want.registry.current()
    users = sorted(snapshot.store.user_index)
    items = sorted(snapshot.store.item_index)[:10]
    for user in users:
        for item in items:
            assert abs(got.predict(user, item) - want.predict(user, item)) <= tolerance
        got_topn = got.recommend(user, n=5)
        want_topn = want.recommend(user, n=5)
        assert [item for item, _ in got_topn] \
            == [item for item, _ in want_topn]
        assert all(abs(a[1] - b[1]) <= tolerance for a, b in zip(got_topn, want_topn))


@pytest.mark.parametrize("use_numpy", _BACKENDS)
def test_registry_recover_serves_identically(monkeypatch, tmp_path, use_numpy):
    """Interleaved publish/update rounds, a crash, recovery via
    ModelRegistry.recover, more rounds — the recovered registry serves
    within 1e-9 of the never-crashed one throughout."""
    _toggle_backend(monkeypatch, use_numpy)
    table, batches = _scenario(seed=5)
    durable = DurableSweep(tmp_path / "store", table,
                           policy=CheckpointPolicy(max_batches=2),
                           **_WRITER_KWARGS)
    registry = durable.registry()
    mirror = ModelRegistry(
        sweep=IncrementalSweep(table, n_shards=2,
                               with_significance=True, with_index=True),
        cf_k=8)
    for batch in batches[:3]:
        registry.update(batch)
        mirror.update(batch)
    _assert_serving_equal(RecommendationService(registry),
                          RecommendationService(mirror))
    # The crash: the durable writer is abandoned mid-life (no close,
    # no final checkpoint) and rebuilt from disk alone.
    del registry, durable
    recovered = ModelRegistry.recover(tmp_path / "store")
    _assert_serving_equal(RecommendationService(recovered),
                          RecommendationService(mirror))
    for batch in batches[3:]:
        recovered.update(batch)
        mirror.update(batch)
    _assert_serving_equal(RecommendationService(recovered),
                          RecommendationService(mirror))
    # Serving parameters travelled through the persisted config.
    assert recovered.current().cf_k == 8
