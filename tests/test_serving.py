"""The serving subsystem: snapshots, the hot-swap registry, the service.

Contracts under test:

* **Snapshot round trip** — save → load is bit-identical per backend
  (every store array, the index flat rows, the significance census,
  the AlterEgo mapping), and a snapshot written by one backend loads
  under the other with value-equal arrays and identical predictions.
* **Registry hot swap** — publishes are atomic, pinned readers keep a
  coherent version while updates land (checked under a real thread),
  superseded versions are retired once unpinned.
* **Service** — the batched vectorized pass returns exactly the
  per-request path's responses; the ranked-row cache's invalidation is
  delta-targeted (an update evicts precisely the census'
  ``affected_items``), the response cache is version-scoped.
"""

from __future__ import annotations

import threading
import time
from tempfile import TemporaryDirectory

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.baseliner import Baseliner
from repro.core.pipeline import NXMapRecommender, XMapConfig
from repro.data.matrix import MatrixRatingStore, numpy_available
from repro.data.ratings import Rating, RatingTable
from repro.data.synthetic import SyntheticConfig, amazon_like
from repro.engine.sharded_sweep import IncrementalSweep
from repro.errors import ConfigError, ServingError
from repro.serving.registry import ModelRegistry
from repro.serving.service import LRUCache, RecommendationService
from repro.serving.snapshot import STORE_ARRAY_NAMES, ModelSnapshot
from repro.similarity.significance import SignificanceTable

_BACKENDS = [pytest.param(True, id="numpy"), pytest.param(False, id="pure-python")]

_common = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])

_users = st.sampled_from([f"u{k}" for k in range(9)])
_items = st.sampled_from([f"i{k}" for k in range(9)])
_values = st.sampled_from([1.0, 1.5, 2.0, 3.0, 4.0, 4.5, 5.0])


@st.composite
def tables(draw, min_size=2, max_size=30):
    pairs = draw(st.lists(st.tuples(_users, _items), min_size=min_size,
                          max_size=max_size, unique=True))
    return RatingTable([
        Rating(user, item, draw(_values), timestep=k)
        for k, (user, item) in enumerate(pairs)])


def _aslist(values):
    return values.tolist() if hasattr(values, "tolist") else list(values)


def _snapshot(table: RatingTable, use_numpy: bool, k: int = 10,
              **kwargs) -> ModelSnapshot:
    if use_numpy and not numpy_available():
        pytest.skip("numpy fast path unavailable")
    store = MatrixRatingStore(table, use_numpy=use_numpy)
    return ModelSnapshot(store, store.neighbor_index(), cf_k=k,
                         scale=table.scale, **kwargs)


def assert_snapshots_equal(got: ModelSnapshot, want: ModelSnapshot) -> None:
    """Bit-identical equality over everything a snapshot captures."""
    assert got.store.users == want.store.users
    assert got.store.items == want.store.items
    assert got.store.n_ratings == want.store.n_ratings
    assert got.store.global_mean == want.store.global_mean
    for name in STORE_ARRAY_NAMES:
        assert _aslist(getattr(got.store, name)) \
            == _aslist(getattr(want.store, name)), name
    assert _aslist(got.index.ptr) == _aslist(want.index.ptr)
    assert _aslist(got.index.neighbor_ids) \
        == _aslist(want.index.neighbor_ids)
    assert _aslist(got.index.weights) == _aslist(want.index.weights)
    assert got.index.k == want.index.k
    assert got.cf_k == want.cf_k
    assert got.positive_only == want.positive_only
    assert got.scale == want.scale
    if want.significance is None:
        assert got.significance is None
    else:
        assert dict(got.significance.raw) == dict(want.significance.raw)
        assert dict(got.significance.common) \
            == dict(want.significance.common)
    assert got.alterego == want.alterego


def _probe_pairs(table: RatingTable):
    users = sorted(table.users)
    items = sorted(table.items)
    return [(user, item) for user in users[:6] for item in items[:6]]


# ----------------------------------------------------------------------
# Snapshot round trips
# ----------------------------------------------------------------------

@pytest.mark.parametrize("use_numpy", _BACKENDS)
@_common
@given(table=tables())
def test_snapshot_roundtrip_bit_identical(table, use_numpy):
    snapshot = _snapshot(table, use_numpy)
    with TemporaryDirectory() as directory:
        snapshot.save(directory)
        loaded = ModelSnapshot.load(directory, use_numpy=use_numpy)
        assert_snapshots_equal(loaded, snapshot)
        reference = snapshot.recommender()
        served = loaded.recommender()
        for user, item in _probe_pairs(table):
            assert served.predict(user, item) \
                == reference.predict(user, item)


@pytest.mark.parametrize("writer_numpy,reader_numpy", [
    pytest.param(True, False, id="numpy-to-pure-python"),
    pytest.param(False, True, id="pure-python-to-numpy"),
])
@_common
@given(table=tables())
def test_snapshot_loads_across_backends(table, writer_numpy, reader_numpy):
    if not numpy_available():
        pytest.skip("numpy fast path unavailable")
    snapshot = _snapshot(table, writer_numpy)
    with TemporaryDirectory() as directory:
        snapshot.save(directory)
        loaded = ModelSnapshot.load(directory, use_numpy=reader_numpy)
        assert loaded.store.uses_numpy == reader_numpy
        assert_snapshots_equal(loaded, snapshot)
        reference = snapshot.recommender()
        served = loaded.recommender()
        for user, item in _probe_pairs(table):
            assert served.predict(user, item) \
                == reference.predict(user, item)


@pytest.mark.parametrize("use_numpy", _BACKENDS)
def test_snapshot_extras_roundtrip(tiny_table, use_numpy):
    significance = SignificanceTable(
        raw={("a", "b"): 2, ("b", "m-only"): 1},
        common={("a", "b"): 3, ("b", "m-only"): 1})
    alterego = {"m1": (("a", 0.75), ("b", 0.25)), "m2": (("d", 1.0),)}
    snapshot = _snapshot(tiny_table, use_numpy,
                         significance=significance, alterego=alterego)
    with TemporaryDirectory() as directory:
        snapshot.save(directory)
        loaded = ModelSnapshot.load(directory, use_numpy=use_numpy)
        assert_snapshots_equal(loaded, snapshot)
        assert loaded.item_mapping() == {"m1": "a", "m2": "d"}


@pytest.mark.parametrize("use_numpy", _BACKENDS)
def test_snapshot_table_and_graph_match_sources(tiny_table, use_numpy):
    snapshot = _snapshot(tiny_table, use_numpy)
    with TemporaryDirectory() as directory:
        snapshot.save(directory)
        loaded = ModelSnapshot.load(directory, use_numpy=use_numpy)
    # The reconstructed table holds exactly the original ratings (sans
    # timesteps) and adopts the loaded store instead of re-interning.
    table = loaded.table()
    assert table.users == tiny_table.users
    assert table.items == tiny_table.items
    assert len(table) == len(tiny_table)
    for rating in tiny_table:
        assert table.value(rating.user, rating.item) == rating.value
    assert table.matrix() is loaded.store
    # The derived graph equals the graph assembled with the adjacency.
    adjacency = MatrixRatingStore(tiny_table, use_numpy=use_numpy).build_adjacency()
    graph = loaded.graph()
    assert set(graph.items) == set(adjacency)
    for item, row in adjacency.items():
        assert dict(graph.neighbors(item)) == row


def test_snapshot_resave_into_own_directory(tiny_table, tmp_path):
    """Re-saving a loaded snapshot over itself must not fault through
    its own memmaps (regression: tofile truncated the backing files)."""
    ModelSnapshot.from_table(tiny_table, k=5).save(tmp_path)
    loaded = ModelSnapshot.load(tmp_path)
    # Occupied directories are refused by default: overwriting rewrites
    # files another process may have memory-mapped.
    with pytest.raises(ServingError, match="already holds"):
        loaded.save(tmp_path)
    loaded.save(tmp_path, overwrite=True)
    again = ModelSnapshot.load(tmp_path)
    assert_snapshots_equal(again, loaded)


def test_snapshot_rejects_unicode_line_break_ids(tmp_path):
    """Every id the reader's splitlines() would split is rejected at
    save time — not discovered as a count mismatch at load time."""
    for bad in ("a\nb", "a\rb", "a\x0bb", "a\x85b", "a b"):
        table = RatingTable([Rating("u1", bad, 3.0),
                             Rating("u1", "ok", 4.0),
                             Rating("u2", bad, 2.0),
                             Rating("u2", "ok", 5.0)])
        with pytest.raises(ServingError, match="line"):
            ModelSnapshot.from_table(table, k=2).save(tmp_path / "s")


def test_snapshot_rejects_missing_or_corrupt(tmp_path):
    with pytest.raises(ServingError, match="not a model snapshot"):
        ModelSnapshot.load(tmp_path)
    (tmp_path / "MANIFEST.json").write_text("{not json", encoding="utf-8")
    with pytest.raises(ServingError, match="corrupt"):
        ModelSnapshot.load(tmp_path)
    (tmp_path / "MANIFEST.json").write_text(
        '{"format": "something-else"}', encoding="utf-8")
    with pytest.raises(ServingError, match="not a model snapshot"):
        ModelSnapshot.load(tmp_path)


def test_snapshot_rejects_truncated_array_file(tmp_path, tiny_table):
    """A .bin whose byte length disagrees with the manifest fails the
    load with a clear diagnosis — not a downstream memmap/struct error
    (or, worse, a partially wrong model)."""
    ModelSnapshot.from_table(tiny_table, k=2).save(tmp_path / "s")
    target = tmp_path / "s" / "user_values.bin"
    whole = target.read_bytes()
    target.write_bytes(whole[:len(whole) - 3])
    with pytest.raises(ServingError, match="truncated or corrupt"):
        ModelSnapshot.load(tmp_path / "s")
    target.write_bytes(whole + b"\x00" * 8)  # too long is corrupt too
    with pytest.raises(ServingError, match="truncated or corrupt"):
        ModelSnapshot.load(tmp_path / "s")
    target.write_bytes(whole)
    ModelSnapshot.load(tmp_path / "s")  # restored: loads again


def test_snapshot_rejects_missing_array_file(tmp_path, tiny_table):
    ModelSnapshot.from_table(tiny_table, k=2).save(tmp_path / "s")
    (tmp_path / "s" / "index_weights.bin").unlink()
    with pytest.raises(ServingError, match="missing"):
        ModelSnapshot.load(tmp_path / "s")


def test_truncated_index_guards(tiny_table):
    store = tiny_table.matrix()
    truncated = store.neighbor_index(k=1)
    snapshot = ModelSnapshot(store, truncated, cf_k=1)
    # A truncated index dropped its tails for good: neither the full
    # adjacency nor an exact Eq-4 recommender is recoverable from it.
    with pytest.raises(ServingError, match="truncated"):
        snapshot.graph()
    from repro.cf.item_knn import ItemKNNRecommender
    with pytest.raises(ConfigError, match="complete rows"):
        ItemKNNRecommender(tiny_table, k=1, index=truncated)
    with pytest.raises(ServingError, match="truncated"):
        snapshot.recommender()
    with pytest.raises(ServingError, match="truncated"):
        RecommendationService(snapshot).recommend_batch(["u1"], 2)
    # similar_items still serves what the truncated rows can answer,
    # and refuses to over-promise beyond the truncation cut.
    service = RecommendationService(snapshot)
    assert service.similar_items("a", k=1) == truncated.top("a", 1)
    with pytest.raises(ValueError, match="truncated"):
        service.similar_items("a", k=2)


# ----------------------------------------------------------------------
# Pipeline snapshots
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def fitted_pipeline():
    data = amazon_like(SyntheticConfig(
        n_users_source=60, n_users_target=60, n_overlap=25,
        n_items_source=50, n_items_target=50,
        ratings_per_user=10.0, seed=13))
    pipeline = NXMapRecommender(XMapConfig(
        mode="item", prune_k=8, cf_k=10, n_shards=2)).fit(data)
    return data, pipeline


def test_pipeline_snapshot_serves_bit_identically(fitted_pipeline):
    data, pipeline = fitted_pipeline
    snapshot = pipeline.snapshot()
    assert snapshot.significance is not None  # sharded run folded it in
    assert snapshot.alterego
    with TemporaryDirectory() as directory:
        snapshot.save(directory)
        loaded = ModelSnapshot.load(directory)
    assert_snapshots_equal(loaded, snapshot)
    assert loaded.item_mapping() == pipeline.item_mapping()
    service = RecommendationService(loaded)
    users = sorted(data.source.users)[:8]
    items = sorted(data.target.ratings.items)[:8]
    for user in users:
        assert service.recommend(user, 5) == pipeline.recommend(user, 5)
        for item in items:
            assert service.predict(user, item) \
                == pipeline.predict(user, item)


def test_pipeline_snapshot_rejects_non_item_modes(fitted_pipeline):
    data, _ = fitted_pipeline
    pipeline = NXMapRecommender(XMapConfig(mode="user", prune_k=8, cf_k=10)).fit(
            data, users=sorted(data.source.users)[:5])
    with pytest.raises(ServingError, match="item-mode"):
        pipeline.snapshot()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def _micro_table(seed_items=("a", "b", "c", "d")):
    ratings = []
    for u in range(8):
        for pos, item in enumerate(seed_items):
            if (u + pos) % 3 != 0:
                ratings.append(Rating(f"u{u}", item, float(1 + (u * 2 + pos) % 5)))
    return RatingTable(ratings)


def test_registry_publish_pin_retire(tiny_table):
    first = ModelSnapshot.from_table(tiny_table, k=5)
    registry = ModelRegistry(snapshot=first)
    assert registry.current_version() == 1
    pinned = registry.pin()
    assert pinned.version == 1
    second = _snapshot(tiny_table, numpy_available(), k=5)
    assert registry.publish(second) == 2
    # v1 stays retained (and coherent) while pinned; new readers get v2.
    assert registry.versions() == [1, 2]
    assert registry.current() is second
    assert registry.reader_count(1) == 1
    pinned.release()
    pinned.release()  # idempotent
    assert registry.versions() == [2]
    assert registry.reader_count() == 0
    with pytest.raises(ServingError, match="already published"):
        registry.publish(second)


def test_registry_honours_preassigned_versions(tiny_table, tmp_path):
    """A loaded snapshot keeps its persisted version through publish
    (regression: publish restamped every snapshot from 1)."""
    snapshot = ModelSnapshot.from_table(tiny_table, k=5, version=7)
    snapshot.save(tmp_path)
    loaded = ModelSnapshot.load(tmp_path)
    registry = ModelRegistry(snapshot=loaded)
    assert registry.current_version() == 7
    assert loaded.version == 7
    # The next unversioned publish continues from there...
    follow_up = _snapshot(tiny_table, numpy_available(), k=5)
    assert registry.publish(follow_up) == 8
    # ...and a stale pre-assigned version cannot move the registry back.
    stale = ModelSnapshot.from_table(tiny_table, k=5, version=3)
    with pytest.raises(ServingError, match="behind"):
        registry.publish(stale)


def test_registry_requires_a_model():
    registry = ModelRegistry()
    with pytest.raises(ServingError, match="no published model"):
        registry.current()
    with pytest.raises(ServingError, match="no writer sweep"):
        registry.update([Rating("u", "i", 3.0)])


def test_registry_update_publishes_spliced_versions():
    table = _micro_table()
    # n_shards pinned: the reference below is the unsharded store path,
    # and the bit-identity contract holds per shard count.
    registry = ModelRegistry(
        sweep=IncrementalSweep(table, n_shards=1, with_index=True), cf_k=5)
    pinned = registry.pin()
    probes = [(f"u{k}", item) for k in range(8) for item in "abcd"]
    before = {pair: pinned.snapshot.recommender().predict(*pair) for pair in probes}

    batch = [Rating("u0", "e", 5.0), Rating("u9", "a", 2.0)]
    version, stats = registry.update(batch)
    assert version == 2
    assert stats.batch_users == ("u0", "u9")
    assert len(stats.affected_items) == stats.n_affected_rows
    assert list(stats.affected_items) == sorted(stats.affected_items)

    # The pinned reader still serves the pre-update model, bit for bit.
    for pair, want in before.items():
        assert pinned.snapshot.recommender().predict(*pair) == want
    # The new version equals a from-scratch model on the updated table.
    fresh = ModelSnapshot.from_table(table.with_ratings(batch), k=5)
    current = registry.current()
    assert current.version == 2
    served = current.recommender()
    reference = fresh.recommender()
    for user in list(fresh.store.users):
        assert served.recommend(user, 3) == reference.recommend(user, 3)
    pinned.release()
    assert registry.versions() == [2]


@pytest.mark.parametrize("n_shards", [1, 2])
def test_registry_hot_swap_under_threaded_reader(n_shards):
    """A reader thread pinning versions mid-publish always observes a
    coherent model: every prediction read under one pin equals the
    from-scratch value for *some* prefix of the update stream."""
    table = _micro_table()
    registry = ModelRegistry(
        sweep=IncrementalSweep(table, n_shards=n_shards, with_index=True),
        cf_k=5)
    batches = [
        [Rating("u0", "e", 5.0), Rating("u1", "a", 1.0)],
        [Rating("u9", "e", 4.0), Rating("u2", "b", 2.0)],
        [Rating("u3", "f", 3.0)],
        [Rating("u9", "f", 1.5), Rating("u4", "c", 4.5)],
    ]
    probes = [(f"u{k}", item) for k in range(5) for item in "abce"]

    def _fresh(state: RatingTable) -> dict:
        # A from-scratch sweep at the same shard count — the incremental
        # splice is bit-identical to it (tests/test_incremental.py).
        reference = ModelSnapshot.from_sweep(IncrementalSweep(
            state, n_shards=n_shards, with_index=True), cf_k=5
        ).recommender()
        return {pair: reference.predict(*pair) for pair in probes}

    # Ground truth per version: predictions of a fresh model after each
    # prefix of the update stream.
    expected = {1: _fresh(table)}
    state = table
    for prefix, batch in enumerate(batches, start=2):
        state = state.with_ratings(batch)
        expected[prefix] = _fresh(state)

    failures: list = []
    seen_versions: list[int] = []
    stop = threading.Event()

    def reader() -> None:
        while not stop.is_set():
            with registry.pin() as pinned:
                version = pinned.version
                seen_versions.append(version)
                recommender = pinned.snapshot.recommender()
                first = [recommender.predict(*pair) for pair in probes]
                time.sleep(0.001)  # let a publish land mid-request
                second = [recommender.predict(*pair) for pair in probes]
                if first != second:
                    failures.append(("torn read", version))
                want = [expected[version][pair] for pair in probes]
                if first != want:
                    failures.append(("wrong model", version))

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for batch in batches:
            registry.update(batch)
            time.sleep(0.003)
    finally:
        stop.set()
        thread.join()
    assert not failures, failures[:3]
    assert seen_versions, "reader never pinned a version"
    assert seen_versions == sorted(seen_versions)  # swaps are monotone
    assert registry.current_version() == len(batches) + 1


def test_baseliner_serving_registry(two_domain_micro):
    baseline = Baseliner(n_shards=1, keep_state=True).compute(two_domain_micro)
    registry = baseline.serving_registry(cf_k=5)
    service = RecommendationService(registry)
    merged = two_domain_micro.merged()
    reference = ModelSnapshot.from_table(merged, k=5).recommender()
    users = sorted(merged.users)
    assert service.recommend_batch(users, 3) \
        == [reference.recommend(user, 3) for user in users]
    version, _ = registry.update([Rating("s1", "b3", 4.0)])
    assert version == 2
    stateless = Baseliner().compute(two_domain_micro)
    with pytest.raises(ConfigError, match="keep_state"):
        stateless.serving_registry()


# ----------------------------------------------------------------------
# Service
# ----------------------------------------------------------------------

@pytest.mark.parametrize("use_numpy", _BACKENDS)
@_common
@given(table=tables(min_size=4))
def test_batched_equals_per_request(table, use_numpy):
    snapshot = _snapshot(table, use_numpy, k=3)
    service = RecommendationService(snapshot, response_cache_size=0)
    users = sorted(table.users) + ["nobody"]
    batched = service.recommend_batch(users, 4)
    reference = snapshot.recommender()
    assert batched == [reference.recommend(user, 4) for user in users]


@pytest.mark.parametrize("use_numpy", _BACKENDS)
def test_batched_mixes_cache_hits_and_misses(tiny_table, use_numpy):
    snapshot = _snapshot(tiny_table, use_numpy, k=5)
    service = RecommendationService(snapshot)
    users = sorted(tiny_table.users)
    warm = service.recommend(users[0], 3)  # prime one response
    batched = service.recommend_batch(users, 3)
    assert batched[0] == warm
    assert service.stats()["response_cache"]["hits"] == 1
    again = service.recommend_batch(users, 3)
    assert again == batched
    assert service.stats()["response_cache"]["hits"] == 1 + len(users)


def test_row_cache_eviction_is_delta_targeted():
    # Two co-rating islands: an update inside one cannot move any row
    # of the other, so its census is a strict subset of the catalogue.
    ratings = []
    for cluster, item_group in enumerate((("a", "b", "c"), ("x", "y", "z"))):
        for u in range(4):
            for pos, item in enumerate(item_group):
                ratings.append(Rating(
                    f"c{cluster}u{u}", item,
                    float(1 + (u * 2 + pos) % 5)))
    table = RatingTable(ratings)
    registry = ModelRegistry(
        sweep=IncrementalSweep(table, n_shards=1, with_index=True), cf_k=5)
    service = RecommendationService(registry)
    items = sorted(table.items)
    for item in items:
        service.similar_items(item, k=3)
    assert service.stats()["row_cache"]["size"] == len(items)

    batch = [Rating("c0u0", "a", 5.0)]
    _, stats = registry.update(batch)
    affected = set(stats.affected_items)
    assert affected and affected < set(registry.current().store.items)
    survivors = set(items) - affected
    assert survivors, "update unexpectedly touched every row"
    for item in survivors:
        assert item in service._row_cache
    for item in affected:
        assert item not in service._row_cache

    # Post-eviction rows are recomputed from the new version and match
    # a from-scratch index; surviving entries were exactly unchanged.
    fresh = ModelSnapshot.from_table(table.with_ratings(batch), k=5)
    for item in items:
        want = fresh.index.top(item, fresh.index.degree(item))
        assert service.similar_items(item, k=len(want) + 1) == want


def test_plain_publish_clears_all_caches(tiny_table):
    snapshot = ModelSnapshot.from_table(tiny_table, k=5)
    registry = ModelRegistry(snapshot=snapshot)
    service = RecommendationService(registry)
    service.similar_items("a", k=2)
    service.recommend("u1", 2)
    assert service.stats()["row_cache"]["size"] == 1
    assert service.stats()["response_cache"]["size"] == 1
    registry.publish(_snapshot(tiny_table, numpy_available(), k=5))
    assert service.stats()["row_cache"]["size"] == 0
    assert service.stats()["response_cache"]["size"] == 0


def test_similar_items_filters(tiny_table):
    snapshot = ModelSnapshot.from_table(tiny_table, k=5)
    service = RecommendationService(snapshot)
    index = snapshot.index
    full = index.top("a", index.degree("a"))
    assert service.similar_items("a", k=2) == full[:2]
    assert service.similar_items("a", k=len(full), minimum=0.0) \
        == [pair for pair in full if pair[1] >= 0.0]
    assert service.similar_items("a", k=0) == []
    assert service.similar_items("missing", k=3) == []


def test_service_close_detaches_from_registry(tiny_table):
    registry = ModelRegistry(snapshot=ModelSnapshot.from_table(tiny_table, k=5))
    service = RecommendationService(registry)
    survivor = RecommendationService(registry)
    service.recommend("u1", 2)
    service.close()
    service.close()  # idempotent
    # A closed service keeps serving but no longer caches (it would
    # never see the invalidations), and publishes no longer walk it.
    assert service.recommend("u1", 2)
    assert service.stats()["response_cache"]["size"] == 0
    survivor.recommend("u1", 2)
    registry.publish(_snapshot(tiny_table, numpy_available(), k=5))
    assert survivor.stats()["response_cache"]["size"] == 0  # invalidated
    registry.unsubscribe(service._on_publish)  # unknown → no-op


def test_injected_index_must_match_item_universe(tiny_table):
    from repro.cf.item_knn import ItemKNNRecommender

    other = RatingTable([Rating("u1", "zz", 3.0), Rating("u2", "zz", 4.0),
                         Rating("u1", "yy", 2.0), Rating("u2", "yy", 5.0)])
    foreign = other.matrix().neighbor_index()
    with pytest.raises(ConfigError, match="item universe"):
        ItemKNNRecommender(tiny_table, k=2, index=foreign)
    with pytest.raises(ConfigError, match="contradicts"):
        ItemKNNRecommender(tiny_table, k=2, use_index=False,
                           index=tiny_table.matrix().neighbor_index())


def test_lru_put_if_respects_invalidation_generation():
    cache = LRUCache(4)
    generation = cache.generation
    assert cache.put_if("a", 1, generation)
    cache.evict(["a"])  # bumps the generation
    assert not cache.put_if("a", "stale", generation)
    assert cache.get("a") is None
    assert cache.put_if("a", 2, cache.generation)
    assert cache.get("a") == 2
    cache.clear()
    assert not cache.put_if("b", 3, generation + 1)


def test_lru_cache_bounds_and_counters():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1
    cache.put("c", 3)  # evicts "b", the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert (cache.hits, cache.misses) == (3, 1)
    assert cache.evict(["a", "zz"]) == 1
    cache.clear()
    assert len(cache) == 0
    disabled = LRUCache(0)
    disabled.put("a", 1)
    assert disabled.get("a") is None
    with pytest.raises(ServingError):
        LRUCache(-1)
