"""Unit tests for the item graph and top-k selection."""

import pytest

from repro.errors import GraphError
from repro.similarity.graph import ItemGraph, build_similarity_graph
from repro.similarity.knn import top_k


class TestTopK:
    def test_orders_by_value_then_id(self):
        sims = {"b": 0.5, "a": 0.5, "c": 0.9, "d": 0.1}
        assert top_k(sims, 3) == [("c", 0.9), ("a", 0.5), ("b", 0.5)]

    def test_k_zero_or_negative(self):
        assert top_k({"a": 1.0}, 0) == []
        assert top_k({"a": 1.0}, -3) == []

    def test_exclude(self):
        assert top_k({"a": 1.0, "b": 0.5}, 2, exclude=["a"]) == [("b", 0.5)]

    def test_minimum_inclusive(self):
        sims = {"a": 0.5, "b": 0.2, "c": -0.1}
        assert top_k(sims, 5, minimum=0.2) == [("a", 0.5), ("b", 0.2)]

    def test_fewer_candidates_than_k(self):
        assert top_k({"a": 1.0}, 10) == [("a", 1.0)]

    def test_deterministic(self):
        sims = {f"i{n}": 0.5 for n in range(20)}
        assert top_k(sims, 5) == top_k(dict(reversed(list(sims.items()))), 5)


class TestItemGraph:
    def test_add_edge_is_undirected(self):
        graph = ItemGraph()
        graph.add_edge("a", "b", 0.7)
        assert graph.similarity("a", "b") == 0.7
        assert graph.similarity("b", "a") == 0.7
        assert graph.has_edge("b", "a")

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            ItemGraph().add_edge("a", "a", 1.0)

    def test_edges_yielded_once(self):
        graph = ItemGraph()
        graph.add_edge("a", "b", 0.5)
        graph.add_edge("b", "c", 0.2)
        edges = list(graph.edges())
        assert len(edges) == 2
        assert graph.n_edges() == 2

    def test_remove_edge(self):
        graph = ItemGraph()
        graph.add_edge("a", "b", 0.5)
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        assert graph.n_edges() == 0

    def test_isolated_items_kept(self):
        graph = ItemGraph()
        graph.add_item("lonely")
        assert "lonely" in graph
        assert graph.degree("lonely") == 0

    def test_top_neighbors_with_restriction(self):
        graph = ItemGraph()
        graph.add_edge("q", "a", 0.9)
        graph.add_edge("q", "b", 0.8)
        graph.add_edge("q", "c", 0.7)
        assert graph.top_neighbors("q", 2, among={"b", "c"}) == [
            ("b", 0.8), ("c", 0.7)]

    def test_copy_is_independent(self):
        graph = ItemGraph()
        graph.add_edge("a", "b", 0.5)
        clone = graph.copy()
        clone.add_edge("a", "c", 0.1)
        assert not graph.has_edge("a", "c")


class TestBuildSimilarityGraph:
    def test_every_item_is_a_vertex(self, tiny_table):
        graph = build_similarity_graph(tiny_table)
        assert graph.items == tiny_table.items

    def test_edges_need_common_users(self, scenario):
        graph = build_similarity_graph(scenario.merged())
        assert not graph.has_edge("interstellar", "forever-war")
        assert graph.has_edge("inception", "forever-war")  # via cecilia

    def test_min_abs_similarity_filters(self, tiny_table):
        loose = build_similarity_graph(tiny_table)
        strict = build_similarity_graph(tiny_table, min_abs_similarity=0.99)
        assert strict.n_edges() <= loose.n_edges()

    def test_pair_source_injection(self, tiny_table):
        graph = build_similarity_graph(
            tiny_table, pair_source=lambda table: [("a", "b", 0.42)])
        assert graph.n_edges() == 1
        assert graph.similarity("a", "b") == 0.42

    def test_zero_similarity_never_creates_edge(self, tiny_table):
        graph = build_similarity_graph(
            tiny_table, pair_source=lambda table: [("a", "b", 0.0)])
        assert graph.n_edges() == 0
