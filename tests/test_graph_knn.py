"""Unit tests for the item graph, top-k selection and the serving
index."""

import random

import pytest

from repro.data.matrix import MatrixRatingStore, numpy_available
from repro.errors import GraphError
from repro.similarity.graph import ItemGraph, build_similarity_graph
from repro.similarity.knn import top_k


class TestTopK:
    def test_orders_by_value_then_id(self):
        sims = {"b": 0.5, "a": 0.5, "c": 0.9, "d": 0.1}
        assert top_k(sims, 3) == [("c", 0.9), ("a", 0.5), ("b", 0.5)]

    def test_k_zero_or_negative(self):
        assert top_k({"a": 1.0}, 0) == []
        assert top_k({"a": 1.0}, -3) == []

    def test_exclude(self):
        assert top_k({"a": 1.0, "b": 0.5}, 2, exclude=["a"]) == [("b", 0.5)]

    def test_minimum_inclusive(self):
        sims = {"a": 0.5, "b": 0.2, "c": -0.1}
        assert top_k(sims, 5, minimum=0.2) == [("a", 0.5), ("b", 0.2)]

    def test_fewer_candidates_than_k(self):
        assert top_k({"a": 1.0}, 10) == [("a", 1.0)]

    def test_deterministic(self):
        sims = {f"i{n}": 0.5 for n in range(20)}
        assert top_k(sims, 5) == top_k(dict(reversed(list(sims.items()))), 5)


class TestItemGraph:
    def test_add_edge_is_undirected(self):
        graph = ItemGraph()
        graph.add_edge("a", "b", 0.7)
        assert graph.similarity("a", "b") == 0.7
        assert graph.similarity("b", "a") == 0.7
        assert graph.has_edge("b", "a")

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            ItemGraph().add_edge("a", "a", 1.0)

    def test_edges_yielded_once(self):
        graph = ItemGraph()
        graph.add_edge("a", "b", 0.5)
        graph.add_edge("b", "c", 0.2)
        edges = list(graph.edges())
        assert len(edges) == 2
        assert graph.n_edges() == 2

    def test_remove_edge(self):
        graph = ItemGraph()
        graph.add_edge("a", "b", 0.5)
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        assert graph.n_edges() == 0

    def test_isolated_items_kept(self):
        graph = ItemGraph()
        graph.add_item("lonely")
        assert "lonely" in graph
        assert graph.degree("lonely") == 0

    def test_top_neighbors_with_restriction(self):
        graph = ItemGraph()
        graph.add_edge("q", "a", 0.9)
        graph.add_edge("q", "b", 0.8)
        graph.add_edge("q", "c", 0.7)
        assert graph.top_neighbors("q", 2, among={"b", "c"}) == [("b", 0.8), ("c", 0.7)]

    def test_copy_is_independent(self):
        graph = ItemGraph()
        graph.add_edge("a", "b", 0.5)
        clone = graph.copy()
        clone.add_edge("a", "c", 0.1)
        assert not graph.has_edge("a", "c")


class TestBuildSimilarityGraph:
    def test_every_item_is_a_vertex(self, tiny_table):
        graph = build_similarity_graph(tiny_table)
        assert graph.items == tiny_table.items

    def test_edges_need_common_users(self, scenario):
        graph = build_similarity_graph(scenario.merged())
        assert not graph.has_edge("interstellar", "forever-war")
        assert graph.has_edge("inception", "forever-war")  # via cecilia

    def test_min_abs_similarity_filters(self, tiny_table):
        loose = build_similarity_graph(tiny_table)
        strict = build_similarity_graph(tiny_table, min_abs_similarity=0.99)
        assert strict.n_edges() <= loose.n_edges()

    def test_pair_source_injection(self, tiny_table):
        graph = build_similarity_graph(
            tiny_table, pair_source=lambda table: [("a", "b", 0.42)])
        assert graph.n_edges() == 1
        assert graph.similarity("a", "b") == 0.42

    def test_zero_similarity_never_creates_edge(self, tiny_table):
        graph = build_similarity_graph(
            tiny_table, pair_source=lambda table: [("a", "b", 0.0)])
        assert graph.n_edges() == 0


class TestNeighborIndex:
    """The precomputed serving index: rank-ordered flat rows."""

    def _store(self, table, use_numpy):
        if use_numpy and not numpy_available():
            pytest.skip("numpy fast path unavailable")
        return MatrixRatingStore(table, use_numpy=use_numpy)

    @pytest.mark.parametrize("use_numpy", [
        pytest.param(True, id="numpy"),
        pytest.param(False, id="pure-python")])
    def test_rows_are_topk_of_adjacency(self, tiny_table, use_numpy):
        store = self._store(tiny_table, use_numpy)
        adjacency = store.build_adjacency()
        index = store.neighbor_index()
        for item in store.items:
            full = index.top(item, len(adjacency[item]) + 1)
            assert full == top_k(adjacency[item], len(adjacency[item]) + 1)
            assert index.degree(item) == len(adjacency[item])
            assert index.neighbor_dict(item) == adjacency[item]

    @pytest.mark.parametrize("use_numpy", [
        pytest.param(True, id="numpy"),
        pytest.param(False, id="pure-python")])
    def test_truncated_rows_are_prefixes(self, tiny_table, use_numpy):
        store = self._store(tiny_table, use_numpy)
        full = store.neighbor_index()
        truncated = store.neighbor_index(k=2)
        assert truncated.k == 2
        for item in store.items:
            assert truncated.top(item, 2) == full.top(item, 2)
        with pytest.raises(ValueError, match="truncated"):
            truncated.top(next(iter(store.items)), 3)

    def test_minimum_cuts_the_scan(self, tiny_table):
        store = tiny_table.matrix()
        index = store.neighbor_index()
        adjacency = store.build_adjacency()
        for item in store.items:
            expected = top_k(adjacency[item], 10, minimum=0.0)
            assert index.top(item, 10, minimum=0.0) == expected

    def test_unknown_item(self, tiny_table):
        index = tiny_table.matrix().neighbor_index()
        assert index.top("ghost", 5) == []
        assert index.degree("ghost") == 0
        assert index.neighbor_dict("ghost") == {}

    def test_scan_reports_exactness(self, tiny_table):
        store = tiny_table.matrix()
        truncated = store.neighbor_index(k=1)
        full = store.neighbor_index()
        for item in store.items:
            # Within the truncation budget the scan is exact.
            selected, exact = truncated.scan(item, 1)
            assert exact and selected == full.top(item, 1)
            # Past it, the scan degrades honestly instead of raising.
            degree = full.degree(item)
            selected, exact = truncated.scan(item, degree + 1, full_degree=degree)
            assert exact == (degree <= 1)
            if exact:
                assert selected == full.top(item, degree + 1)


class TestTruncatedIndexServing:
    """Regression suite: a graph backed by a *truncated* index must
    never raise and never under-serve — every query either comes
    exactly off the index or falls back to the adjacency scan."""

    def _graphs(self, table, k):
        store = table.matrix()
        adjacency = store.build_adjacency()
        truncated = ItemGraph.from_adjacency(
            {item: dict(nbrs) for item, nbrs in adjacency.items()},
            index=store.neighbor_index(k=k))
        reference = ItemGraph.from_adjacency(adjacency)
        return truncated, reference

    @pytest.mark.parametrize("index_k", [1, 2, 3])
    def test_top_neighbors_matches_full_adjacency(self, tiny_table, index_k):
        truncated, reference = self._graphs(tiny_table, index_k)
        items = sorted(reference.items)
        among_sets = [None] + [frozenset(items[:n]) for n in (1, 2, 3)]
        for item in items:
            for k in (1, 2, 3, 10):
                for among in among_sets:
                    for minimum in (None, 0.0, 0.5):
                        got = truncated.top_neighbors(
                            item, k, among=among, minimum=minimum)
                        want = reference.top_neighbors(
                            item, k, among=among, minimum=minimum)
                        assert got == want, (item, k, among, minimum)

    def test_ranked_neighbors_never_caches_truncated_row(self, tiny_table):
        truncated, reference = self._graphs(tiny_table, 1)
        for item in sorted(reference.items):
            ranked = truncated.ranked_neighbors(item)
            assert ranked == reference.ranked_neighbors(item)
            assert len(ranked) == truncated.degree(item)

    def test_exact_queries_still_served_from_index(self, tiny_table):
        truncated, _ = self._graphs(tiny_table, 2)
        item = sorted(truncated.items)[0]
        truncated.top_neighbors(item, 1)
        # An answerable query must not have forced the fallback path
        # to materialise and memoize the full sorted row.
        assert item not in truncated._ranked_cache

    def test_copy_carries_backing_index(self, tiny_table):
        store = tiny_table.matrix()
        graph = ItemGraph.from_adjacency(
            store.build_adjacency(), index=store.neighbor_index())
        clone = graph.copy()
        assert clone._index is graph._index
        for item in sorted(graph.items):
            assert clone.top_neighbors(item, 2) == \
                graph.top_neighbors(item, 2)
        # First mutation on the clone drops its reference only.
        clone.add_edge("a", "zzz-new", 2.0)
        assert clone._index is None
        assert graph._index is not None


class TestRankedServing:
    """top_neighbors over memoized / index-backed ranked rows."""

    def _random_graph(self, seed):
        rng = random.Random(seed)
        graph = ItemGraph()
        items = [f"i{n}" for n in range(12)]
        for item in items:
            graph.add_item(item)
        for a in range(len(items)):
            for b in range(a + 1, len(items)):
                if rng.random() < 0.4:
                    graph.add_edge(items[a], items[b], round(rng.uniform(-1, 1), 2))
        return graph, items

    def _legacy_top_neighbors(self, graph, item, k, among=None, minimum=None):
        nbrs = graph.neighbors(item)
        if among is None:
            return top_k(nbrs, k, minimum=minimum)
        candidates = [(n, s) for n, s in nbrs.items() if n in set(among)]
        return top_k(candidates, k, minimum=minimum)

    def test_matches_legacy_selection(self):
        graph, items = self._random_graph(3)
        rng = random.Random(7)
        for item in items:
            for k in (0, 1, 3, 50):
                for minimum in (None, 0.0, 0.5):
                    among = None
                    if rng.random() < 0.5:
                        among = frozenset(rng.sample(items, 6))
                    assert graph.top_neighbors(
                        item, k, among=among, minimum=minimum) == \
                        self._legacy_top_neighbors(
                            graph, item, k, among=among, minimum=minimum)

    def test_ranked_rows_memoized(self):
        graph, items = self._random_graph(5)
        first = graph.ranked_neighbors(items[0])
        assert graph.ranked_neighbors(items[0]) is first

    def test_mutation_invalidates_memo(self):
        graph = ItemGraph()
        graph.add_edge("a", "b", 0.5)
        assert graph.top_neighbors("a", 1) == [("b", 0.5)]
        graph.add_edge("a", "c", 0.9)
        assert graph.top_neighbors("a", 1) == [("c", 0.9)]
        graph.remove_edge("a", "c")
        assert graph.top_neighbors("a", 1) == [("b", 0.5)]

    def test_index_backed_graph_serves_ranked_rows(self, tiny_table):
        # The sharded build path hands the partition-assembled index
        # over with the graph; the memoized unsharded path must serve
        # identical rankings (1-shard sweeps are bit-identical, so the
        # rows agree exactly).
        indexed = build_similarity_graph(tiny_table, n_shards=2, n_edge_partitions=2)
        memoized = build_similarity_graph(tiny_table, n_shards=1, n_edge_partitions=1)
        assert indexed._index is not None
        assert memoized._index is None
        for item in memoized.items:
            got = indexed.top_neighbors(item, 3)
            want = memoized.top_neighbors(item, 3)
            assert [n for n, _ in got] == [n for n, _ in want]
            for (_, sim_got), (_, sim_want) in zip(got, want):
                assert abs(sim_got - sim_want) < 1e-9

    def test_index_backed_graph_invalidates_on_mutation(self, tiny_table):
        graph = build_similarity_graph(tiny_table, n_shards=2)
        assert graph._index is not None
        before = graph.top_neighbors("a", 1)
        graph.add_edge("a", "zzz-new", 2.0)
        assert graph._index is None
        assert graph.top_neighbors("a", 1) == [("zzz-new", 2.0)]
        graph.remove_edge("a", "zzz-new")
        assert graph.top_neighbors("a", 1) == before
