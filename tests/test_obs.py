"""Unit and property tests for the observability layer
(:mod:`repro.obs`): metric semantics, snapshot determinism, merge
algebra, Prometheus rendering, trace contexts, and the
``REPRO_OBS_LOG`` gate on span/event log lines."""

from __future__ import annotations

import json
import logging

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    OBS_LOG_ENV,
    MetricsRegistry,
    TraceContext,
    event,
    log_enabled,
    merge_snapshots,
    render_prometheus,
    span,
)

# ----------------------------------------------------------------------
# Counters, gauges, histograms
# ----------------------------------------------------------------------


def test_counter_increments_and_rejects_negative():
    registry = MetricsRegistry()
    c = registry.counter("requests_total", "requests")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 5


def test_counter_set_is_monotone():
    registry = MetricsRegistry()
    c = registry.counter("cache_hits_total")
    c.set(10)
    assert c.value == 10
    c.set(7)  # an export bridge never moves a counter backwards
    assert c.value == 10
    c.set(12)
    assert c.value == 12


def test_gauge_set_and_add():
    registry = MetricsRegistry()
    g = registry.gauge("inflight")
    g.set(3)
    g.add(2)
    g.add(-4)
    assert g.value == 1


def test_histogram_bucket_placement_le_semantics():
    registry = MetricsRegistry()
    h = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
    h.observe(0.5)  # <= 1.0
    h.observe(1.0)  # boundary: counts in the le=1.0 bucket
    h.observe(3.0)  # <= 4.0
    h.observe(9.0)  # overflow
    cell = h.labels()
    assert cell.counts == [2, 0, 1, 1]
    assert cell.count == 4
    assert cell.sum == pytest.approx(13.5)


def test_histogram_rejects_bad_bounds():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("h1", buckets=())
    with pytest.raises(ValueError):
        registry.histogram("h2", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        registry.histogram("h3", buckets=(1.0, 1.0, 2.0))


def test_labelled_metric_children_and_arity():
    registry = MetricsRegistry()
    c = registry.counter("responses_total", labels=("code",))
    c.labels("200").inc()
    c.labels("200").inc()
    c.labels("503").inc()
    assert c.labels("200").value == 2
    assert c.value == 3  # family total sums the children
    with pytest.raises(ValueError):
        c.inc()  # labelled family has no default cell
    with pytest.raises(ValueError):
        c.labels("200", "extra")


def test_registration_is_idempotent_and_checks_shape():
    registry = MetricsRegistry()
    a = registry.counter("x_total", "help")
    b = registry.counter("x_total")
    assert a is b
    with pytest.raises(ValueError):
        registry.gauge("x_total")  # kind conflict
    with pytest.raises(ValueError):
        registry.counter("x_total", labels=("code",))  # label conflict
    registry.histogram("h_seconds", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("h_seconds", buckets=(1.0, 2.0, 3.0))


# ----------------------------------------------------------------------
# Snapshots, merge, rendering
# ----------------------------------------------------------------------


def test_snapshot_is_deterministic_and_json_plain():
    registry = MetricsRegistry()
    registry.counter("z_total").inc(2)
    registry.counter("a_total", labels=("k",)).labels("b").inc()
    registry.counter("a_total", labels=("k",)).labels("a").inc()
    registry.gauge("g").set(1.5)
    registry.histogram("h", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert list(snap) == sorted(snap)
    assert list(snap["a_total"]["samples"]) == sorted(snap["a_total"]["samples"])
    # identical update sequences give identical snapshots
    assert snap == registry.snapshot()
    # and the snapshot survives the JSON round trip untouched
    assert json.loads(json.dumps(snap)) == snap


def test_merge_counters_sum_gauges_max_histograms_add():
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    for r, n in ((r1, 3), (r2, 5)):
        r.counter("c_total").inc(n)
        r.gauge("version").set(n)
        h = r.histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(float(n))
    merged = merge_snapshots(r1.snapshot(), r2.snapshot())
    assert merged["c_total"]["samples"]["[]"] == 8
    assert merged["version"]["samples"]["[]"] == 5
    cell = merged["h"]["samples"]["[]"]
    assert cell["buckets"] == [2, 0, 2]
    assert cell["count"] == 4
    assert cell["sum"] == pytest.approx(9.0)


def test_merge_disjoint_names_and_labels_union():
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    r1.counter("only_one_total").inc()
    r2.counter("only_two_total").inc(2)
    r1.counter("codes_total", labels=("code",)).labels("200").inc()
    r2.counter("codes_total", labels=("code",)).labels("503").inc()
    merged = merge_snapshots(r1.snapshot(), r2.snapshot())
    assert merged["only_one_total"]["samples"]["[]"] == 1
    assert merged["only_two_total"]["samples"]["[]"] == 2
    assert len(merged["codes_total"]["samples"]) == 2


def test_merge_rejects_conflicting_shapes():
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    r1.counter("m")
    r2.gauge("m")
    with pytest.raises(ValueError):
        merge_snapshots(r1.snapshot(), r2.snapshot())
    r3, r4 = MetricsRegistry(), MetricsRegistry()
    r3.histogram("h", buckets=(1.0,))
    r4.histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        merge_snapshots(r3.snapshot(), r4.snapshot())


def test_render_prometheus_text_format():
    registry = MetricsRegistry()
    registry.counter("req_total", "requests served").inc(7)
    registry.gauge("up").set(1)
    registry.counter("codes_total", labels=("code",)).labels("200").inc(3)
    h = registry.histogram("lat_seconds", "latency", buckets=(1.0, 2.0))
    h.observe(0.5)
    h.observe(1.5)
    h.observe(9.0)
    text = render_prometheus(registry.snapshot())
    lines = text.splitlines()
    assert "# HELP req_total requests served" in lines
    assert "# TYPE req_total counter" in lines
    assert "req_total 7" in lines
    assert "up 1" in lines
    assert 'codes_total{code="200"} 3' in lines
    # histogram buckets are cumulative, ending at +Inf == count
    assert 'lat_seconds_bucket{le="1.0"} 1' in lines
    assert 'lat_seconds_bucket{le="2.0"} 2' in lines
    assert 'lat_seconds_bucket{le="+Inf"} 3' in lines
    assert "lat_seconds_sum 11" in lines
    assert "lat_seconds_count 3" in lines
    assert text.endswith("\n")


def test_render_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("e_total", labels=("msg",)).labels('he said "hi"\n').inc()
    text = render_prometheus(registry.snapshot())
    assert 'msg="he said \\"hi\\"\\n"' in text


# ----------------------------------------------------------------------
# Property tests: the merge algebra the fleet aggregation relies on
# ----------------------------------------------------------------------

_counts = st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=4)


def _registry_from(counts: list[int]) -> MetricsRegistry:
    registry = MetricsRegistry()
    for i, n in enumerate(counts):
        registry.counter(f"m{i}_total").inc(n)
        registry.gauge(f"g{i}").set(n)
        registry.histogram(f"h{i}", buckets=(1.0, 4.0)).observe(float(n))
    return registry


@settings(max_examples=30, deadline=None)
@given(_counts, _counts, _counts)
def test_merge_is_associative_and_commutative(a, b, c):
    size = min(len(a), len(b), len(c))
    a, b, c = a[:size], b[:size], c[:size]
    sa = _registry_from(a).snapshot()
    sb = _registry_from(b).snapshot()
    sc = _registry_from(c).snapshot()
    left = merge_snapshots(merge_snapshots(sa, sb), sc)
    right = merge_snapshots(sa, merge_snapshots(sb, sc))
    assert left == right
    assert merge_snapshots(sa, sb) == merge_snapshots(sb, sa)


@settings(max_examples=30, deadline=None)
@given(_counts)
def test_merge_with_empty_is_identity(counts):
    snap = _registry_from(counts).snapshot()
    assert merge_snapshots(snap, MetricsRegistry().snapshot()) == snap
    assert merge_snapshots(snap) == snap


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30))
def test_histogram_conservation(values):
    registry = MetricsRegistry()
    h = registry.histogram("h", buckets=(0.5, 2.0, 10.0))
    for v in values:
        h.observe(v)
    cell = h.labels()
    assert sum(cell.counts) == cell.count == len(values)
    assert cell.sum == pytest.approx(sum(values))


# ----------------------------------------------------------------------
# Trace contexts
# ----------------------------------------------------------------------


def test_from_request_id_adopts_well_formed_ids():
    trace = TraceContext.from_request_id("client-id_1.2")
    assert trace.trace_id == "client-id_1.2"


@pytest.mark.parametrize(
    "bad",
    [None, "", "x" * 65, "no spaces", "bad/slash", 'quote"', "ünïcode"],
)
def test_from_request_id_replaces_malformed_ids(bad):
    trace = TraceContext.from_request_id(bad)
    assert trace.trace_id != bad
    assert len(trace.trace_id) == 16
    assert all(ch in "0123456789abcdef" for ch in trace.trace_id)


def test_child_keeps_trace_id_fresh_span_copied_baggage():
    parent = TraceContext(baggage={"budget_ms": 50})
    child = parent.child()
    assert child.trace_id == parent.trace_id
    assert child.span_id != parent.span_id
    assert child.baggage == {"budget_ms": 50}
    child.baggage["min_version"] = 3
    assert "min_version" not in parent.baggage


def test_wire_round_trip():
    trace = TraceContext(baggage={"budget_ms": 25})
    wire = trace.to_wire()
    assert json.loads(json.dumps(wire)) == wire
    back = TraceContext.from_wire(wire)
    assert back.trace_id == trace.trace_id
    assert back.span_id == trace.span_id
    assert back.baggage == trace.baggage


@pytest.mark.parametrize(
    "wire", [None, "str", 42, [], {}, {"trace_id": 7}, {"trace_id": ""}]
)
def test_from_wire_tolerates_garbage(wire):
    trace = TraceContext.from_wire(wire)
    assert trace.trace_id
    assert trace.span_id


def test_trace_ids_are_distinct():
    ids = {TraceContext().trace_id for _ in range(64)}
    assert len(ids) == 64


# ----------------------------------------------------------------------
# Spans, events, and the REPRO_OBS_LOG gate
# ----------------------------------------------------------------------


def test_span_records_histogram_even_when_logging_dark(monkeypatch, caplog):
    monkeypatch.delenv(OBS_LOG_ENV, raising=False)
    assert not log_enabled()
    registry = MetricsRegistry()
    h = registry.histogram("seconds", buckets=(10.0,))
    with caplog.at_level(logging.INFO, logger="repro.obs"):
        with span("test.section", TraceContext(), h):
            pass
    assert h.labels().count == 1
    assert not caplog.records


def test_span_logs_json_line_when_enabled(monkeypatch, caplog):
    monkeypatch.setenv(OBS_LOG_ENV, "1")
    trace = TraceContext()
    registry = MetricsRegistry()
    h = registry.histogram("seconds", buckets=(10.0,))
    with caplog.at_level(logging.INFO, logger="repro.obs"):
        with span("test.section", trace, h, method="recommend") as s:
            s.fields["status"] = 200
    assert len(caplog.records) == 1
    line = json.loads(caplog.records[0].getMessage())
    assert line["event"] == "test.section"
    assert line["trace_id"] == trace.trace_id
    assert line["span_id"] == trace.span_id
    assert line["method"] == "recommend"
    assert line["status"] == 200
    assert line["duration_ms"] >= 0
    assert "ts" in line


def test_span_stamps_error_and_reraises(monkeypatch, caplog):
    monkeypatch.setenv(OBS_LOG_ENV, "1")
    with caplog.at_level(logging.INFO, logger="repro.obs"):
        with pytest.raises(RuntimeError):
            with span("test.fail", TraceContext()):
                raise RuntimeError("boom")
    line = json.loads(caplog.records[0].getMessage())
    assert line["error"] == "RuntimeError: boom"


def test_event_gated_by_env(monkeypatch, caplog):
    trace = TraceContext()
    with caplog.at_level(logging.INFO, logger="repro.obs"):
        for off in ("", "0", "false"):
            monkeypatch.setenv(OBS_LOG_ENV, off)
            event("test.decision", trace, attempt=2)
        assert not caplog.records
        monkeypatch.setenv(OBS_LOG_ENV, "1")
        event("test.decision", trace, attempt=2)
    line = json.loads(caplog.records[0].getMessage())
    assert line["event"] == "test.decision"
    assert line["attempt"] == 2
    assert line["trace_id"] == trace.trace_id
