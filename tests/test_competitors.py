"""Unit tests for the competitor systems (repro.competitors)."""

import pytest

from repro.competitors.als import ALSConfig, ALSRecommender
from repro.competitors.linked_domain import (
    LinkedDomainItemKNN,
    SingleDomainItemKNN,
)
from repro.competitors.remote_user import RemoteUserRecommender
from repro.data.ratings import Rating, RatingTable
from repro.errors import ConfigError


class TestLinkedDomain:
    def test_trains_on_merged_table(self, small_trace):
        rec = LinkedDomainItemKNN(small_trace, k=10)
        assert rec.table.items == (small_trace.source.items | small_trace.target.items)

    def test_recommends_target_items_only(self, small_trace):
        rec = LinkedDomainItemKNN(small_trace, k=10)
        user = sorted(small_trace.source.users)[0]
        for item, _ in rec.recommend(user, n=5):
            assert item in small_trace.target.items

    def test_cold_start_prediction_uses_source_ratings(self, small_split):
        rec = LinkedDomainItemKNN(small_split.train, k=10)
        user, item, _ = small_split.hidden_pairs()[0]
        assert 1.0 <= rec.predict(user, item) <= 5.0

    def test_single_domain_variant_sees_target_only(self, small_trace):
        rec = SingleDomainItemKNN(small_trace, k=10)
        assert rec.table.items == small_trace.target.items


class TestRemoteUser:
    def test_k_validation(self, small_trace):
        with pytest.raises(ConfigError):
            RemoteUserRecommender(small_trace, k=0)

    def test_neighbors_are_straddlers(self, small_split):
        rec = RemoteUserRecommender(small_split.train, k=10)
        user = small_split.test_users[0]
        straddlers = small_split.train.overlap_users
        for neighbor, _ in rec.remote_neighbors(user):
            assert neighbor in straddlers

    def test_neighbors_cached(self, small_split):
        rec = RemoteUserRecommender(small_split.train, k=10)
        user = small_split.test_users[0]
        assert rec.remote_neighbors(user) is rec.remote_neighbors(user)

    def test_predictions_in_scale(self, small_split):
        rec = RemoteUserRecommender(small_split.train, k=10)
        for user, item, _ in small_split.hidden_pairs()[:20]:
            assert 1.0 <= rec.predict(user, item) <= 5.0

    def test_self_never_own_neighbor(self, small_split):
        rec = RemoteUserRecommender(small_split.train, k=50)
        straddler = sorted(small_split.train.overlap_users)[0]
        assert all(n != straddler for n, _ in rec.remote_neighbors(straddler))


class TestALS:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ALSConfig(rank=0).validated()
        with pytest.raises(ConfigError):
            ALSConfig(n_iterations=0).validated()
        with pytest.raises(ConfigError):
            ALSConfig(regularization=-0.1).validated()

    def test_fits_training_data(self, small_trace):
        table = small_trace.target.ratings
        rec = ALSRecommender(table, ALSConfig(rank=6, n_iterations=8))
        assert rec.training_rmse() < 0.6

    def test_more_iterations_fit_better(self, small_trace):
        table = small_trace.target.ratings
        short = ALSRecommender(table, ALSConfig(rank=6, n_iterations=1))
        long = ALSRecommender(table, ALSConfig(rank=6, n_iterations=10))
        assert long.training_rmse() <= short.training_rmse() + 1e-9

    def test_predictions_in_scale(self, small_trace):
        table = small_trace.target.ratings
        rec = ALSRecommender(table, ALSConfig(n_iterations=3))
        users = sorted(table.users)[:5]
        items = sorted(table.items)[:5]
        for user in users:
            for item in items:
                assert 1.0 <= rec.predict(user, item) <= 5.0

    def test_unknown_user_gets_item_anchored_estimate(self, small_trace):
        table = small_trace.target.ratings
        rec = ALSRecommender(table, ALSConfig(n_iterations=3))
        item = sorted(table.items)[0]
        value = rec.predict("stranger", item)
        assert 1.0 <= value <= 5.0

    def test_unknown_both_falls_back(self):
        table = RatingTable([Rating("u", "i", 4.0), Rating("v", "i", 2.0)])
        rec = ALSRecommender(table, ALSConfig(n_iterations=1))
        assert rec.predict("x", "y") == pytest.approx(table.global_mean())

    def test_deterministic_given_seed(self, small_trace):
        table = small_trace.target.ratings
        user = sorted(table.users)[0]
        item = sorted(table.items)[0]
        a = ALSRecommender(table, ALSConfig(n_iterations=2, seed=3))
        b = ALSRecommender(table, ALSConfig(n_iterations=2, seed=3))
        assert a.predict(user, item) == pytest.approx(b.predict(user, item))
