"""Unit tests for the rating store (repro.data.ratings)."""

import pytest

from repro.data.ratings import Rating, RatingTable
from repro.errors import DataError


class TestConstruction:
    def test_empty_table(self):
        table = RatingTable()
        assert len(table) == 0
        assert table.users == frozenset()
        assert table.items == frozenset()

    def test_basic_indexing(self, tiny_table):
        assert len(tiny_table) == 10
        assert tiny_table.users == {"u1", "u2", "u3", "u4"}
        assert tiny_table.items == {"a", "b", "c", "d"}

    def test_duplicate_pair_rejected(self):
        with pytest.raises(DataError, match="duplicate"):
            RatingTable([Rating("u", "i", 3.0), Rating("u", "i", 4.0)])

    def test_out_of_scale_rejected(self):
        with pytest.raises(DataError, match="outside scale"):
            RatingTable([Rating("u", "i", 6.0)])
        with pytest.raises(DataError, match="outside scale"):
            RatingTable([Rating("u", "i", 0.5)])

    def test_invalid_scale_rejected(self):
        with pytest.raises(DataError, match="scale"):
            RatingTable([], scale=(5.0, 1.0))

    def test_boundary_values_accepted(self):
        table = RatingTable([Rating("u", "i", 1.0), Rating("u", "j", 5.0)])
        assert len(table) == 2


class TestAccess:
    def test_get_and_value(self, tiny_table):
        assert tiny_table.get("u1", "a").value == 5.0
        assert tiny_table.value("u1", "a") == 5.0
        assert tiny_table.get("u1", "d") is None

    def test_value_missing_raises(self, tiny_table):
        with pytest.raises(DataError, match="no rating"):
            tiny_table.value("u1", "d")

    def test_contains(self, tiny_table):
        assert ("u1", "a") in tiny_table
        assert ("u1", "d") not in tiny_table

    def test_profiles(self, tiny_table):
        assert tiny_table.user_items("u1") == {"a", "b", "c"}
        assert tiny_table.item_users("a") == {"u1", "u2", "u4"}
        assert tiny_table.user_items("ghost") == frozenset()
        assert tiny_table.item_users("ghost") == frozenset()

    def test_iteration_covers_all(self, tiny_table):
        assert len(list(tiny_table)) == 10

    def test_timesteps_preserved(self, tiny_table):
        assert tiny_table.get("u1", "c").timestep == 2


class TestMeans:
    def test_user_mean(self, tiny_table):
        assert tiny_table.user_mean("u1") == pytest.approx(3.0)
        assert tiny_table.user_mean("u2") == pytest.approx(3.0)

    def test_item_mean(self, tiny_table):
        assert tiny_table.item_mean("a") == pytest.approx((5 + 4 + 2) / 3)

    def test_global_mean(self, tiny_table):
        assert tiny_table.global_mean() == pytest.approx(3.4)

    def test_unknown_user_falls_back_to_global(self, tiny_table):
        assert tiny_table.user_mean("ghost") == tiny_table.global_mean()

    def test_unknown_item_falls_back_to_global(self, tiny_table):
        assert tiny_table.item_mean("ghost") == tiny_table.global_mean()

    def test_empty_table_global_mean_is_scale_midpoint(self):
        assert RatingTable().global_mean() == pytest.approx(3.0)

    def test_means_cached_consistently(self, tiny_table):
        first = tiny_table.user_mean("u3")
        assert tiny_table.user_mean("u3") == first


class TestDerivation:
    def test_without_users(self, tiny_table):
        reduced = tiny_table.without_users(["u1"])
        assert "u1" not in reduced.users
        assert len(reduced) == 7
        assert len(tiny_table) == 10  # original untouched

    def test_without_items(self, tiny_table):
        reduced = tiny_table.without_items(["a", "d"])
        assert reduced.items == {"b", "c"}

    def test_without_pairs(self, tiny_table):
        reduced = tiny_table.without_pairs([("u1", "a"), ("u3", "d")])
        assert len(reduced) == 8
        assert reduced.get("u1", "a") is None
        assert reduced.get("u1", "b") is not None

    def test_with_ratings_adds_and_overrides(self, tiny_table):
        extended = tiny_table.with_ratings([
            Rating("u9", "a", 4.0), Rating("u1", "a", 1.0)])
        assert extended.value("u9", "a") == 4.0
        assert extended.value("u1", "a") == 1.0
        assert tiny_table.value("u1", "a") == 5.0

    def test_filter(self, tiny_table):
        high = tiny_table.filter(lambda r: r.value >= 4.0)
        assert all(r.value >= 4.0 for r in high)
        assert len(high) == 5

    def test_restricted_to_items(self, tiny_table):
        only_a = tiny_table.restricted_to_items(["a"])
        assert only_a.items == {"a"}
        assert len(only_a) == 3

    def test_merge_disjoint(self, tiny_table):
        other = RatingTable([Rating("u9", "z", 3.0)])
        merged = tiny_table.merged_with(other)
        assert len(merged) == 11

    def test_merge_conflict_raises(self, tiny_table):
        other = RatingTable([Rating("u1", "a", 2.0)])
        with pytest.raises(DataError, match="conflicting"):
            tiny_table.merged_with(other)

    def test_merge_identical_pair_allowed(self, tiny_table):
        other = RatingTable([Rating("u1", "a", 5.0, 0)])
        merged = tiny_table.merged_with(other)
        assert len(merged) == 10

    def test_merge_scale_mismatch(self, tiny_table):
        other = RatingTable([], scale=(0.0, 10.0))
        with pytest.raises(DataError, match="scales"):
            tiny_table.merged_with(other)


class TestClipAndMoved:
    def test_clip(self, tiny_table):
        assert tiny_table.clip(9.0) == 5.0
        assert tiny_table.clip(-2.0) == 1.0
        assert tiny_table.clip(3.3) == 3.3

    def test_moved_to(self):
        rating = Rating("u", "i", 4.0, 7)
        moved = rating.moved_to("j")
        assert moved == Rating("u", "j", 4.0, 7)
        assert rating.item == "i"

    def test_rating_is_hashable_and_frozen(self):
        rating = Rating("u", "i", 4.0, 7)
        assert hash(rating) == hash(Rating("u", "i", 4.0, 7))
        with pytest.raises(AttributeError):
            rating.value = 5.0
