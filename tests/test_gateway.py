"""The networked serving tier: protocol, watch, worker, fleet.

Layered like the package: frame protocol units, then the on-disk
publication layer (catalog + watcher), then the worker request
handlers driven in-process, then full-stack tests over real worker
subprocesses — including the `crash`-marked worker-death coverage
(mid-flight SIGKILL through the PR-6 fault harness) that pins the
supervisor's retry/restart contract.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import socket
import threading
import time

import pytest

from repro.data.ratings import Rating, RatingTable
from repro.engine.sharded_sweep import IncrementalSweep
from repro.errors import GatewayError, ServingError, StaleModelError
from repro.gateway import GatewayServer, WorkerPool
from repro.gateway.protocol import (
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
)
from repro.gateway.worker import WorkerApp, wait_for_model
from repro.serving import (
    ModelRegistry,
    RecommendationService,
    RegistryWatcher,
    SnapshotCatalog,
)

TOLERANCE = 1e-9


def _table(seed: int = 7, n_users: int = 40, n_items: int = 30,
           per_user: int = 8) -> RatingTable:
    rng = random.Random(seed)
    ratings = []
    for u in range(n_users):
        for it in rng.sample(range(n_items), per_user):
            ratings.append(Rating(
                f"u{u:03d}", f"i{it:03d}",
                float(rng.randint(1, 5)), len(ratings)))
    return RatingTable(ratings)


def _registry(table: RatingTable, cf_k: int = 20) -> ModelRegistry:
    sweep = IncrementalSweep(table, n_shards=1, with_index=True)
    return ModelRegistry(sweep=sweep, cf_k=cf_k)


def _update_batch(offset: int = 0) -> list[Rating]:
    """A batch that touches well-connected existing items, so the
    published model actually ranks differently from its predecessor."""
    return [
        Rating("u001", "i000", 5.0, 90000 + offset),
        Rating("u002", "i001", 1.0, 90001 + offset),
        Rating("u003", "i002", 4.0, 90002 + offset),
    ]


def _assert_close(got, expected) -> None:
    assert len(got) == len(expected)
    for (item_a, score_a), (item_b, score_b) in zip(got, expected):
        assert item_a == item_b
        assert abs(score_a - score_b) <= TOLERANCE


# ----------------------------------------------------------------------
# Frame protocol
# ----------------------------------------------------------------------


def test_frame_roundtrip_over_socketpair():
    left, right = socket.socketpair()
    try:
        payload = {"method": "recommend", "params": {"users": ["a", "b"], "n": 3}}
        send_frame(left, payload)
        send_frame(left, {"ok": True})
        assert recv_frame(right) == payload
        assert recv_frame(right) == {"ok": True}
        left.close()
        assert recv_frame(right) is None  # clean EOF at a boundary
    finally:
        right.close()


def test_frame_midstream_eof_is_an_error():
    left, right = socket.socketpair()
    try:
        frame = encode_frame({"ok": True})
        left.sendall(frame[:6])  # header + a torn body
        left.close()
        with pytest.raises(GatewayError, match="mid-frame"):
            recv_frame(right)
    finally:
        right.close()


def test_frame_rejects_absurd_lengths():
    left, right = socket.socketpair()
    try:
        left.sendall((1 << 31).to_bytes(4, "big"))
        with pytest.raises(GatewayError, match="corrupt"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_async_frame_roundtrip():
    async def scenario():
        left, right = socket.socketpair()
        left.setblocking(False)
        reader, writer = await asyncio.open_connection(sock=left)
        send_frame(right, {"version": 4})
        assert await read_frame(reader) == {"version": 4}
        right.close()
        assert await read_frame(reader) is None
        writer.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Catalog + watcher
# ----------------------------------------------------------------------


def test_catalog_publish_and_pointer(tmp_path):
    registry = _registry(_table())
    catalog = SnapshotCatalog(tmp_path / "catalog")
    assert catalog.current() is None
    catalog.publish(registry.current())
    version, path = catalog.current()
    assert version == 1
    assert path.is_dir()
    with pytest.raises(ServingError, match="monotone"):
        catalog.publish(registry.current(), version=1)


def test_catalog_attach_mirrors_updates(tmp_path):
    registry = _registry(_table())
    catalog = SnapshotCatalog(tmp_path / "catalog")
    catalog.attach(registry)
    assert catalog.current()[0] == 1
    registry.update(_update_batch())
    assert catalog.current()[0] == 2
    assert catalog.versions() == [1, 2]
    catalog.detach()
    registry.update(_update_batch(10))
    assert catalog.current()[0] == 2  # detached: no longer mirrored


def test_catalog_prunes_behind_keep_last(tmp_path):
    registry = _registry(_table())
    catalog = SnapshotCatalog(tmp_path / "catalog", keep_last=2)
    catalog.attach(registry)
    registry.update(_update_batch())
    registry.update(_update_batch(10))
    assert catalog.versions() == [2, 3]
    assert catalog.current()[0] == 3


def test_watcher_follows_catalog_and_agrees_on_versions(tmp_path):
    registry = _registry(_table())
    catalog = SnapshotCatalog(tmp_path / "catalog")
    catalog.attach(registry)
    watcher = RegistryWatcher(tmp_path / "catalog")
    assert watcher.poll() == 1
    assert watcher.poll() is None  # unchanged source: no reload
    registry.update(_update_batch())
    assert watcher.poll() == 2
    # A restarted watcher that never saw version 1 still lands on the
    # same number for the same bytes — the fleet-wide agreement the
    # version handshake relies on.
    late = RegistryWatcher(tmp_path / "catalog")
    assert late.poll() == 2
    service = RecommendationService(watcher.registry)
    reference = RecommendationService(registry)
    version, results = service.recommend_batch_pinned(["u001", "u004"], 5)
    ref_version, expected = reference.recommend_batch_pinned(["u001", "u004"], 5)
    assert version == ref_version == 2
    for got, want in zip(results, expected):
        _assert_close(got, want)


def test_watcher_follows_single_snapshot_dir(tmp_path):
    registry = _registry(_table())
    snapshot_dir = tmp_path / "snap"
    registry.current().save(snapshot_dir)
    watcher = RegistryWatcher(snapshot_dir)
    assert watcher.poll() == 1
    assert watcher.poll() is None
    registry.update(_update_batch())
    time.sleep(0.01)  # distinct manifest mtime_ns
    registry.current().save(snapshot_dir, overwrite=True)
    assert watcher.poll() == 2


# ----------------------------------------------------------------------
# Worker request handling (in-process)
# ----------------------------------------------------------------------


def _worker_app(tmp_path) -> tuple[WorkerApp, ModelRegistry]:
    registry = _registry(_table())
    catalog = SnapshotCatalog(tmp_path / "catalog")
    catalog.attach(registry)
    watcher = RegistryWatcher(tmp_path / "catalog")
    wait_for_model(watcher, timeout=5.0)
    return WorkerApp(watcher, RecommendationService(watcher.registry)), \
        registry


def test_worker_app_recommend_matches_reference(tmp_path):
    app, registry = _worker_app(tmp_path)
    response = app.handle({"method": "recommend",
                           "params": {"users": ["u001"], "n": 4}})
    assert response["ok"] and response["version"] == 1
    _, expected = RecommendationService(registry).recommend_batch_pinned(["u001"], 4)
    _assert_close([tuple(pair) for pair in response["results"][0]], expected[0])


def test_worker_app_converges_on_demand_for_min_version(tmp_path):
    app, registry = _worker_app(tmp_path)
    registry.update(_update_batch())
    # The worker has not idle-polled, but the handshake demands v2:
    # it must converge within this one request.
    response = app.handle({"method": "recommend",
                           "params": {"users": ["u001"], "n": 4, "min_version": 2}})
    assert response["ok"] and response["version"] == 2


def test_worker_app_reports_unreachable_version_as_retryable(tmp_path):
    app, _ = _worker_app(tmp_path)
    response = app.handle({"method": "recommend",
                           "params": {"users": ["u001"], "n": 4, "min_version": 99}})
    assert not response["ok"]
    error = response["error"]
    assert error["type"] == "stale" and error["retryable"]
    assert error["version"] == 1 and error["min_version"] == 99


def test_worker_app_rejects_bad_requests_cleanly(tmp_path):
    app, _ = _worker_app(tmp_path)
    bad_users = app.handle({"method": "recommend", "params": {}})
    assert not bad_users["ok"] and not bad_users["error"]["retryable"]
    unknown = app.handle({"method": "frobnicate"})
    assert not unknown["ok"]
    assert unknown["error"]["type"] == "unknown_method"
    assert app.handle({"method": "shutdown"}) is None


def test_pinned_entry_points_refuse_and_version_scope(tiny_table):
    registry = ModelRegistry(
        sweep=IncrementalSweep(tiny_table, n_shards=1, with_index=True),
        cf_k=5)
    service = RecommendationService(registry)
    version, _ = service.recommend_batch_pinned(["u1"], 2)
    assert version == 1
    with pytest.raises(StaleModelError):
        service.recommend_batch_pinned(["u1"], 2, min_version=2)
    with pytest.raises(StaleModelError):
        service.similar_items_pinned("a", 2, min_version=2)
    sim_version, row = service.similar_items_pinned("a", 2)
    assert sim_version == 1
    assert row == service.similar_items("a", 2)


# ----------------------------------------------------------------------
# Full stack over real worker subprocesses
# ----------------------------------------------------------------------


def _run(coro):
    return asyncio.run(coro)


def _http_get(port: int, target: str) -> dict:
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", target)
        response = conn.getresponse()
        body = response.read()
        assert response.status == 200, (response.status, body)
        return json.loads(body)
    finally:
        conn.close()


@pytest.fixture()
def published_catalog(tmp_path):
    registry = _registry(_table())
    catalog = SnapshotCatalog(tmp_path / "catalog")
    catalog.attach(registry)
    return tmp_path / "catalog", registry


@pytest.mark.slow
def test_gateway_serves_and_converges_across_publishes(published_catalog):
    source, registry = published_catalog
    reference = RecommendationService(registry)

    async def scenario():
        pool = WorkerPool(source, n_workers=2, call_timeout=30, poll_interval=0.05)
        await pool.start()
        server = GatewayServer(pool, max_delay=0.005)
        await server.start()
        loop = asyncio.get_running_loop()
        try:
            users = [f"u{i:03d}" for i in range(12)]
            payloads = await asyncio.gather(*[
                loop.run_in_executor(
                    None, _http_get, server.port,
                    f"/recommend?user={user}&n=5")
                for user in users])
            for user, payload in zip(users, payloads):
                assert payload["version"] == 1
                _, expected = reference.recommend_batch_pinned([user], 5)
                _assert_close(
                    [tuple(p) for p in payload["recommendations"]],
                    expected[0])
            # Coalescing really happened: 12 concurrent requests made
            # strictly fewer worker batches than requests.
            assert server.batcher.n_coalesced == 12
            assert server.batcher.n_flushes < 12

            registry.update(_update_batch())
            await pool.call("poll")  # one worker learns of v2 ...
            payload = await loop.run_in_executor(
                None, _http_get, server.port, "/recommend?user=u001&n=5")
            # ... and the handshake drags every later response to >= 2,
            # whichever worker serves it.
            assert payload["version"] == 2
            _, expected = reference.recommend_batch_pinned(["u001"], 5)
            _assert_close([tuple(p) for p in payload["recommendations"]], expected[0])

            similar = await loop.run_in_executor(
                None, _http_get, server.port,
                "/similar_items?item=i000&k=3")
            assert similar["version"] >= 2
            health = await loop.run_in_executor(
                None, _http_get, server.port, "/healthz")
            assert health["status"] == "ok"
            assert health["workers"]["alive"] == 2
        finally:
            await server.close()
            await pool.close()

    _run(scenario())


@pytest.mark.slow
@pytest.mark.crash
def test_supervisor_retries_and_restarts_after_midflight_kill(published_catalog):
    """A worker SIGKILLed mid-request (PR-6 fault harness) must cost at
    most a retry — callers still get correct answers, nothing hangs —
    and the supervisor restores the fleet to full strength."""
    source, registry = published_catalog
    reference = RecommendationService(registry)

    async def scenario():
        pool = WorkerPool(
            source, n_workers=2, call_timeout=30, poll_interval=0.05,
            # Die on the 3rd request a worker handles. Each worker's
            # readiness health check is its 1st, so the fleet survives
            # startup and a death lands mid-traffic; restarted workers
            # inherit the env and die again, exercising repeated
            # restarts.
            worker_env={"REPRO_CRASH_POINT": "gateway.worker.request:3",
                        "REPRO_CRASH_KILL": "1"})
        await pool.start()
        try:
            for round_number in range(6):
                response = await pool.call(
                    "recommend", {"users": ["u001", "u002"], "n": 4})
                assert response["ok"]
                _, expected = reference.recommend_batch_pinned(["u001", "u002"], 4)
                for got, want in zip(response["results"], expected):
                    _assert_close([tuple(p) for p in got], want)
            assert pool.n_restarts >= 1
            deadline = time.monotonic() + 20
            while (len(pool.alive_workers()) < 2 and time.monotonic() < deadline):
                await asyncio.sleep(0.1)
            assert len(pool.alive_workers()) == 2
        finally:
            await pool.close()

    _run(scenario())


@pytest.mark.slow
@pytest.mark.crash
def test_idle_worker_kill_is_replaced(published_catalog):
    source, _ = published_catalog

    async def scenario():
        pool = WorkerPool(source, n_workers=2, call_timeout=30, poll_interval=0.05)
        await pool.start()
        try:
            victim = pool.alive_workers()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                alive = pool.alive_workers()
                if len(alive) == 2 and victim not in alive:
                    break
                await asyncio.sleep(0.1)
            alive = pool.alive_workers()
            assert len(alive) == 2 and victim not in alive
            assert pool.n_restarts == 1
            response = await pool.call("recommend", {"users": ["u001"], "n": 3})
            assert response["ok"]
        finally:
            await pool.close()

    _run(scenario())


# ----------------------------------------------------------------------
# Observability surface: X-Request-Id, /metrics, health detail
# ----------------------------------------------------------------------


def _http_get_raw(
    port: int, target: str, headers: dict | None = None
) -> tuple[int, dict, bytes]:
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", target, headers=headers or {})
        response = conn.getresponse()
        body = response.read()
        return response.status, dict(response.getheaders()), body
    finally:
        conn.close()


def _parse_prom(text: str) -> dict[str, float]:
    """``{"name{labels}": value}`` for every sample line."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples


@pytest.mark.slow
def test_gateway_request_ids_and_metrics(published_catalog):
    source, _ = published_catalog

    async def scenario():
        pool = WorkerPool(source, n_workers=1, call_timeout=30, poll_interval=0.05)
        await pool.start()
        server = GatewayServer(pool, max_delay=0.005)
        await server.start()
        loop = asyncio.get_running_loop()

        def get(target, headers=None):
            return _http_get_raw(server.port, target, headers)

        try:
            # A fresh request is assigned a trace id and gets it back.
            status, headers, _ = await loop.run_in_executor(
                None, get, "/recommend?user=u001&n=4")
            assert status == 200
            minted = headers["X-Request-Id"]
            assert len(minted) == 16
            assert all(ch in "0123456789abcdef" for ch in minted)

            # A well-formed incoming id is honoured verbatim ...
            status, headers, _ = await loop.run_in_executor(
                None, get, "/recommend?user=u002&n=4",
                {"X-Request-Id": "client-id-42"})
            assert status == 200
            assert headers["X-Request-Id"] == "client-id-42"

            # ... a malformed one is replaced, not echoed.
            status, headers, _ = await loop.run_in_executor(
                None, get, "/recommend?user=u003&n=4",
                {"X-Request-Id": "spaces are not ok"})
            assert status == 200
            assert headers["X-Request-Id"] != "spaces are not ok"

            # Error responses are correlatable too.
            status, headers, _ = await loop.run_in_executor(None, get, "/nope")
            assert status == 404
            assert headers["X-Request-Id"]

            # Health detail: uptime plus per-worker last-served clocks.
            status, _, body = await loop.run_in_executor(None, get, "/healthz")
            health = json.loads(body)
            assert status == 200
            assert health["uptime_s"] >= 0.0
            assert health["fleet"]
            for worker in health["fleet"]:
                assert "last_served_monotonic" in worker
                # the readiness health check already served this worker
                assert worker["last_served_monotonic"] > 0.0

            # /metrics: Prometheus text merging gateway + pool + workers.
            status, headers, body = await loop.run_in_executor(None, get, "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            text = body.decode("utf-8")
            samples = _parse_prom(text)

            # Conservation: every parsed request was answered, except
            # the /metrics scrape itself (in flight while the snapshot
            # was taken: counted at ingress, response not yet written).
            responses = sum(
                value for key, value in samples.items()
                if key.startswith("gateway_http_responses_total{"))
            assert samples["gateway_http_requests_total"] == responses + 1
            assert samples['gateway_http_responses_total{code="200"}'] >= 4
            assert samples['gateway_http_responses_total{code="404"}'] == 1

            # The request-latency histogram agrees with the counters.
            assert samples["gateway_request_seconds_count"] == responses

            # Worker-side metrics crossed the process boundary (health
            # frames), including the service cache bridged on export.
            assert samples["worker_requests_total{method=\"recommend\"}"] >= 3
            assert samples["gateway_fleet_version"] == 1
            assert samples["worker_version"] == 1
            assert "service_requests_total" in samples
        finally:
            await server.close()
            await pool.close()

    _run(scenario())
