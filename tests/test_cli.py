"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("trace")
    code = main(["generate", "--out", str(directory),
                 "--seed", "3", "--users", "120"])
    assert code == 0
    return directory


class TestGenerateAndStats:
    def test_generate_writes_both_domains(self, trace_dir):
        assert (trace_dir / "movies" / "ratings.csv").exists()
        assert (trace_dir / "books" / "ratings.csv").exists()

    def test_stats_reads_back(self, trace_dir, capsys):
        assert main(["stats", "--data", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "overlapping users" in out

    def test_generate_deterministic(self, trace_dir, tmp_path):
        other = tmp_path / "again"
        main(["generate", "--out", str(other), "--seed", "3",
              "--users", "120"])
        first = (trace_dir / "movies" / "ratings.csv").read_text()
        second = (other / "movies" / "ratings.csv").read_text()
        assert first == second


class TestEvaluate:
    def test_item_average(self, trace_dir, capsys):
        assert main(["evaluate", "--data", str(trace_dir),
                     "--system", "item-average"]) == 0
        assert "MAE=" in capsys.readouterr().out

    def test_nx_ub(self, trace_dir, capsys):
        assert main(["evaluate", "--data", str(trace_dir),
                     "--system", "nx-ub", "--k", "10"]) == 0
        assert "nx-ub" in capsys.readouterr().out


class TestRecommend:
    def test_known_user(self, trace_dir, capsys):
        assert main(["recommend", "--data", str(trace_dir),
                     "--user", "o00000", "--system", "nx-ib",
                     "--k", "10", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "recommendations for o00000" in out

    def test_unknown_user_exit_code(self, trace_dir, capsys):
        assert main(["recommend", "--data", str(trace_dir),
                     "--user", "nobody"]) == 2
        assert "unknown user" in capsys.readouterr().err
