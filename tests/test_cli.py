"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.data.ratings import Rating, RatingTable
from repro.durability.manager import CheckpointPolicy, DurableSweep


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("trace")
    code = main(["generate", "--out", str(directory), "--seed", "3", "--users", "120"])
    assert code == 0
    return directory


class TestGenerateAndStats:
    def test_generate_writes_both_domains(self, trace_dir):
        assert (trace_dir / "movies" / "ratings.csv").exists()
        assert (trace_dir / "books" / "ratings.csv").exists()

    def test_stats_reads_back(self, trace_dir, capsys):
        assert main(["stats", "--data", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "overlapping users" in out

    def test_generate_deterministic(self, trace_dir, tmp_path):
        other = tmp_path / "again"
        main(["generate", "--out", str(other), "--seed", "3", "--users", "120"])
        first = (trace_dir / "movies" / "ratings.csv").read_text()
        second = (other / "movies" / "ratings.csv").read_text()
        assert first == second


class TestEvaluate:
    def test_item_average(self, trace_dir, capsys):
        assert main(["evaluate", "--data", str(trace_dir),
                     "--system", "item-average"]) == 0
        assert "MAE=" in capsys.readouterr().out

    def test_nx_ub(self, trace_dir, capsys):
        assert main(["evaluate", "--data", str(trace_dir),
                     "--system", "nx-ub", "--k", "10"]) == 0
        assert "nx-ub" in capsys.readouterr().out


class TestRecommend:
    def test_known_user(self, trace_dir, capsys):
        assert main(["recommend", "--data", str(trace_dir),
                     "--user", "o00000", "--system", "nx-ib",
                     "--k", "10", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "recommendations for o00000" in out

    def test_unknown_user_exit_code(self, trace_dir, capsys):
        assert main(["recommend", "--data", str(trace_dir), "--user", "nobody"]) == 2
        assert "unknown user" in capsys.readouterr().err

    def test_needs_data_or_snapshot(self, capsys):
        assert main(["recommend", "--user", "o00000"]) == 2
        assert "--data" in capsys.readouterr().err


@pytest.fixture(scope="module")
def snapshot_dir(trace_dir, tmp_path_factory):
    directory = tmp_path_factory.mktemp("model")
    code = main(["snapshot", "save", "--data", str(trace_dir),
                 "--out", str(directory), "--k", "10"])
    assert code == 0
    return directory


class TestSnapshotServing:
    def test_save_writes_manifest(self, snapshot_dir):
        assert (snapshot_dir / "MANIFEST.json").exists()
        assert (snapshot_dir / "index_weights.bin").exists()

    def test_info(self, snapshot_dir, capsys):
        assert main(["snapshot", "info", "--snapshot", str(snapshot_dir)]) == 0
        out = capsys.readouterr().out
        assert "serving: k=10" in out
        assert "index: entries=" in out

    def test_recommend_from_snapshot_matches_rebuild(
            self, trace_dir, snapshot_dir, capsys):
        # The snapshot was fitted for every source user, so serving any
        # of them needs no pipeline rebuild.
        assert main(["recommend", "--snapshot", str(snapshot_dir),
                     "--user", "o00000", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "recommendations for o00000" in out
        assert out.count("predicted") == 3

    def test_recommend_from_snapshot_unknown_user(self, snapshot_dir, capsys):
        assert main(["recommend", "--snapshot", str(snapshot_dir),
                     "--user", "nobody"]) == 2
        assert "unknown user" in capsys.readouterr().err

    def test_recommend_from_snapshot_rejects_pipeline_flags(self, snapshot_dir, capsys):
        # The snapshot's system/k/seed are frozen at save time; an
        # explicit override must fail loudly, not be silently ignored.
        assert main(["recommend", "--snapshot", str(snapshot_dir),
                     "--user", "o00000", "--system", "nx-ub"]) == 2
        assert "baked into a snapshot" in capsys.readouterr().err
        assert main(["recommend", "--snapshot", str(snapshot_dir),
                     "--user", "o00000", "--k", "20"]) == 2

    def test_serve_batch(self, trace_dir, snapshot_dir, capsys):
        assert main(["serve", "--snapshot", str(snapshot_dir),
                     "--user", "o00000", "--user", "o00001",
                     "--data", str(trace_dir), "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "batched top-2 for 2 users" in out
        assert "o00001:" in out

    def test_serve_unknown_user(self, snapshot_dir, capsys):
        assert main(["serve", "--snapshot", str(snapshot_dir), "--user", "nobody"]) == 2
        assert "unknown users" in capsys.readouterr().err


@pytest.fixture(scope="module")
def durable_store_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("durable") / "store"
    table = RatingTable([
        Rating(f"u{k // 4}", f"i{k % 4}", float(1 + k % 5), timestep=k)
        for k in range(20)])
    durable = DurableSweep(directory, table, n_shards=2, cf_k=5,
                           policy=CheckpointPolicy(max_batches=2))
    for round_ in range(3):
        durable.update([Rating(f"u{5 + round_}", f"i{7 + round_}",
                               3.0, timestep=100 + round_)])
    durable.close()
    return directory


class TestDurabilityCommands:
    def test_log_info(self, durable_store_dir, capsys):
        assert main(["log-info", "--store", str(durable_store_dir)]) == 0
        out = capsys.readouterr().out
        assert "write-ahead log at" in out
        assert "last_seq=3" in out
        assert "segment-" in out

    def test_log_info_on_wal_directory_directly(self, durable_store_dir, capsys):
        assert main(["log-info", "--store", str(durable_store_dir / "wal")]) == 0
        assert "write-ahead log at" in capsys.readouterr().out

    def test_log_info_missing_directory(self, tmp_path, capsys):
        assert main(["log-info", "--store", str(tmp_path / "nope")]) == 2
        assert "no write-ahead log" in capsys.readouterr().err

    def test_recover_reports_and_serves(self, durable_store_dir, capsys):
        assert main(["recover", "--store", str(durable_store_dir),
                     "--user", "u0", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "recovered durable store" in out
        assert "replayed" in out
        assert "u0:" in out
        assert out.count("predicted") == 2

    def test_recover_unknown_user(self, durable_store_dir, capsys):
        assert main(["recover", "--store", str(durable_store_dir),
                     "--user", "nobody"]) == 2
        assert "unknown users" in capsys.readouterr().err

    def test_recover_not_a_store(self, tmp_path, capsys):
        assert main(["recover", "--store", str(tmp_path)]) == 1
        assert "not a durable store" in capsys.readouterr().err


class TestBenchGateway:
    @pytest.mark.slow
    def test_bench_gateway_reports_levels(self, snapshot_dir, capsys):
        code = main(["bench-gateway", "--watch", str(snapshot_dir),
                     "--workers", "1", "--serial-requests", "10",
                     "--concurrency", "4", "--requests-per-client", "5",
                     "--rate", "0", "-n", "3"])
        assert code == 0
        report_out = capsys.readouterr().out
        import json as _json
        report = _json.loads(report_out)
        assert report["model_version"] == 1
        assert set(report["levels"]) == {"serial", "closed"}
        for level in report["levels"].values():
            assert level["errors"] == 0
            assert level["versions"] == [1]
            assert level["latency_ms"]["p999"] >= level["latency_ms"]["p50"]

    def test_bench_gateway_needs_a_model(self, tmp_path, capsys):
        assert main(["bench-gateway", "--watch", str(tmp_path)]) == 2
        assert "no loadable model" in capsys.readouterr().err
