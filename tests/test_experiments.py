"""Smoke tests for the experiment modules (quick mode).

Each experiment regenerates one paper artifact; here we check they run,
produce the expected row structure, and that the cheap ones also show
the expected qualitative shape. The full-size runs live in benchmarks/.
"""

import pytest

from repro.evaluation.experiments import (
    ablations,
    fig1b_similarity_counts,
    fig11_scalability,
    table2_genres,
    table3_homogeneous,
)
from repro.evaluation.experiments.registry import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1b", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "table2", "table3", "fig11", "ablations"}

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestFig1b:
    def test_meta_paths_dominate(self):
        result = fig1b_similarity_counts.run(quick=True)
        by_method = {row["method"]: row["heterogeneous similarities"]
                     for row in result.rows}
        assert by_method["Meta-path-based"] > by_method["Standard"]
        assert result.render()


class TestTable2:
    def test_rows_have_four_columns(self):
        result = table2_genres.run(quick=True)
        assert result.rows
        for row in result.rows:
            assert set(row) == {"D1 genre", "movies", "D2 genre", "movies "}

    def test_counts_descend_within_subdomain(self):
        result = table2_genres.run(quick=True)
        counts = [row["movies"] for row in result.rows if row["movies"]]
        assert counts == sorted(counts, reverse=True)


class TestTable3:
    def test_three_systems_reported(self):
        result = table3_homogeneous.run(quick=True)
        systems = {row["system"] for row in result.rows}
        assert systems == {"NX-Map", "X-Map", "MLlib-ALS"}
        for row in result.rows:
            assert 0.0 < row["mae"] < 4.0

    def test_nxmap_beats_private_xmap(self):
        result = table3_homogeneous.run(quick=True)
        by_system = {row["system"]: row["mae"] for row in result.rows}
        assert by_system["NX-Map"] < by_system["X-Map"]


class TestAblations:
    def test_replacement_diversity_helps(self):
        result = ablations.run(quick=True)
        diversity = {row["variant"]: row["mae"] for row in result.rows
                     if row["ablation"].startswith("replacement")}
        assert diversity["R=12"] < diversity["R=1"]

    def test_positive_only_helps(self):
        result = ablations.run(quick=True)
        by_ablation = {row["ablation"]: row["mae"] for row in result.rows}
        assert (by_ablation["full X-Sim (reference)"]
                < by_ablation["negative neighbors admitted (Eq 4 literal)"])


class TestFig11:
    def test_xmap_scales_better_than_als(self):
        result = fig11_scalability.run(quick=True)
        last = result.rows[-1]
        assert last["X-MAP speedup"] > last["MLLIB-ALS speedup"]
        assert last["X-MAP speedup"] > 1.5

    def test_baseline_point_is_one(self):
        result = fig11_scalability.run(quick=True)
        first = result.rows[0]
        assert first["X-MAP speedup"] == pytest.approx(1.0)
        assert first["MLLIB-ALS speedup"] == pytest.approx(1.0)
