"""Property-based tests (hypothesis) for the core invariants.

These generate random rating tables and random metric inputs and check
the algebraic properties the paper's formulas rely on: boundedness,
symmetry, normalization, monotone certainty decay, DP-mechanism support.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.ratings import Rating, RatingTable
from repro.core.xsim import aggregate_xsim, path_certainty, path_similarity
from repro.engine.partitioner import HashPartitioner
from repro.errors import SimilarityError
from repro.evaluation.metrics import mae, rmse
from repro.privacy.mechanisms import exponential_mechanism
from repro.privacy.sensitivity import item_similarity_sensitivity
from repro.similarity.adjusted_cosine import adjusted_cosine
from repro.similarity.knn import top_k
from repro.similarity.pearson import pearson_users
from repro.similarity.significance import (
    normalized_significance,
    significance,
)

# -- strategies ---------------------------------------------------------

_users = st.sampled_from([f"u{k}" for k in range(6)])
_items = st.sampled_from([f"i{k}" for k in range(6)])
_values = st.sampled_from([1.0, 2.0, 3.0, 4.0, 5.0])


@st.composite
def rating_tables(draw, min_size=4, max_size=30):
    """Random small rating tables with unique (user, item) pairs."""
    pairs = draw(st.lists(
        st.tuples(_users, _items), min_size=min_size, max_size=max_size,
        unique=True))
    ratings = [Rating(u, i, draw(_values), timestep=k)
               for k, (u, i) in enumerate(pairs)]
    return RatingTable(ratings)


_common = settings(max_examples=40, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


# -- similarity properties ---------------------------------------------

@_common
@given(table=rating_tables())
def test_adjusted_cosine_bounded_and_symmetric(table):
    items = sorted(table.items)
    for a in items[:4]:
        for b in items[:4]:
            if a >= b:
                continue
            sim = adjusted_cosine(table, a, b)
            assert -1.0 - 1e-9 <= sim <= 1.0 + 1e-9
            assert sim == pytest.approx(adjusted_cosine(table, b, a))


@_common
@given(table=rating_tables())
def test_pearson_users_bounded_and_symmetric(table):
    users = sorted(table.users)
    for a in users[:4]:
        for b in users[:4]:
            if a >= b:
                continue
            sim = pearson_users(table, a, b)
            assert -1.0 - 1e-9 <= sim <= 1.0 + 1e-9
            assert sim == pytest.approx(pearson_users(table, b, a))


@_common
@given(table=rating_tables())
def test_significance_bounds(table):
    items = sorted(table.items)
    for a in items[:4]:
        for b in items[:4]:
            if a >= b:
                continue
            raw = significance(table, a, b)
            common = len(table.item_users(a) & table.item_users(b))
            assert 0 <= raw <= common
            normalized = normalized_significance(table, a, b)
            assert 0.0 <= normalized <= 1.0


@_common
@given(table=rating_tables())
def test_sensitivity_positive_finite(table):
    items = sorted(table.items)
    for a in items[:3]:
        for b in items[:3]:
            if a >= b:
                continue
            value = item_similarity_sensitivity(table, a, b)
            assert 0.0 < value <= 2.0
            assert math.isfinite(value)


# -- X-Sim math ---------------------------------------------------------

@_common
@given(edges=st.lists(
    st.tuples(st.floats(-1.0, 1.0), st.integers(0, 100)),
    min_size=1, max_size=6))
def test_path_similarity_within_edge_range(edges):
    try:
        value = path_similarity(edges)
    except SimilarityError:
        assert sum(sig for _, sig in edges) == 0
        return
    sims = [sim for sim, _ in edges]
    assert min(sims) - 1e-9 <= value <= max(sims) + 1e-9


@_common
@given(factors=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=6))
def test_path_certainty_monotone_decreasing_in_length(factors):
    value = path_certainty(factors)
    assert 0.0 <= value <= 1.0
    for prefix in range(1, len(factors)):
        assert path_certainty(factors[:prefix]) >= value - 1e-12


@_common
@given(paths=st.lists(
    st.tuples(st.floats(-1.0, 1.0), st.floats(0.0, 1.0)),
    min_size=1, max_size=8))
def test_aggregate_xsim_is_convex_combination(paths):
    value = aggregate_xsim(paths)
    if value is None:
        assert all(c <= 0.0 for _, c in paths)
        return
    sims = [s for s, c in paths if c > 0]
    assert min(sims) - 1e-9 <= value <= max(sims) + 1e-9


# -- selection / metrics --------------------------------------------------

@_common
@given(similarities=st.dictionaries(
    st.text(min_size=1, max_size=4), st.floats(-1.0, 1.0),
    min_size=0, max_size=20), k=st.integers(0, 10))
def test_top_k_properties(similarities, k):
    chosen = top_k(similarities, k)
    assert len(chosen) <= k
    values = [v for _, v in chosen]
    assert values == sorted(values, reverse=True)
    if chosen and len(similarities) > len(chosen):
        floor = min(values)
        dropped = [v for key, v in similarities.items() if key not in dict(chosen)]
        assert all(v <= floor + 1e-12 for v in dropped)


@_common
@given(pairs=st.lists(
    st.tuples(st.floats(1.0, 5.0), st.floats(1.0, 5.0)),
    min_size=1, max_size=40))
def test_mae_rmse_bounds(pairs):
    predictions = [p for p, _ in pairs]
    truths = [t for _, t in pairs]
    error = mae(predictions, truths)
    assert 0.0 <= error <= 4.0
    assert rmse(predictions, truths) >= error - 1e-12


@_common
@given(keys=st.lists(st.text(min_size=1, max_size=6), min_size=1,
                     max_size=30, unique=True),
       n=st.integers(1, 16))
def test_hash_partitioner_total_and_stable(keys, n):
    partitioner = HashPartitioner(n)
    first = [partitioner.partition_of(key) for key in keys]
    second = [partitioner.partition_of(key) for key in keys]
    assert first == second
    assert all(0 <= p < n for p in first)


@_common
@given(scores=st.dictionaries(
    st.text(min_size=1, max_size=3), st.floats(-1.0, 1.0),
    min_size=1, max_size=8),
    epsilon=st.floats(0.01, 10.0))
def test_exponential_mechanism_output_in_support(scores, epsilon):
    rng = np.random.default_rng(0)
    pick = exponential_mechanism(scores, epsilon, 2.0, rng)
    assert pick in scores


# -- rating table round-trip property -------------------------------------

@_common
@given(table=rating_tables())
def test_table_derivation_conserves_ratings(table):
    users = sorted(table.users)
    half = set(users[: len(users) // 2])
    kept = table.without_users(half)
    removed = table.filter(lambda r: r.user in half)
    assert len(kept) + len(removed) == len(table)
    merged = kept.merged_with(removed)
    assert len(merged) == len(table)
