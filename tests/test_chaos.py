"""Chaos coverage for the hardened gateway: faults meet the fleet.

``test_faults.py`` pins the plan/breaker mechanics in-process; this
file points them at real worker fleets and at the HTTP edge:

* workers killed **during snapshot load** (before their first health
  OK) are respawned with backoff and the pool still comes up — and
  when *every* spawn dies, ``start()`` fails fast instead of hanging
  callers past the load timeout (the regression the breaker work must
  not reintroduce, on both backends);
* overload is shed with 429 + ``Retry-After`` — never a wrong answer;
* graceful drain finishes in-flight work and leaves **no orphan
  process** out of everything the pool ever spawned;
* degraded mode serves an explicitly ``stale``-tagged answer when the
  version floor is unreachable within the deadline;
* hedged reads race a delayed worker against an idle sibling and the
  first answer wins;
* deadline budgets bound a crash-looping request's total wall clock
  regardless of the configured retry count;
* error bodies at the edge are sanitized — internal detail must not
  leak into 503 responses (the information-disclosure regression).
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time

import pytest

from repro.data.ratings import Rating, RatingTable
from repro.engine.sharded_sweep import IncrementalSweep
from repro.errors import GatewayError
from repro.faults import FaultPlan, FaultRule
from repro.gateway import GatewayServer, WorkerPool
from repro.serving import ModelRegistry, SnapshotCatalog

TOLERANCE = 1e-9


def _table(seed: int = 7, n_users: int = 30, n_items: int = 24,
           per_user: int = 8) -> RatingTable:
    rng = random.Random(seed)
    ratings = []
    for u in range(n_users):
        for it in rng.sample(range(n_items), per_user):
            ratings.append(Rating(
                f"u{u:03d}", f"i{it:03d}",
                float(rng.randint(1, 5)), len(ratings)))
    return RatingTable(ratings)


@pytest.fixture()
def catalog_source(tmp_path):
    registry = ModelRegistry(
        sweep=IncrementalSweep(_table(), n_shards=1, with_index=True),
        cf_k=20)
    catalog = SnapshotCatalog(tmp_path / "catalog")
    catalog.attach(registry)
    return tmp_path / "catalog", registry


def _run(coro):
    return asyncio.run(coro)


async def _wait_all_dead(pids: list[int], timeout: float = 10.0) -> list[int]:
    """The pids (of everything a pool ever spawned) still alive after
    *timeout* — the drain gate asserts this comes back empty."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        alive = []
        for pid in pids:
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                continue
            alive.append(pid)
        if not alive:
            return []
        await asyncio.sleep(0.1)
    return alive


# ----------------------------------------------------------------------
# Death during snapshot load (before the first health OK)
# ----------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.crash
@pytest.mark.parametrize("pure_python", [False, True], ids=["numpy", "pure-python"])
def test_worker_killed_during_load_recovers(catalog_source, pure_python):
    """The first two spawns die mid-load; their replacements come up
    clean and the pool serves correctly — callers never hang past the
    load timeout, and the failures are visible in the slot stats."""
    source, _ = catalog_source
    plan = FaultPlan(seed=3, rules=[
        FaultRule("gateway.worker.load", "kill", max_spawn_seq=2)])

    async def scenario():
        pool = WorkerPool(
            source, n_workers=2, call_timeout=15, load_timeout=15,
            poll_interval=0.05, backoff_base=0.05, backoff_cap=0.2,
            pure_python=pure_python, worker_env=plan.to_env())
        t0 = time.monotonic()
        await pool.start()
        assert time.monotonic() - t0 < 30
        try:
            assert pool.n_spawn_failures >= 2
            response = await pool.call("recommend", {"users": ["u001"], "n": 4})
            assert response["ok"] and response["results"][0]
        finally:
            await pool.close()
        assert await _wait_all_dead(pool.spawned_pids) == []

    _run(scenario())


@pytest.mark.slow
@pytest.mark.crash
def test_every_spawn_dying_fails_fast_without_orphans(catalog_source):
    """When no worker can ever load (kill at every load), start() must
    raise within its own deadline — not hang callers — and leave no
    process behind."""
    source, _ = catalog_source
    plan = FaultPlan(rules=[FaultRule("gateway.worker.load", "kill")])

    async def scenario():
        pool = WorkerPool(
            source, n_workers=2, call_timeout=2, load_timeout=2,
            backoff_base=0.05, backoff_cap=0.2,
            worker_env=plan.to_env())
        t0 = time.monotonic()
        with pytest.raises(GatewayError, match="no worker became ready"):
            await pool.start()
        assert time.monotonic() - t0 < 15
        assert pool.n_spawn_failures >= 2
        assert await _wait_all_dead(pool.spawned_pids) == []

    _run(scenario())


# ----------------------------------------------------------------------
# Deadline budgets
# ----------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.crash
def test_deadline_bounds_a_crash_looping_request(catalog_source):
    """retries=50 must not mean 50 spawn cycles of wall clock: the
    per-request deadline budget cuts the retry loop off."""
    source, _ = catalog_source

    async def scenario():
        pool = WorkerPool(
            source, n_workers=1, call_timeout=15, retries=50,
            poll_interval=0.05, backoff_base=0.05, backoff_cap=0.2,
            # Health is each worker's request #1; every data request
            # after it dies mid-flight, on every respawn too.
            worker_env={"REPRO_CRASH_POINT": "gateway.worker.request:2",
                        "REPRO_CRASH_KILL": "1"})
        await pool.start()
        try:
            t0 = time.monotonic()
            with pytest.raises(GatewayError):
                await pool.call("recommend", {"users": ["u001"], "n": 4}, timeout=2.0)
            assert time.monotonic() - t0 < 10
        finally:
            await pool.close()

    _run(scenario())


def test_worker_refuses_exhausted_budget(tmp_path):
    """A frame arriving with no budget left is answered with a
    non-retryable deadline error, not computed."""
    from repro.serving import RecommendationService, RegistryWatcher
    from repro.gateway.worker import WorkerApp, wait_for_model

    registry = ModelRegistry(
        sweep=IncrementalSweep(_table(), n_shards=1, with_index=True),
        cf_k=20)
    catalog = SnapshotCatalog(tmp_path / "catalog")
    catalog.attach(registry)
    watcher = RegistryWatcher(tmp_path / "catalog")
    wait_for_model(watcher, timeout=5.0)
    app = WorkerApp(watcher, RecommendationService(watcher.registry))
    dead = app.handle({"method": "recommend",
                       "params": {"users": ["u001"], "n": 4, "budget_ms": 0.0}})
    assert not dead["ok"]
    assert dead["error"]["type"] == "deadline"
    assert not dead["error"]["retryable"]
    alive = app.handle({"method": "recommend",
                        "params": {"users": ["u001"], "n": 4, "budget_ms": 500.0}})
    assert alive["ok"]


# ----------------------------------------------------------------------
# Degraded mode: bounded staleness, explicitly tagged
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_allow_stale_serves_tagged_response_when_floor_unreachable(catalog_source):
    source, _ = catalog_source

    async def scenario():
        pool = WorkerPool(
            source, n_workers=1, call_timeout=4, retries=1,
            poll_interval=0.05, allow_stale=True)
        await pool.start()
        try:
            # Pretend some worker already served v99 (e.g. it died with
            # the only copy): the floor is now unreachable.
            pool.fleet_version = 99
            t0 = time.monotonic()
            response = await pool.call("recommend", {"users": ["u001"], "n": 4})
            assert time.monotonic() - t0 < 6
            assert response["ok"] and response["stale"] is True
            assert response["version"] == 1
            assert pool.n_stale_served == 1
        finally:
            await pool.close()

    _run(scenario())


@pytest.mark.slow
def test_without_allow_stale_the_floor_still_fails(catalog_source):
    source, _ = catalog_source

    async def scenario():
        pool = WorkerPool(
            source, n_workers=1, call_timeout=2, retries=1,
            poll_interval=0.05)
        await pool.start()
        try:
            pool.fleet_version = 99
            with pytest.raises(GatewayError):
                await pool.call("recommend", {"users": ["u001"], "n": 4})
        finally:
            await pool.close()

    _run(scenario())


# ----------------------------------------------------------------------
# Hedged reads
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_hedged_read_beats_a_delayed_worker(catalog_source):
    """Only the first-spawned worker is slow (1s on every data frame it
    sends); with hedging on, reads that land on it are duplicated to
    the fast sibling and finish early."""
    source, _ = catalog_source
    plan = FaultPlan(seed=5, rules=[
        # after=2 spares each worker's health response (send #1).
        FaultRule("gateway.worker.send", "delay", delay_s=1.0,
                  after=2, max_spawn_seq=1)])

    async def scenario():
        pool = WorkerPool(
            source, n_workers=2, call_timeout=15, poll_interval=0.05,
            hedge_delay=0.1, worker_env=plan.to_env())
        await pool.start()
        try:
            t0 = time.monotonic()
            for _ in range(4):
                response = await pool.call("recommend", {"users": ["u001"], "n": 4})
                assert response["ok"]
            elapsed = time.monotonic() - t0
            # Un-hedged, every round through the slow worker costs 1s.
            assert pool.n_hedged >= 1
            assert pool.n_hedge_wins >= 1
            assert elapsed < 3.0
        finally:
            await pool.close()

    _run(scenario())


# ----------------------------------------------------------------------
# The HTTP edge: shedding, drain, sanitized errors, healthz detail
# ----------------------------------------------------------------------


class _FakePool:
    """A duck-typed pool for edge-behaviour tests that need no
    subprocesses: answers after an optional event, or raises."""

    call_timeout = 5.0

    def __init__(self, gate: asyncio.Event | None = None,
                 error: GatewayError | None = None) -> None:
        self.gate = gate
        self.error = error
        self.n_calls = 0

    async def call(self, method, params=None, timeout=None, trace=None):
        self.n_calls += 1
        if self.gate is not None:
            await self.gate.wait()
        if self.error is not None:
            raise self.error
        users = (params or {}).get("users", ["u"])
        return {"ok": True, "version": 1, "results": [[["i001", 1.0]] for _ in users]}

    async def close(self):
        return None

    def stats(self):
        return {"n_workers": 1, "alive": 1, "fleet_version": 1,
                "n_calls": self.n_calls, "n_restarts": 0}

    def worker_details(self):
        return []


def test_overload_sheds_with_429_and_retry_after():
    async def scenario():
        gate = asyncio.Event()
        server = GatewayServer(
            _FakePool(gate=gate), max_inflight=1, max_queue=1,
            max_delay=0.001)
        first = asyncio.ensure_future(
            server._route("GET", "/recommend?user=a&n=3", b""))
        second = asyncio.ensure_future(
            server._route("GET", "/recommend?user=b&n=3", b""))
        await asyncio.sleep(0.05)  # first holds the slot, second queues
        status, payload, extra = await server._route(
            "GET", "/recommend?user=c&n=3", b"")
        assert status == 429
        assert payload["error"]["code"] == "overloaded"
        assert extra == {"Retry-After": "1"}
        assert server.n_shed == 1
        gate.set()
        for task in (first, second):
            status, payload, _ = await task
            assert status == 200 and payload["recommendations"]
        # healthz never sheds, even at capacity.
        status, payload, _ = await server._route("GET", "/healthz", b"")
        assert status == 200 and payload["shed"] == 1

    _run(scenario())


def test_error_bodies_are_sanitized():
    """A GatewayError carrying internal detail (paths, pids) must not
    reach the client; the body is a stable machine-readable shape."""
    async def scenario():
        secret = "/var/data/models/v-00000007 (pid 4242)"
        server = GatewayServer(
            _FakePool(error=GatewayError(f"worker died reading {secret}")))
        status, payload, _ = await server._route("GET", "/recommend?user=a&n=3", b"")
        assert status == 503
        assert payload["error"]["code"] == "upstream_unavailable"
        assert secret not in json.dumps(payload)
        assert "pid" not in json.dumps(payload)

    _run(scenario())


def test_draining_server_refuses_new_data_requests():
    async def scenario():
        server = GatewayServer(_FakePool())
        server._draining = True
        status, payload, _ = await server._route("GET", "/recommend?user=a&n=3", b"")
        assert status == 503
        assert payload["error"]["code"] == "draining"
        status, payload, _ = await server._route("GET", "/healthz", b"")
        assert status == 503 and payload["status"] == "draining"

    _run(scenario())


@pytest.mark.slow
def test_drain_finishes_inflight_and_leaves_no_orphans(catalog_source):
    source, _ = catalog_source

    async def scenario():
        pool = WorkerPool(source, n_workers=2, call_timeout=15, poll_interval=0.05)
        await pool.start()
        server = GatewayServer(pool, max_delay=0.002)
        await server.start()
        import http.client

        def one_request(user: str) -> int:
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=15)
            try:
                conn.request("GET", f"/recommend?user={user}&n=4")
                return conn.getresponse().status
            finally:
                conn.close()

        loop = asyncio.get_running_loop()
        statuses = await asyncio.gather(*[
            loop.run_in_executor(None, one_request, f"u{i:03d}")
            for i in range(6)])
        assert statuses == [200] * 6
        await server.drain(grace=10.0)
        # Everything the pool ever spawned is gone — no orphans.
        assert await _wait_all_dead(pool.spawned_pids) == []
        # And the listener is gone too.
        with pytest.raises(OSError):
            one_request("u001")

    _run(scenario())


@pytest.mark.slow
def test_healthz_reports_per_worker_detail(catalog_source):
    source, _ = catalog_source

    async def scenario():
        pool = WorkerPool(source, n_workers=2, call_timeout=15, poll_interval=0.05)
        await pool.start()
        server = GatewayServer(pool)
        try:
            await pool.call("recommend", {"users": ["u001"], "n": 3})
            status, payload, _ = await server._route("GET", "/healthz", b"")
            assert status == 200
            fleet = payload["fleet"]
            assert len(fleet) == 2
            for entry in fleet:
                assert entry["alive"] is True
                assert isinstance(entry["pid"], int)
                assert entry["circuit"] == "closed"
                assert entry["restarts"] == 0
                assert entry["version"] >= 1
        finally:
            await pool.close()

    _run(scenario())
