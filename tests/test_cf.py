"""Unit tests for the CF substrate (repro.cf)."""

import random

import pytest

from repro.cf.item_average import ItemAverageRecommender
from repro.cf.item_knn import ItemKNNRecommender
from repro.cf.predictor import Recommender
from repro.cf.slope_one import SlopeOneRecommender
from repro.cf.temporal import TemporalItemKNNRecommender
from repro.cf.user_average import UserAverageRecommender
from repro.cf.user_knn import UserKNNRecommender
from repro.data.ratings import Rating, RatingTable
from repro.errors import ConfigError
from repro.similarity.knn import top_k


class TestProtocol:
    def test_all_recommenders_satisfy_protocol(self, tiny_table):
        for cls in (ItemAverageRecommender, UserAverageRecommender,
                    SlopeOneRecommender):
            assert isinstance(cls(tiny_table), Recommender)
        assert isinstance(UserKNNRecommender(tiny_table, k=2), Recommender)
        assert isinstance(ItemKNNRecommender(tiny_table, k=2), Recommender)

    def test_predictions_always_in_scale(self, small_trace):
        table = small_trace.target.ratings
        recs = [ItemKNNRecommender(table, k=10),
                UserKNNRecommender(table, k=10),
                SlopeOneRecommender(table),
                ItemAverageRecommender(table)]
        users = sorted(table.users)[:5]
        items = sorted(table.items)[:5]
        for rec in recs:
            for user in users:
                for item in items:
                    assert 1.0 <= rec.predict(user, item) <= 5.0


class TestBaselines:
    def test_item_average(self, tiny_table):
        rec = ItemAverageRecommender(tiny_table)
        assert rec.predict("anyone", "a") == pytest.approx((5 + 4 + 2) / 3)

    def test_item_average_unknown_item_falls_back(self, tiny_table):
        rec = ItemAverageRecommender(tiny_table)
        assert rec.predict("u1", "ghost") == pytest.approx(tiny_table.user_mean("u1"))

    def test_user_average(self, tiny_table):
        rec = UserAverageRecommender(tiny_table)
        assert rec.predict("u1", "anything") == pytest.approx(3.0)

    def test_unknown_everything_gives_global_mean(self, tiny_table):
        rec = UserAverageRecommender(tiny_table)
        assert rec.predict("ghost", "ghost") == pytest.approx(tiny_table.global_mean())


class TestUserKNN:
    def test_k_must_be_positive(self, tiny_table):
        with pytest.raises(ConfigError):
            UserKNNRecommender(tiny_table, k=0)

    def test_neighbors_exclude_self(self, tiny_table):
        rec = UserKNNRecommender(tiny_table, k=3)
        assert all(n != "u1" for n, _ in rec.neighbors("u1"))

    def test_neighbors_cached(self, tiny_table):
        rec = UserKNNRecommender(tiny_table, k=3)
        assert rec.neighbors("u1") is rec.neighbors("u1")

    def test_prediction_uses_neighbor_deviations(self):
        # u2 mirrors u1 exactly; u1's unseen item should be pulled
        # toward u2's deviation on it.
        table = RatingTable([
            Rating("u1", "a", 5.0), Rating("u1", "b", 1.0),
            Rating("u2", "a", 5.0), Rating("u2", "b", 1.0),
            Rating("u2", "c", 5.0),
            Rating("u3", "c", 1.0), Rating("u3", "a", 1.0),
            Rating("u3", "b", 5.0),
        ])
        rec = UserKNNRecommender(table, k=1)
        assert rec.predict("u1", "c") > table.user_mean("u1")

    def test_no_signal_falls_back(self, tiny_table):
        rec = UserKNNRecommender(tiny_table, k=2)
        value = rec.predict("u1", "ghost-item")
        assert 1.0 <= value <= 5.0


class TestItemKNN:
    def test_k_must_be_positive(self, tiny_table):
        with pytest.raises(ConfigError):
            ItemKNNRecommender(tiny_table, k=-1)

    def test_similarity_cache_symmetric(self, tiny_table):
        rec = ItemKNNRecommender(tiny_table, k=2)
        assert rec.item_similarity("a", "b") == rec.item_similarity("b", "a")

    def test_positive_only_default(self, tiny_table):
        rec = ItemKNNRecommender(tiny_table, k=5)
        for user in tiny_table.users:
            for item in tiny_table.items:
                for _, sim in rec.rated_neighbors(user, item):
                    assert sim > 0.0

    def test_negative_allowed_when_disabled(self, tiny_table):
        rec = ItemKNNRecommender(tiny_table, k=5, positive_only=False)
        sims = [sim for user in tiny_table.users for item in tiny_table.items
                for _, sim in rec.rated_neighbors(user, item)]
        assert any(sim < 0.0 for sim in sims)

    def test_neighbors_subset_of_user_profile(self, tiny_table):
        rec = ItemKNNRecommender(tiny_table, k=5)
        neighbors = rec.rated_neighbors("u1", "d")
        assert {n for n, _ in neighbors} <= tiny_table.user_items("u1")

    def test_index_built_lazily_and_once(self, tiny_table):
        rec = ItemKNNRecommender(tiny_table, k=2)
        assert rec._index is None
        assert rec.neighbor_index() is rec.neighbor_index()

    def test_unknown_user_and_item(self, tiny_table):
        rec = ItemKNNRecommender(tiny_table, k=2)
        assert rec.rated_neighbors("ghost", "a") == []
        assert rec.rated_neighbors("u1", "ghost") == []

    def test_unknown_user_with_positive_neighbors_present(self):
        # The query item has positively-similar neighbors, so a
        # rated-set lookup that accidentally matched everything (the
        # serve path keeps per-user membership masks) would surface
        # them for a user the table has never seen.
        table = RatingTable([
            Rating("u1", "a", 5.0, 0), Rating("u1", "b", 4.0, 1),
            Rating("u2", "a", 4.0, 0), Rating("u2", "b", 3.0, 1),
            Rating("u2", "c", 1.0, 2), Rating("u3", "b", 5.0, 0),
            Rating("u3", "c", 4.0, 1),
        ])
        rec = ItemKNNRecommender(table, k=5)
        assert any(rec.rated_neighbors("u2", "a"))
        assert rec.rated_neighbors("ghost", "a") == []


class TestItemKNNServingIndex:
    """The index path (O(k) row scans) vs the per-pair path.

    Given the same similarity values, the two selection algorithms must
    agree *exactly* — neighbor lists and raw Eq-4 predictions bit for
    bit. The legacy ``use_index=False`` path computes each similarity
    with a per-pair dot product whose summation order differs from the
    bulk Eq-6 accumulation by ~1e-15, so against it the contract is
    1e-9 agreement on predictions.
    """

    def _seeded_table(self, seed=29, n_users=40, n_items=30, n_ratings=420):
        rng = random.Random(seed)
        seen = set()
        ratings = []
        while len(ratings) < n_ratings:
            pair = (f"u{rng.randrange(n_users)}", f"i{rng.randrange(n_items)}")
            if pair in seen:
                continue
            seen.add(pair)
            ratings.append(Rating(pair[0], pair[1],
                                  float(rng.randint(1, 5)), len(ratings)))
        return RatingTable(ratings)

    def _reference_neighbors(self, rec, adjacency, user, item):
        """The per-pair path — iterate X_A, look up each similarity,
        top-k — fed by the same (bulk-assembled) similarity values the
        index rows hold."""
        row = adjacency.get(item, {})
        candidates = {}
        for rated in rec.table.user_items(user):
            if rated == item or rated not in row:
                continue
            sim = row[rated]
            if sim > 0.0 or (sim != 0.0 and not rec.positive_only):
                candidates[rated] = sim
        return top_k(candidates, rec.k)

    def _reference_raw(self, rec, neighbors, user, item):
        numerator = 0.0
        denominator = 0.0
        for rated, sim in neighbors:
            rating = rec.table.get(user, rated)
            numerator += sim * (rating.value - rec.table.item_mean(rated))
            denominator += abs(sim)
        if denominator == 0.0:
            return None
        return rec.table.item_mean(item) + numerator / denominator

    @pytest.mark.parametrize("positive_only", [True, False])
    def test_predictions_via_index_match_per_pair_path_exactly(self, positive_only):
        table = self._seeded_table()
        rec = ItemKNNRecommender(table, k=7, positive_only=positive_only)
        adjacency = table.matrix().build_adjacency()
        users = sorted(table.users)[:15]
        items = sorted(table.items)[:15]
        for user in users:
            for item in items:
                expected = self._reference_neighbors(rec, adjacency, user, item)
                assert rec.rated_neighbors(user, item) == expected
                assert rec._predict_raw(user, item) == \
                    self._reference_raw(rec, expected, user, item)

    def test_index_agrees_with_legacy_pairwise_path(self):
        table = self._seeded_table(seed=31)
        indexed = ItemKNNRecommender(table, k=7)
        legacy = ItemKNNRecommender(table, k=7, use_index=False)
        users = sorted(table.users)[:10]
        items = sorted(table.items)[:10]
        for user in users:
            for item in items:
                assert [n for n, _ in indexed.rated_neighbors(user, item)] \
                    == [n for n, _ in legacy.rated_neighbors(user, item)]
                assert indexed.predict(user, item) == pytest.approx(
                    legacy.predict(user, item), abs=1e-9)

    def test_temporal_variant_serves_from_index(self):
        table = self._seeded_table(seed=37)
        indexed = TemporalItemKNNRecommender(table, k=5, alpha=0.03)
        legacy = TemporalItemKNNRecommender(table, k=5, alpha=0.03, use_index=False)
        user = sorted(table.users)[0]
        for item in sorted(table.items)[:10]:
            assert indexed.predict(user, item) == pytest.approx(
                legacy.predict(user, item), abs=1e-9)


class TestTemporal:
    def test_alpha_zero_equals_plain_item_knn(self, small_trace):
        table = small_trace.target.ratings
        plain = ItemKNNRecommender(table, k=10)
        temporal = TemporalItemKNNRecommender(table, k=10, alpha=0.0)
        user = sorted(table.users)[0]
        for item in sorted(table.items)[:10]:
            assert temporal.predict(user, item) == pytest.approx(
                plain.predict(user, item))

    def test_negative_alpha_rejected(self, tiny_table):
        with pytest.raises(ConfigError):
            TemporalItemKNNRecommender(tiny_table, alpha=-0.1)

    def test_query_time_is_latest_timestep(self, tiny_table):
        rec = TemporalItemKNNRecommender(tiny_table, alpha=0.1)
        assert rec.query_time("u1") == 2
        assert rec.query_time("ghost") == 0

    def test_decay_downweights_old_ratings(self):
        # Two rated items equally similar to the query; the recent one
        # has a high rating, the old one low. Decay pulls the
        # prediction toward the recent rating.
        table = RatingTable([
            Rating("u", "old", 1.0, 0),
            Rating("u", "new", 5.0, 100),
            Rating("v", "old", 4.0, 0), Rating("v", "new", 2.0, 1),
            Rating("v", "q", 3.0, 2),
            Rating("w", "old", 2.0, 0), Rating("w", "new", 4.0, 1),
            Rating("w", "q", 3.0, 2),
        ])
        mild = TemporalItemKNNRecommender(table, k=5, alpha=0.0)
        sharp = TemporalItemKNNRecommender(table, k=5, alpha=0.05)
        assert sharp.predict("u", "q") >= mild.predict("u", "q")


class TestSlopeOne:
    def test_deviation_antisymmetric(self, tiny_table):
        rec = SlopeOneRecommender(tiny_table)
        dev_ab, n_ab = rec.deviation("a", "b")
        dev_ba, n_ba = rec.deviation("b", "a")
        assert dev_ab == pytest.approx(-dev_ba)
        assert n_ab == n_ba

    def test_deviation_hand_computed(self, tiny_table):
        rec = SlopeOneRecommender(tiny_table)
        # co-raters of a and b: u1 (5-3=2), u2 (4-2=2) -> dev = 2
        dev, count = rec.deviation("a", "b")
        assert dev == pytest.approx(2.0)
        assert count == 2

    def test_prediction_formula(self):
        table = RatingTable([
            Rating("u1", "a", 4.0), Rating("u1", "b", 2.0),
            Rating("u2", "a", 5.0), Rating("u2", "b", 3.0),
            Rating("u3", "b", 4.0)])
        rec = SlopeOneRecommender(table)
        # dev(a, b) = 2 -> u3: b=4 -> a ≈ 4 + 2 = 5 (clipped at 5)
        assert rec.predict("u3", "a") == pytest.approx(5.0)

    def test_self_deviation_zero(self, tiny_table):
        assert SlopeOneRecommender(tiny_table).deviation("a", "a") == (0.0, 0)


class TestTopN:
    def test_recommend_excludes_rated(self, tiny_table):
        rec = ItemAverageRecommender(tiny_table)
        recommended = [item for item, _ in rec.recommend("u1", n=10)]
        assert not set(recommended) & tiny_table.user_items("u1")

    def test_recommend_sorted_desc(self, tiny_table):
        rec = ItemAverageRecommender(tiny_table)
        scores = [score for _, score in rec.recommend("u4", n=10)]
        assert scores == sorted(scores, reverse=True)

    def test_recommend_respects_n(self, small_trace):
        rec = ItemAverageRecommender(small_trace.target.ratings)
        user = sorted(small_trace.target.users)[0]
        assert len(rec.recommend(user, n=3)) == 3
