"""Unit tests for the CF substrate (repro.cf)."""

import pytest

from repro.cf.item_average import ItemAverageRecommender
from repro.cf.item_knn import ItemKNNRecommender
from repro.cf.predictor import Recommender
from repro.cf.slope_one import SlopeOneRecommender
from repro.cf.temporal import TemporalItemKNNRecommender
from repro.cf.user_average import UserAverageRecommender
from repro.cf.user_knn import UserKNNRecommender
from repro.data.ratings import Rating, RatingTable
from repro.errors import ConfigError


class TestProtocol:
    def test_all_recommenders_satisfy_protocol(self, tiny_table):
        for cls in (ItemAverageRecommender, UserAverageRecommender,
                    SlopeOneRecommender):
            assert isinstance(cls(tiny_table), Recommender)
        assert isinstance(UserKNNRecommender(tiny_table, k=2), Recommender)
        assert isinstance(ItemKNNRecommender(tiny_table, k=2), Recommender)

    def test_predictions_always_in_scale(self, small_trace):
        table = small_trace.target.ratings
        recs = [ItemKNNRecommender(table, k=10),
                UserKNNRecommender(table, k=10),
                SlopeOneRecommender(table),
                ItemAverageRecommender(table)]
        users = sorted(table.users)[:5]
        items = sorted(table.items)[:5]
        for rec in recs:
            for user in users:
                for item in items:
                    assert 1.0 <= rec.predict(user, item) <= 5.0


class TestBaselines:
    def test_item_average(self, tiny_table):
        rec = ItemAverageRecommender(tiny_table)
        assert rec.predict("anyone", "a") == pytest.approx((5 + 4 + 2) / 3)

    def test_item_average_unknown_item_falls_back(self, tiny_table):
        rec = ItemAverageRecommender(tiny_table)
        assert rec.predict("u1", "ghost") == pytest.approx(
            tiny_table.user_mean("u1"))

    def test_user_average(self, tiny_table):
        rec = UserAverageRecommender(tiny_table)
        assert rec.predict("u1", "anything") == pytest.approx(3.0)

    def test_unknown_everything_gives_global_mean(self, tiny_table):
        rec = UserAverageRecommender(tiny_table)
        assert rec.predict("ghost", "ghost") == pytest.approx(
            tiny_table.global_mean())


class TestUserKNN:
    def test_k_must_be_positive(self, tiny_table):
        with pytest.raises(ConfigError):
            UserKNNRecommender(tiny_table, k=0)

    def test_neighbors_exclude_self(self, tiny_table):
        rec = UserKNNRecommender(tiny_table, k=3)
        assert all(n != "u1" for n, _ in rec.neighbors("u1"))

    def test_neighbors_cached(self, tiny_table):
        rec = UserKNNRecommender(tiny_table, k=3)
        assert rec.neighbors("u1") is rec.neighbors("u1")

    def test_prediction_uses_neighbor_deviations(self):
        # u2 mirrors u1 exactly; u1's unseen item should be pulled
        # toward u2's deviation on it.
        table = RatingTable([
            Rating("u1", "a", 5.0), Rating("u1", "b", 1.0),
            Rating("u2", "a", 5.0), Rating("u2", "b", 1.0),
            Rating("u2", "c", 5.0),
            Rating("u3", "c", 1.0), Rating("u3", "a", 1.0),
            Rating("u3", "b", 5.0),
        ])
        rec = UserKNNRecommender(table, k=1)
        assert rec.predict("u1", "c") > table.user_mean("u1")

    def test_no_signal_falls_back(self, tiny_table):
        rec = UserKNNRecommender(tiny_table, k=2)
        value = rec.predict("u1", "ghost-item")
        assert 1.0 <= value <= 5.0


class TestItemKNN:
    def test_k_must_be_positive(self, tiny_table):
        with pytest.raises(ConfigError):
            ItemKNNRecommender(tiny_table, k=-1)

    def test_similarity_cache_symmetric(self, tiny_table):
        rec = ItemKNNRecommender(tiny_table, k=2)
        assert rec.item_similarity("a", "b") == rec.item_similarity("b", "a")

    def test_positive_only_default(self, tiny_table):
        rec = ItemKNNRecommender(tiny_table, k=5)
        for user in tiny_table.users:
            for item in tiny_table.items:
                for _, sim in rec.rated_neighbors(user, item):
                    assert sim > 0.0

    def test_negative_allowed_when_disabled(self, tiny_table):
        rec = ItemKNNRecommender(tiny_table, k=5, positive_only=False)
        sims = [sim for user in tiny_table.users for item in tiny_table.items
                for _, sim in rec.rated_neighbors(user, item)]
        assert any(sim < 0.0 for sim in sims)

    def test_neighbors_subset_of_user_profile(self, tiny_table):
        rec = ItemKNNRecommender(tiny_table, k=5)
        neighbors = rec.rated_neighbors("u1", "d")
        assert {n for n, _ in neighbors} <= tiny_table.user_items("u1")


class TestTemporal:
    def test_alpha_zero_equals_plain_item_knn(self, small_trace):
        table = small_trace.target.ratings
        plain = ItemKNNRecommender(table, k=10)
        temporal = TemporalItemKNNRecommender(table, k=10, alpha=0.0)
        user = sorted(table.users)[0]
        for item in sorted(table.items)[:10]:
            assert temporal.predict(user, item) == pytest.approx(
                plain.predict(user, item))

    def test_negative_alpha_rejected(self, tiny_table):
        with pytest.raises(ConfigError):
            TemporalItemKNNRecommender(tiny_table, alpha=-0.1)

    def test_query_time_is_latest_timestep(self, tiny_table):
        rec = TemporalItemKNNRecommender(tiny_table, alpha=0.1)
        assert rec.query_time("u1") == 2
        assert rec.query_time("ghost") == 0

    def test_decay_downweights_old_ratings(self):
        # Two rated items equally similar to the query; the recent one
        # has a high rating, the old one low. Decay pulls the
        # prediction toward the recent rating.
        table = RatingTable([
            Rating("u", "old", 1.0, 0),
            Rating("u", "new", 5.0, 100),
            Rating("v", "old", 4.0, 0), Rating("v", "new", 2.0, 1),
            Rating("v", "q", 3.0, 2),
            Rating("w", "old", 2.0, 0), Rating("w", "new", 4.0, 1),
            Rating("w", "q", 3.0, 2),
        ])
        mild = TemporalItemKNNRecommender(table, k=5, alpha=0.0)
        sharp = TemporalItemKNNRecommender(table, k=5, alpha=0.05)
        assert sharp.predict("u", "q") >= mild.predict("u", "q")


class TestSlopeOne:
    def test_deviation_antisymmetric(self, tiny_table):
        rec = SlopeOneRecommender(tiny_table)
        dev_ab, n_ab = rec.deviation("a", "b")
        dev_ba, n_ba = rec.deviation("b", "a")
        assert dev_ab == pytest.approx(-dev_ba)
        assert n_ab == n_ba

    def test_deviation_hand_computed(self, tiny_table):
        rec = SlopeOneRecommender(tiny_table)
        # co-raters of a and b: u1 (5-3=2), u2 (4-2=2) -> dev = 2
        dev, count = rec.deviation("a", "b")
        assert dev == pytest.approx(2.0)
        assert count == 2

    def test_prediction_formula(self):
        table = RatingTable([
            Rating("u1", "a", 4.0), Rating("u1", "b", 2.0),
            Rating("u2", "a", 5.0), Rating("u2", "b", 3.0),
            Rating("u3", "b", 4.0)])
        rec = SlopeOneRecommender(table)
        # dev(a, b) = 2 -> u3: b=4 -> a ≈ 4 + 2 = 5 (clipped at 5)
        assert rec.predict("u3", "a") == pytest.approx(5.0)

    def test_self_deviation_zero(self, tiny_table):
        assert SlopeOneRecommender(tiny_table).deviation("a", "a") == (0.0, 0)


class TestTopN:
    def test_recommend_excludes_rated(self, tiny_table):
        rec = ItemAverageRecommender(tiny_table)
        recommended = [item for item, _ in rec.recommend("u1", n=10)]
        assert not set(recommended) & tiny_table.user_items("u1")

    def test_recommend_sorted_desc(self, tiny_table):
        rec = ItemAverageRecommender(tiny_table)
        scores = [score for _, score in rec.recommend("u4", n=10)]
        assert scores == sorted(scores, reverse=True)

    def test_recommend_respects_n(self, small_trace):
        rec = ItemAverageRecommender(small_trace.target.ratings)
        user = sorted(small_trace.target.users)[0]
        assert len(rec.recommend(user, n=3)) == 3
