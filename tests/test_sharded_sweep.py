"""Equivalence and determinism tests for the sharded Eq-6 sweep.

The contract (see ``repro/engine/sharded_sweep.py``):

* one shard ⇒ **bit-identical** to the single-process store path
  (``MatrixRatingStore.build_adjacency``) on both backends;
* fixed shard count ⇒ bit-identical whichever executor runs the shards
  (serial in-driver vs a forked ``multiprocessing`` pool);
* any shard count ⇒ similarities agree with the store path to 1e-9
  (only the float merge order moves), while the Definition-2
  significance and co-rater counts stay **exactly** equal — they are
  integer sums, which merge associatively.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.baseliner import Baseliner
from repro.core.xsim import SignificanceCache
from repro.data.matrix import MatrixRatingStore, numpy_available
from repro.data.ratings import Rating, RatingTable
from repro.engine.sharded_sweep import (
    resolve_edge_partitions,
    resolve_n_shards,
    resolve_processes,
    shard_user_indices,
    sharded_adjacency,
)
from repro.errors import EngineError
from repro.similarity.knn import top_k
from repro.similarity.significance import bulk_significance

# -- strategies (same shape as test_matrix_store) -----------------------

_users = st.sampled_from([f"u{k}" for k in range(10)])
_items = st.sampled_from([f"i{k}" for k in range(8)])
_values = st.sampled_from([1.0, 1.5, 2.0, 3.0, 4.0, 4.5, 5.0])


@st.composite
def rating_tables(draw, min_size=4, max_size=40):
    """Random small rating tables with unique (user, item) pairs."""
    pairs = draw(st.lists(
        st.tuples(_users, _items), min_size=min_size, max_size=max_size,
        unique=True))
    ratings = [Rating(u, i, draw(_values), timestep=k)
               for k, (u, i) in enumerate(pairs)]
    return RatingTable(ratings)


_common = settings(max_examples=40, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])

_backends = [pytest.param(True, id="numpy"), pytest.param(False, id="pure-python")]


def _store(table, use_numpy):
    if use_numpy and not numpy_available():
        pytest.skip("numpy fast path unavailable")
    return MatrixRatingStore(table, use_numpy=use_numpy)


def _max_abs_diff(left: dict, right: dict) -> float:
    assert left.keys() == right.keys()
    worst = 0.0
    for item, nbrs in left.items():
        other = right[item]
        for j in set(nbrs) | set(other):
            worst = max(worst, abs(nbrs.get(j, 0.0) - other.get(j, 0.0)))
    return worst


# -- the tentpole's correctness contract --------------------------------

@pytest.mark.parametrize("use_numpy", _backends)
@_common
@given(table=rating_tables())
def test_one_shard_bit_identical_to_store_path(table, use_numpy):
    store = _store(table, use_numpy)
    result = sharded_adjacency(store, n_shards=1, with_significance=True)
    assert result.adjacency == store.build_adjacency()


@pytest.mark.parametrize("n_shards", [1, 2, 7])
@pytest.mark.parametrize("use_numpy", _backends)
@_common
@given(table=rating_tables())
def test_sharded_matches_store_path_1e9(table, use_numpy, n_shards):
    store = _store(table, use_numpy)
    result = sharded_adjacency(store, n_shards=n_shards)
    assert _max_abs_diff(result.adjacency, store.build_adjacency()) < 1e-9


@pytest.mark.parametrize("use_numpy", _backends)
@_common
@given(table=rating_tables(), min_common=st.integers(1, 3),
       min_abs=st.sampled_from([0.0, 0.2]))
def test_sharded_respects_edge_guards(table, use_numpy, min_common, min_abs):
    store = _store(table, use_numpy)
    result = sharded_adjacency(
        store, n_shards=3, min_common_users=min_common,
        min_abs_similarity=min_abs)
    reference = store.build_adjacency(
        min_common_users=min_common, min_abs_similarity=min_abs)
    assert _max_abs_diff(result.adjacency, reference) < 1e-9


@pytest.mark.parametrize("use_numpy", _backends)
@_common
@given(table=rating_tables(), max_profile=st.sampled_from([2, 3, 5]))
def test_sharded_respects_profile_cap(table, use_numpy, max_profile):
    store = _store(table, use_numpy)
    result = sharded_adjacency(store, n_shards=3, max_profile_size=max_profile)
    reference = store.build_adjacency(max_profile_size=max_profile)
    assert _max_abs_diff(result.adjacency, reference) < 1e-9


@pytest.mark.parametrize("use_numpy", _backends)
@_common
@given(table=rating_tables(), n_shards=st.integers(1, 7))
def test_significance_counts_exact_for_any_shard_count(table, use_numpy, n_shards):
    store = _store(table, use_numpy)
    result = sharded_adjacency(store, n_shards=n_shards, with_significance=True)
    for (item_i, item_j), raw in result.significance.items():
        assert item_i < item_j
        assert raw == store.significance(item_i, item_j)
    for (item_i, item_j), common in result.common_raters.items():
        assert common == store.common_raters(item_i, item_j)
    # every co-rated pair is present — exactly the nonzero-intersection
    # pairs the per-pair path would see
    items = sorted(table.items)
    for a_pos, item_i in enumerate(items):
        for item_j in items[a_pos + 1:]:
            if store.common_raters(item_i, item_j) > 0:
                assert (item_i, item_j) in result.common_raters


@pytest.mark.parametrize("use_numpy", _backends)
def test_pool_and_serial_executors_bit_identical(use_numpy):
    # One fixed mid-sized table (a fork pool per hypothesis example
    # would dominate the suite's runtime).
    import random

    rng = random.Random(99)
    seen = set()
    ratings = []
    while len(ratings) < 1200:
        pair = (f"u{rng.randrange(90)}", f"i{rng.randrange(70)}")
        if pair in seen:
            continue
        seen.add(pair)
        ratings.append(Rating(pair[0], pair[1], float(rng.randint(1, 5)), len(ratings)))
    store = _store(RatingTable(ratings), use_numpy)
    serial = sharded_adjacency(store, n_shards=5, processes=0, with_significance=True)
    pooled = sharded_adjacency(store, n_shards=5, processes=3, with_significance=True)
    assert serial.adjacency == pooled.adjacency
    assert serial.significance == pooled.significance
    assert serial.common_raters == pooled.common_raters
    assert pooled.stats.processes in (0, 3)  # 0 only if fork unavailable


# -- the partitioned assembly back half ---------------------------------

@pytest.mark.parametrize("n_partitions", [1, 2, 7])
@pytest.mark.parametrize("use_numpy", _backends)
@_common
@given(table=rating_tables())
def test_partitioned_assembly_matches_driver_path(table, use_numpy, n_partitions):
    """Item-partitioned merge + assembly vs the single driver pass.

    Splitting pairs by left item never reorders any per-pair addition,
    so the adjacency and the significance counts are bit-identical to
    the one-partition pass at any partition count — and both stay
    within the 1e-9 contract of the unsharded store path.
    """
    store = _store(table, use_numpy)
    partitioned = sharded_adjacency(
        store, n_shards=3, n_edge_partitions=n_partitions,
        with_significance=True)
    driver = sharded_adjacency(
        store, n_shards=3, n_edge_partitions=1, with_significance=True)
    assert partitioned.adjacency == driver.adjacency
    assert partitioned.significance == driver.significance
    assert partitioned.common_raters == driver.common_raters
    assert _max_abs_diff(partitioned.adjacency, store.build_adjacency()) < 1e-9
    assert partitioned.stats.n_edge_partitions == n_partitions
    assert len(partitioned.stats.partition_pairs) == n_partitions
    assert sum(partitioned.stats.partition_pairs) == \
        driver.stats.report.records_out


@pytest.mark.parametrize("use_numpy", _backends)
@_common
@given(table=rating_tables())
def test_one_shard_one_partition_bit_identical(table, use_numpy):
    store = _store(table, use_numpy)
    result = sharded_adjacency(store, n_shards=1, n_edge_partitions=1)
    assert result.adjacency == store.build_adjacency()


@pytest.mark.parametrize("n_partitions", [1, 3])
@pytest.mark.parametrize("use_numpy", _backends)
@_common
@given(table=rating_tables())
def test_index_selected_during_assembly(table, use_numpy, n_partitions):
    """The NeighborIndex rows assembled per partition are exactly the
    top-k ranking of the adjacency rows, at every partition count."""
    store = _store(table, use_numpy)
    result = sharded_adjacency(
        store, n_shards=2, n_edge_partitions=n_partitions, with_index=True)
    assert result.index is not None
    for item, neighbors in result.adjacency.items():
        width = len(neighbors) + 1
        assert result.index.top(item, width) == top_k(neighbors, width)
        assert result.index.neighbor_dict(item) == neighbors


@pytest.mark.parametrize("use_numpy", _backends)
@_common
@given(table=rating_tables(), index_k=st.sampled_from([1, 2, 5]))
def test_index_truncation_during_assembly(table, use_numpy, index_k):
    store = _store(table, use_numpy)
    result = sharded_adjacency(
        store, n_shards=2, n_edge_partitions=3, with_index=True,
        index_k=index_k)
    for item, neighbors in result.adjacency.items():
        assert result.index.top(item, index_k) == top_k(neighbors, index_k)


def test_index_not_built_unless_requested(tiny_table):
    assert sharded_adjacency(tiny_table, n_shards=2).index is None


def test_excess_processes_warn(tiny_table):
    store = tiny_table.matrix()
    with pytest.warns(RuntimeWarning, match="exceeds n_shards"):
        sharded_adjacency(store, n_shards=2, processes=4)


def test_matched_processes_do_not_warn(tiny_table, recwarn):
    sharded_adjacency(tiny_table.matrix(), n_shards=2, processes=2)
    assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]


# -- layout, stats and guards -------------------------------------------

class TestShardLayout:
    def test_layout_is_a_partition(self, tiny_table):
        store = tiny_table.matrix()
        shards = shard_user_indices(store, 3)
        flat = sorted(index for shard in shards for index in shard)
        assert flat == list(range(store.n_users))
        for shard in shards:
            assert shard == sorted(shard)

    def test_layout_is_backend_independent(self, tiny_table):
        if not numpy_available():
            pytest.skip("numpy fast path unavailable")
        fast = MatrixRatingStore(tiny_table, use_numpy=True)
        slow = MatrixRatingStore(tiny_table, use_numpy=False)
        assert shard_user_indices(fast, 4) == shard_user_indices(slow, 4)

    def test_stats_cover_all_shards(self, tiny_table):
        result = sharded_adjacency(tiny_table.matrix(), n_shards=3)
        stats = result.stats
        assert stats.n_shards == 3
        assert len(stats.shard_users) == 3
        assert sum(stats.shard_users) == tiny_table.matrix().n_users
        assert len(stats.durations) == 3
        assert stats.report.n_tasks == 3
        assert stats.report.makespan >= max(stats.durations)

    def test_empty_table(self):
        result = sharded_adjacency(RatingTable().matrix(), n_shards=4,
                                   with_significance=True)
        assert result.adjacency == {}
        assert result.significance == {}

    def test_more_shards_than_users(self, tiny_table):
        store = tiny_table.matrix()
        result = sharded_adjacency(store, n_shards=64)
        assert _max_abs_diff(result.adjacency, store.build_adjacency()) < 1e-9

    def test_rating_table_accepted_directly(self, tiny_table):
        by_table = sharded_adjacency(tiny_table, n_shards=2)
        by_store = sharded_adjacency(tiny_table.matrix(), n_shards=2)
        assert by_table.adjacency == by_store.adjacency

    def test_profile_cap_incompatible_with_significance(self, tiny_table):
        with pytest.raises(EngineError, match="max_profile_size"):
            sharded_adjacency(tiny_table.matrix(), n_shards=2,
                              max_profile_size=3, with_significance=True)


class TestEnvResolution:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        monkeypatch.delenv("REPRO_SHARD_PROCS", raising=False)
        assert resolve_n_shards(None) == 1
        assert resolve_processes(None) == 0

    def test_env_read_when_unspecified(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "6")
        monkeypatch.setenv("REPRO_SHARD_PROCS", "2")
        assert resolve_n_shards(None) == 6
        assert resolve_processes(None) == 2

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "6")
        assert resolve_n_shards(3) == 3

    def test_invalid_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "many")
        with pytest.raises(EngineError):
            resolve_n_shards(None)
        with pytest.raises(EngineError):
            resolve_n_shards(0)
        with pytest.raises(EngineError):
            resolve_processes(-1)

    def test_edge_partitions_follow_shard_count_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EDGE_PARTITIONS", raising=False)
        assert resolve_edge_partitions(None, n_shards=1) == 1
        assert resolve_edge_partitions(None, n_shards=6) == 6

    def test_edge_partitions_env_and_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_EDGE_PARTITIONS", "3")
        assert resolve_edge_partitions(None, n_shards=6) == 3
        assert resolve_edge_partitions(5, n_shards=6) == 5
        with pytest.raises(EngineError):
            resolve_edge_partitions(0)
        monkeypatch.setenv("REPRO_EDGE_PARTITIONS", "few")
        with pytest.raises(EngineError):
            resolve_edge_partitions(None)


# -- pipeline integration -----------------------------------------------

class TestBaselinerIntegration:
    def test_env_shards_produce_equivalent_baseline(self, small_trace, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        reference = Baseliner().compute(small_trace)
        monkeypatch.setenv("REPRO_SHARDS", "4")
        sharded = Baseliner().compute(small_trace)
        assert sharded.n_homogeneous == reference.n_homogeneous
        assert sharded.n_heterogeneous == reference.n_heterogeneous
        assert sharded.significance is not None
        assert reference.significance is None
        edges_ref = {(i, j): s for i, j, s in reference.graph.edges()}
        edges_sharded = {(i, j): s for i, j, s in sharded.graph.edges()}
        assert edges_ref.keys() == edges_sharded.keys()
        for key, sim in edges_ref.items():
            assert edges_sharded[key] == pytest.approx(sim, abs=1e-9)

    def test_preloaded_cache_matches_lazy_lookups(self, small_trace):
        merged = small_trace.merged()
        baseline = Baseliner(n_shards=3).compute(small_trace, merged=merged)
        preloaded = SignificanceCache(merged, preload=baseline.significance)
        lazy = SignificanceCache(merged)
        for item_i, item_j, _ in baseline.graph.edges():
            assert preloaded.significance(item_i, item_j) == \
                lazy.significance(item_i, item_j)
            assert preloaded.normalized(item_i, item_j) == \
                lazy.normalized(item_i, item_j)

    def test_preloaded_cache_pure_python_backend(self, small_trace, monkeypatch):
        """The sharded-significance → SignificanceCache preload path on
        the pure-Python store backend (tier-1 only exercised it on
        NumPy before): preloaded and lazy lookups must stay
        bit-identical there too."""
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        # data.merged() derives a fresh table per call, so its memoized
        # store is built under the patched backend selection.
        merged = small_trace.merged()
        assert not merged.matrix().uses_numpy
        baseline = Baseliner(n_shards=3).compute(small_trace, merged=merged)
        assert baseline.significance is not None
        preloaded = SignificanceCache(merged, preload=baseline.significance)
        lazy = SignificanceCache(merged)
        for item_i, item_j, _ in baseline.graph.edges():
            assert preloaded.significance(item_i, item_j) == \
                lazy.significance(item_i, item_j)
            assert preloaded.normalized(item_i, item_j) == \
                lazy.normalized(item_i, item_j)

    def test_bulk_significance_helper(self, tiny_table):
        store = tiny_table.matrix()
        table = bulk_significance(tiny_table, n_shards=2)
        assert table.raw  # tiny_table has co-rated pairs
        for (item_i, item_j), raw in table.raw.items():
            assert raw == store.significance(item_i, item_j)
            assert table.common[(item_i, item_j)] == \
                store.common_raters(item_i, item_j)
