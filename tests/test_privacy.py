"""Unit tests for the differential-privacy substrate (repro.privacy)."""

import math

import numpy as np
import pytest

from repro.data.ratings import Rating, RatingTable
from repro.errors import PrivacyError
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.attack import optimal_replacements, reidentification_rate
from repro.privacy.mechanisms import (
    exponential_mechanism,
    exponential_sample_without_replacement,
    laplace_noise,
)
from repro.privacy.pnsa import PNSAConfig, private_neighbor_selection, truncation_width
from repro.privacy.prs import private_replacement
from repro.privacy.sensitivity import (
    XSIM_GLOBAL_SENSITIVITY,
    item_similarity_sensitivity,
    user_similarity_sensitivity,
)


class TestLaplace:
    def test_zero_sensitivity_zero_noise(self):
        rng = np.random.default_rng(0)
        assert laplace_noise(0.0, 1.0, rng) == 0.0

    def test_scale_grows_with_sensitivity(self):
        rng = np.random.default_rng(0)
        small = [abs(laplace_noise(0.1, 1.0, rng)) for _ in range(500)]
        rng = np.random.default_rng(0)
        large = [abs(laplace_noise(10.0, 1.0, rng)) for _ in range(500)]
        assert np.mean(large) > np.mean(small)

    def test_invalid_epsilon(self):
        rng = np.random.default_rng(0)
        with pytest.raises(PrivacyError):
            laplace_noise(1.0, 0.0, rng)
        with pytest.raises(PrivacyError):
            laplace_noise(1.0, -1.0, rng)

    def test_negative_sensitivity(self):
        rng = np.random.default_rng(0)
        with pytest.raises(PrivacyError):
            laplace_noise(-1.0, 1.0, rng)


class TestExponentialMechanism:
    def test_prefers_high_scores(self):
        rng = np.random.default_rng(1)
        scores = {"good": 1.0, "bad": -1.0}
        picks = [exponential_mechanism(scores, 8.0, 2.0, rng) for _ in range(300)]
        assert picks.count("good") > 250

    def test_empty_candidates(self):
        with pytest.raises(PrivacyError):
            exponential_mechanism({}, 1.0, 2.0, np.random.default_rng(0))

    def test_nonpositive_sensitivity(self):
        with pytest.raises(PrivacyError):
            exponential_mechanism({"a": 1.0}, 1.0, 0.0, np.random.default_rng(0))

    def test_dp_likelihood_ratio_bound(self):
        """Empirical ε-DP check: for two score sets differing by the
        global sensitivity on one candidate, outcome probabilities
        differ by at most exp(ε) (with sampling slack)."""
        rng = np.random.default_rng(2)
        epsilon = 1.0
        scores_1 = {"a": 0.5, "b": 0.0, "c": -0.5}
        scores_2 = {"a": 0.5 - 2.0, "b": 0.0, "c": -0.5}  # GS = 2 shift
        n = 30_000
        count_1 = sum(exponential_mechanism(scores_1, epsilon, 2.0, rng) == "a"
                      for _ in range(n)) / n
        count_2 = sum(exponential_mechanism(scores_2, epsilon, 2.0, rng) == "a"
                      for _ in range(n)) / n
        assert count_2 > 0
        # exponential mechanism guarantees ratio <= exp(eps); allow slack.
        assert count_1 / count_2 <= math.exp(epsilon) * 1.15

    def test_per_candidate_sensitivities(self):
        rng = np.random.default_rng(3)
        pick = exponential_mechanism(
            {"a": 1.0, "b": 0.0}, 1.0, {"a": 0.5, "b": 0.5}, rng)
        assert pick in {"a", "b"}

    def test_sampling_without_replacement(self):
        rng = np.random.default_rng(4)
        chosen = exponential_sample_without_replacement(
            {"a": 1.0, "b": 0.5, "c": 0.1}, rounds=2,
            epsilon_per_round=1.0, sensitivity=2.0, rng=rng)
        assert len(chosen) == 2
        assert len(set(chosen)) == 2

    def test_rounds_exceeding_candidates(self):
        rng = np.random.default_rng(5)
        chosen = exponential_sample_without_replacement(
            {"a": 1.0}, rounds=5, epsilon_per_round=1.0,
            sensitivity=2.0, rng=rng)
        assert chosen == ["a"]


class TestPRS:
    def test_requires_candidates(self):
        with pytest.raises(PrivacyError):
            private_replacement({}, 0.5, np.random.default_rng(0))

    def test_high_epsilon_approaches_argmax(self):
        rng = np.random.default_rng(6)
        candidates = {"best": 1.0, "worst": -1.0}
        picks = [private_replacement(candidates, 50.0, rng) for _ in range(100)]
        assert picks.count("best") >= 99

    def test_low_epsilon_approaches_uniform(self):
        rng = np.random.default_rng(7)
        candidates = {"best": 1.0, "worst": -1.0}
        picks = [private_replacement(candidates, 0.01, rng) for _ in range(2000)]
        fraction = picks.count("best") / len(picks)
        assert 0.45 < fraction < 0.55

    def test_global_sensitivity_constant(self):
        assert XSIM_GLOBAL_SENSITIVITY == 2.0


class TestSensitivity:
    def test_always_positive_finite(self, small_trace):
        table = small_trace.target.ratings
        items = sorted(table.items)[:12]
        for i in items:
            for j in items:
                if i < j:
                    value = item_similarity_sensitivity(table, i, j)
                    assert 0.0 < value <= 2.0
                    assert math.isfinite(value)

    def test_no_corater_is_global_worst_case(self):
        table = RatingTable([
            Rating("u1", "a", 5.0), Rating("u1", "x", 1.0),
            Rating("u2", "b", 4.0), Rating("u2", "y", 2.0)])
        assert item_similarity_sensitivity(table, "a", "b") == 2.0

    def test_more_raters_lower_sensitivity(self):
        def table_with(n):
            ratings = []
            for k in range(n):
                ratings.append(Rating(f"u{k}", "a", 4.0 + (k % 2)))
                ratings.append(Rating(f"u{k}", "b", 3.0 + (k % 2)))
                ratings.append(Rating(f"u{k}", "c", 1.0 + (k % 3)))
            return RatingTable(ratings)
        thin = item_similarity_sensitivity(table_with(3), "a", "b")
        thick = item_similarity_sensitivity(table_with(30), "a", "b")
        assert thick < thin

    def test_user_variant_positive(self, small_trace):
        table = small_trace.target.ratings
        users = sorted(table.users)[:8]
        for a in users:
            for b in users:
                if a < b:
                    value = user_similarity_sensitivity(table, a, b)
                    assert 0.0 < value <= 2.0


class TestPNSA:
    def test_config_validation(self):
        with pytest.raises(PrivacyError):
            PNSAConfig(k=0, epsilon=1.0).validated()
        with pytest.raises(PrivacyError):
            PNSAConfig(k=5, epsilon=-1.0).validated()
        with pytest.raises(PrivacyError):
            PNSAConfig(k=5, epsilon=1.0, rho=1.5).validated()

    def test_small_candidate_set_returned_whole(self):
        config = PNSAConfig(k=10, epsilon=1.0)
        chosen = private_neighbor_selection(
            {"a": 0.9, "b": 0.1}, {"a": 0.5, "b": 0.5},
            config, np.random.default_rng(0))
        assert chosen == ["a", "b"]

    def test_returns_k_distinct(self):
        similarities = {f"i{n}": n / 20 for n in range(20)}
        sensitivities = {key: 0.2 for key in similarities}
        config = PNSAConfig(k=5, epsilon=1.0)
        chosen = private_neighbor_selection(
            similarities, sensitivities, config, np.random.default_rng(1))
        assert len(chosen) == 5
        assert len(set(chosen)) == 5

    def test_missing_sensitivity_rejected(self):
        config = PNSAConfig(k=1, epsilon=1.0)
        with pytest.raises(PrivacyError, match="sensitivities"):
            private_neighbor_selection(
                {"a": 0.5, "b": 0.1}, {"a": 0.5}, config,
                np.random.default_rng(0))

    def test_truncation_width_nonnegative_and_capped(self):
        config = PNSAConfig(k=5, epsilon=0.5)
        width = truncation_width(config, sim_k=0.4,
                                 max_sensitivity=0.3, n_candidates=50)
        assert 0.0 <= width <= 0.4

    def test_high_epsilon_recovers_topk_mostly(self):
        similarities = {f"i{n}": n / 20 for n in range(20)}
        sensitivities = {key: 0.05 for key in similarities}
        config = PNSAConfig(k=3, epsilon=200.0)
        chosen = private_neighbor_selection(
            similarities, sensitivities, config, np.random.default_rng(2))
        assert set(chosen) == {"i19", "i18", "i17"}

    def test_empty_candidates(self):
        config = PNSAConfig(k=3, epsilon=1.0)
        assert private_neighbor_selection(
            {}, {}, config, np.random.default_rng(0)) == []


class TestAccountant:
    def test_records_and_totals(self):
        accountant = PrivacyAccountant()
        accountant.spend("prs", 0.3)
        accountant.spend("pnsa", 0.4)
        assert accountant.total == pytest.approx(0.7)
        assert accountant.entries == (("prs", 0.3), ("pnsa", 0.4))
        assert accountant.remaining() is None

    def test_budget_enforced(self):
        accountant = PrivacyAccountant(budget=0.5)
        accountant.spend("a", 0.4)
        with pytest.raises(PrivacyError, match="exceeds budget"):
            accountant.spend("b", 0.2)
        assert accountant.remaining() == pytest.approx(0.1)

    def test_nonpositive_spend_rejected(self):
        with pytest.raises(PrivacyError):
            PrivacyAccountant().spend("x", 0.0)

    def test_describe_mentions_total(self):
        accountant = PrivacyAccountant(budget=2.0)
        accountant.spend("prs", 0.3)
        assert "0.3" in accountant.describe()


class TestAttack:
    def test_optimal_replacements_argmax(self):
        xsim_map = {"s1": {"a": 0.9, "b": 0.1}, "s2": {}}
        assert optimal_replacements(xsim_map) == {"s1": "a"}

    def test_reidentification_monotone_in_epsilon(self):
        xsim_map = {
            f"s{k}": {f"t{j}": (0.9 if j == k else 0.1) for j in range(6)}
            for k in range(6)}
        rng = np.random.default_rng(0)
        weak = reidentification_rate(xsim_map, 0.05, trials=30, rng=rng)
        rng = np.random.default_rng(0)
        strong = reidentification_rate(xsim_map, 60.0, trials=30, rng=rng)
        assert weak < strong
        assert strong > 0.9

    def test_empty_map_rejected(self):
        with pytest.raises(PrivacyError):
            reidentification_rate({}, 1.0, 10, np.random.default_rng(0))
