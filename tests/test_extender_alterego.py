"""Unit tests for the Baseliner, Extender and AlterEgo generator."""

import pytest

from repro.core.alterego import AlterEgoGenerator, ReplacementPolicy
from repro.core.baseliner import Baseliner
from repro.core.extender import (
    Extender,
    ExtenderConfig,
    count_heterogeneous_pairs,
)
from repro.core.layers import LayerPartition
from repro.data.ratings import Rating, RatingTable
from repro.errors import ConfigError
from repro.privacy.accountant import PrivacyAccountant


@pytest.fixture(scope="module")
def fitted(small_trace):
    baseline = Baseliner().compute(small_trace)
    partition = LayerPartition.from_graph(baseline.graph, small_trace.domain_map())
    xsim_map = Extender(ExtenderConfig(k=8)).extend(
        baseline.graph, partition, small_trace.merged(),
        source_domain=small_trace.source.name)
    return baseline, partition, xsim_map


class TestBaseliner:
    def test_edge_census_adds_up(self, fitted):
        baseline, _, _ = fitted
        assert baseline.n_edges == baseline.graph.n_edges()
        assert baseline.n_heterogeneous > 0
        assert baseline.n_homogeneous > 0

    def test_heterogeneous_edges_cross_domains(self, small_trace, fitted):
        baseline, _, _ = fitted
        domain_of = small_trace.domain_map()
        crossing = sum(
            1 for i, j, _ in baseline.graph.edges()
            if domain_of[i] != domain_of[j])
        assert crossing == baseline.n_heterogeneous


class TestExtender:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ExtenderConfig(k=0).validated()
        with pytest.raises(ConfigError):
            ExtenderConfig(max_paths_per_item=0).validated()

    def test_xsim_map_targets_only_target_domain(self, small_trace, fitted):
        _, _, xsim_map = fitted
        for source_item, targets in xsim_map.items():
            assert source_item in small_trace.source.items
            assert set(targets) <= small_trace.target.items

    def test_values_bounded(self, fitted):
        _, _, xsim_map = fitted
        for targets in xsim_map.values():
            for value in targets.values():
                assert -1.0 <= value <= 1.0

    def test_meta_paths_beat_standard_count(self, fitted):
        baseline, _, xsim_map = fitted
        # The Figure 1(b) shape: meta-path similarities outnumber the
        # direct heterogeneous edges.
        assert count_heterogeneous_pairs(xsim_map) > baseline.n_heterogeneous

    def test_ablation_flags_change_values(self, small_trace, fitted):
        baseline, partition, reference = fitted
        flat = Extender(ExtenderConfig(k=8, weight_by_certainty=False)).extend(
            baseline.graph, partition, small_trace.merged(),
            source_domain=small_trace.source.name)
        # Same connectivity, different (or equal) aggregated values —
        # the flag must not change which pairs are reachable beyond the
        # zero-significance paths that the full variant drops.
        assert set(flat) >= set(reference)
        diffs = sum(
            1 for item in reference for target in reference[item]
            if target in flat.get(item, {})
            and abs(flat[item][target] - reference[item][target]) > 1e-12)
        assert diffs > 0

    def test_plain_mean_variant_bounded(self, small_trace, fitted):
        baseline, partition, _ = fitted
        plain = Extender(ExtenderConfig(k=8, weight_by_significance=False)).extend(
            baseline.graph, partition, small_trace.merged(),
            source_domain=small_trace.source.name)
        for targets in plain.values():
            for value in targets.values():
                assert -1.0 <= value <= 1.0

    def test_figure_1a_headline(self, scenario):
        baseline = Baseliner().compute(scenario)
        partition = LayerPartition.from_graph(baseline.graph, scenario.domain_map())
        xsim_map = Extender(ExtenderConfig(k=3)).extend(
            baseline.graph, partition, scenario.merged(),
            source_domain="movies")
        # The paper's motivating claim: X-Sim connects Interstellar to
        # The Forever War with a positive similarity.
        assert xsim_map["interstellar"]["forever-war"] > 0.0


class TestAlterEgoGenerator:
    def test_non_private_is_argmax(self):
        xsim_map = {"s1": {"t1": 0.2, "t2": 0.9}, "s2": {}}
        generator = AlterEgoGenerator(xsim_map)
        assert generator.replacement_for("s1") == "t2"
        assert generator.replacement_for("s2") is None
        assert generator.replacement_for("unknown") is None

    def test_argmax_tie_breaks_lexicographically(self):
        generator = AlterEgoGenerator({"s": {"tb": 0.5, "ta": 0.5}})
        assert generator.replacement_for("s") == "ta"

    def test_epsilon_required_for_private(self):
        with pytest.raises(ConfigError):
            AlterEgoGenerator({}, policy=ReplacementPolicy.PRIVATE)

    def test_epsilon_rejected_for_non_private(self):
        with pytest.raises(ConfigError):
            AlterEgoGenerator({}, epsilon=0.5)

    def test_private_replacement_memoised(self):
        xsim_map = {"s": {"t1": 0.5, "t2": 0.5, "t3": 0.5}}
        generator = AlterEgoGenerator(
            xsim_map, policy=ReplacementPolicy.PRIVATE, epsilon=0.1, seed=1)
        first = generator.replacement_for("s")
        assert all(generator.replacement_for("s") == first for _ in range(5))

    def test_private_spends_budget_once(self):
        accountant = PrivacyAccountant()
        AlterEgoGenerator(
            {"s": {"t": 1.0}}, policy=ReplacementPolicy.PRIVATE,
            epsilon=0.3, accountant=accountant)
        assert accountant.total == pytest.approx(0.3)

    def test_profile_merges_collisions(self):
        xsim_map = {"s1": {"t": 1.0}, "s2": {"t": 1.0}}
        generator = AlterEgoGenerator(xsim_map)
        profile = {"s1": Rating("u", "s1", 5.0, 10), "s2": Rating("u", "s2", 3.0, 20)}
        alterego = generator.alterego_profile("u", profile)
        assert len(alterego) == 1
        assert alterego[0].value == pytest.approx(4.0)
        assert alterego[0].timestep == 20

    def test_profile_preserves_value_and_timestep(self):
        generator = AlterEgoGenerator({"s1": {"t9": 1.0}})
        alterego = generator.alterego_profile("u", {"s1": Rating("u", "s1", 2.0, 7)})
        assert alterego == [Rating("u", "t9", 2.0, 7)]

    def test_table_respects_existing_target_ratings(self):
        generator = AlterEgoGenerator({"s1": {"t1": 1.0}})
        source = RatingTable([Rating("u", "s1", 5.0, 0)])
        target = RatingTable([Rating("u", "t1", 2.0, 0)])
        augmented = generator.alterego_table(["u"], source, target)
        # Footnote 6: the real rating wins.
        assert augmented.value("u", "t1") == 2.0

    def test_table_adds_alterego_for_cold_user(self):
        generator = AlterEgoGenerator({"s1": {"t1": 1.0}})
        source = RatingTable([Rating("u", "s1", 5.0, 0)])
        target = RatingTable([Rating("other", "t1", 3.0, 0)])
        augmented = generator.alterego_table(["u"], source, target)
        assert augmented.value("u", "t1") == 5.0

    def test_item_mapping_full(self, fitted):
        _, _, xsim_map = fitted
        generator = AlterEgoGenerator(xsim_map)
        mapping = generator.item_mapping()
        assert set(mapping) == {s for s, t in xsim_map.items() if t}
        for source_item, target_item in mapping.items():
            assert target_item in xsim_map[source_item]
