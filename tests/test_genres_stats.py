"""Unit tests for genre partitioning and dataset statistics."""

import pytest

from repro.data.genres import genre_movie_counts, partition_by_genre
from repro.data.ratings import Rating, RatingTable
from repro.data.dataset import Dataset
from repro.data.stats import summarize, summarize_cross_domain
from repro.data.synthetic import movielens_like
from repro.errors import DataError


@pytest.fixture(scope="module")
def ml():
    return movielens_like(n_users=80, n_items=70, seed=3)


class TestGenrePartition:
    def test_requires_genres(self):
        plain = Dataset("d", RatingTable([Rating("u", "i", 3.0)]))
        with pytest.raises(DataError, match="genre"):
            partition_by_genre(plain)

    def test_items_split_disjoint_and_complete(self, ml):
        partition = partition_by_genre(ml)
        assert not (partition.d1.items & partition.d2.items)
        assert partition.d1.items | partition.d2.items == ml.items

    def test_genres_alternate_by_count(self, ml):
        partition = partition_by_genre(ml)
        counts = genre_movie_counts(ml)
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        d1_names = {g for g, _ in partition.d1_genres}
        d2_names = {g for g, _ in partition.d2_genres}
        for idx, (genre, _) in enumerate(ordered):
            assert genre in (d1_names if idx % 2 == 0 else d2_names)

    def test_majority_assignment(self, ml):
        partition = partition_by_genre(ml)
        d1_genres = {g for g, _ in partition.d1_genres}
        d2_genres = {g for g, _ in partition.d2_genres}
        for item in ml.items:
            genres = set(ml.item_genres[item])
            in_d1 = len(genres & d1_genres)
            in_d2 = len(genres & d2_genres)
            if in_d1 > in_d2:
                assert item in partition.d1.items
            elif in_d2 > in_d1:
                assert item in partition.d2.items

    def test_as_cross_domain(self, ml):
        data = partition_by_genre(ml).as_cross_domain()
        assert data.source.name == "d1"
        assert data.overlap_users  # users rate across genre sub-domains

    def test_table_rows_padded(self, ml):
        rows = partition_by_genre(ml).table_rows()
        assert all(len(row) == 4 for row in rows)

    def test_deterministic(self, ml):
        first = partition_by_genre(ml)
        second = partition_by_genre(ml)
        assert first.d1.items == second.d1.items


class TestStats:
    def test_summarize(self, tiny_table):
        stats = summarize(tiny_table)
        assert stats.n_users == 4
        assert stats.n_items == 4
        assert stats.n_ratings == 10
        assert stats.density == pytest.approx(10 / 16)
        assert stats.mean_rating == pytest.approx(3.4)
        assert "10 ratings" in stats.describe()

    def test_empty_table(self):
        stats = summarize(RatingTable())
        assert stats.n_ratings == 0
        assert stats.density == 0.0

    def test_cross_domain_summary(self, scenario):
        stats = summarize_cross_domain(scenario)
        assert stats.n_overlap_users == 1
        assert "overlapping users: 1" in stats.describe()
