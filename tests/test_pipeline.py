"""Unit tests for the NX-Map / X-Map pipeline facades (repro.core.pipeline)."""

import pytest

from repro.core.pipeline import NXMapRecommender, XMapConfig, XMapRecommender
from repro.errors import ConfigError, ReproError


class TestConfig:
    def test_defaults_valid(self):
        XMapConfig().validated()

    def test_bad_mode(self):
        with pytest.raises(ConfigError, match="mode"):
            XMapConfig(mode="hybrid").validated()

    def test_alpha_requires_item_mode(self):
        with pytest.raises(ConfigError, match="item-based"):
            XMapConfig(mode="user", alpha=0.1).validated()

    def test_bad_cf_k(self):
        with pytest.raises(ConfigError):
            XMapConfig(cf_k=0).validated()

    def test_bad_edge_partitions(self):
        with pytest.raises(ConfigError, match="n_edge_partitions"):
            XMapConfig(n_edge_partitions=0).validated()
        XMapConfig(n_edge_partitions=4).validated()

    def test_with_overrides(self):
        config = XMapConfig().with_overrides(cf_k=10, mode="user")
        assert config.cf_k == 10
        assert config.mode == "user"
        with pytest.raises(ConfigError):
            XMapConfig().with_overrides(cf_k=-1)


class TestNXMapPipeline:
    @pytest.fixture(scope="class")
    def fitted(self, small_split):
        config = XMapConfig(prune_k=8, cf_k=20)
        return NXMapRecommender(config).fit(
            small_split.train, users=small_split.test_users)

    def test_unfitted_raises(self):
        rec = NXMapRecommender(XMapConfig())
        with pytest.raises(ReproError, match="not fitted"):
            rec.predict("u", "i")
        with pytest.raises(ReproError):
            rec.item_mapping()

    def test_variant_names(self):
        assert NXMapRecommender(XMapConfig(mode="item")).variant_name == "NX-Map-ib"
        assert NXMapRecommender(XMapConfig(mode="user")).variant_name == "NX-Map-ub"
        assert XMapRecommender(XMapConfig(mode="user")).variant_name == "X-Map-ub"

    def test_predicts_in_scale(self, fitted, small_split):
        for user, item, _ in small_split.hidden_pairs()[:30]:
            assert 1.0 <= fitted.predict(user, item) <= 5.0

    def test_recommends_target_items_only(self, fitted, small_split):
        user = small_split.test_users[0]
        recommended = fitted.recommend(user, n=5)
        target_items = small_split.train.target.items
        assert all(item in target_items for item, _ in recommended)

    def test_cold_start_user_gets_recommendations(self, fitted, small_split):
        user = small_split.test_users[0]
        assert not small_split.train.target.ratings.user_items(user)
        assert len(fitted.recommend(user, n=5)) == 5

    def test_item_mapping_targets_target_domain(self, fitted, small_split):
        mapping = fitted.item_mapping()
        assert mapping
        target_items = small_split.train.target.items
        assert all(t in target_items for t in mapping.values())

    def test_exposes_pipeline_artifacts(self, fitted):
        assert fitted.baseline is not None
        assert fitted.partition is not None
        assert fitted.xsim_map
        assert fitted.augmented_target is not None

    def test_alterego_in_augmented_table(self, fitted, small_split):
        user = small_split.test_users[0]
        assert fitted.augmented_target.user_items(user)


class TestXMapPipeline:
    @pytest.fixture(scope="class")
    def fitted(self, small_split):
        config = XMapConfig(prune_k=8, cf_k=20, epsilon=0.3, epsilon_prime=0.8, seed=5)
        return XMapRecommender(config).fit(
            small_split.train, users=small_split.test_users)

    def test_accountant_ledger(self, fitted):
        labels = [label for label, _ in fitted.accountant.entries]
        assert any("PRS" in label for label in labels)
        assert any("PNSA" in label for label in labels)
        assert any("PNCF" in label for label in labels)
        # ε + ε′ in total
        assert fitted.accountant.total == pytest.approx(0.3 + 0.8)

    def test_predicts_in_scale(self, fitted, small_split):
        for user, item, _ in small_split.hidden_pairs()[:20]:
            assert 1.0 <= fitted.predict(user, item) <= 5.0

    def test_seed_reproducibility(self, small_split):
        config = XMapConfig(prune_k=8, cf_k=10, seed=9)
        user, item, _ = small_split.hidden_pairs()[0]
        first = XMapRecommender(config).fit(
            small_split.train, users=small_split.test_users).predict(user, item)
        second = XMapRecommender(config).fit(
            small_split.train, users=small_split.test_users).predict(user, item)
        assert first == pytest.approx(second)

    def test_user_mode(self, small_split):
        config = XMapConfig(prune_k=8, cf_k=10, mode="user", seed=1)
        fitted = XMapRecommender(config).fit(
            small_split.train, users=small_split.test_users)
        user, item, _ = small_split.hidden_pairs()[0]
        assert 1.0 <= fitted.predict(user, item) <= 5.0

    def test_mf_mode_rejected_for_private(self, small_split):
        config = XMapConfig(prune_k=8, mode="mf", seed=1)
        with pytest.raises(ConfigError, match="non-private"):
            XMapRecommender(config).fit(small_split.train, users=small_split.test_users)


class TestMFMode:
    def test_nxmap_mf_predicts_in_scale(self, small_split):
        config = XMapConfig(prune_k=8, mode="mf", seed=1)
        fitted = NXMapRecommender(config).fit(
            small_split.train, users=small_split.test_users)
        assert fitted.variant_name == "NX-Map-mf"
        for user, item, _ in small_split.hidden_pairs()[:10]:
            assert 1.0 <= fitted.predict(user, item) <= 5.0
