"""Equivalence tests for the interned MatrixRatingStore fast paths.

The store-backed similarity layer must be a drop-in replacement for the
original object-graph implementations: same string-keyed signatures, same
values (to 1e-9), same guard semantics. These tests pit the fast paths
against the retained ``*_reference`` oracles on random tables — including
the ``min_common_users`` / ``max_profile_size`` guards — and check that
the NumPy and pure-Python backends produce *identical* graphs.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.matrix import MatrixRatingStore, numpy_available
from repro.data.ratings import Rating, RatingTable
from repro.errors import SimilarityError
from repro.similarity.adjusted_cosine import (
    adjusted_cosine,
    all_pairs_adjusted_cosine,
    all_pairs_adjusted_cosine_reference,
)
from repro.similarity.cosine import cosine
from repro.similarity.pearson import pearson_items, pearson_users
from repro.similarity.significance import (
    normalized_significance,
    significance,
    significance_reference,
)

# -- strategies ---------------------------------------------------------

_users = st.sampled_from([f"u{k}" for k in range(8)])
_items = st.sampled_from([f"i{k}" for k in range(8)])
_values = st.sampled_from([1.0, 1.5, 2.0, 3.0, 4.0, 4.5, 5.0])


@st.composite
def rating_tables(draw, min_size=4, max_size=40):
    """Random small rating tables with unique (user, item) pairs."""
    pairs = draw(st.lists(
        st.tuples(_users, _items), min_size=min_size, max_size=max_size,
        unique=True))
    ratings = [Rating(u, i, draw(_values), timestep=k)
               for k, (u, i) in enumerate(pairs)]
    return RatingTable(ratings)


_common = settings(max_examples=60, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def _as_pair_dict(triples):
    result = {}
    for item_i, item_j, sim in triples:
        key = (item_i, item_j) if item_i < item_j else (item_j, item_i)
        assert key not in result, f"pair {key} yielded twice"
        result[key] = sim
    return result


# -- all-pairs equivalence (the tentpole's correctness contract) --------

@_common
@given(table=rating_tables(),
       min_common=st.integers(1, 3),
       max_profile=st.sampled_from([None, 2, 3, 5]))
def test_all_pairs_matches_reference_with_guards(table, min_common, max_profile):
    fast = _as_pair_dict(all_pairs_adjusted_cosine(
        table, min_common_users=min_common, max_profile_size=max_profile))
    reference = _as_pair_dict(all_pairs_adjusted_cosine_reference(
        table, min_common_users=min_common, max_profile_size=max_profile))
    for key in fast.keys() | reference.keys():
        assert fast.get(key, 0.0) == pytest.approx(
            reference.get(key, 0.0), abs=1e-9), key


@_common
@given(table=rating_tables())
def test_numpy_and_python_backends_identical(table):
    if not numpy_available():
        pytest.skip("numpy fast path unavailable")
    fast = list(MatrixRatingStore(table, use_numpy=True).all_pairs_adjusted_cosine())
    fallback = list(MatrixRatingStore(
        table, use_numpy=False).all_pairs_adjusted_cosine())
    # Same pairs, same order, bit-identical similarities: both backends
    # accumulate the Eq-6 numerators in the same sequential order and
    # share the fsum-computed norms.
    assert fast == fallback


@_common
@given(table=rating_tables())
def test_all_pairs_yields_sorted_pairs_once(table):
    triples = list(all_pairs_adjusted_cosine(table))
    keys = [(i, j) for i, j, _ in triples]
    assert all(i < j for i, j in keys)
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))


# -- single-pair metric equivalence -------------------------------------

@_common
@given(table=rating_tables())
def test_single_pair_metrics_match_naive(table):
    items = sorted(table.items)[:5]
    users = sorted(table.users)[:5]
    for a in items:
        for b in items:
            if a >= b:
                continue
            assert significance(table, a, b) == significance_reference(table, a, b)
            assert adjusted_cosine(table, a, b) == pytest.approx(
                _naive_adjusted_cosine(table, a, b), abs=1e-9)
            assert cosine(table, a, b) == pytest.approx(
                _naive_cosine(table, a, b), abs=1e-9)
            assert pearson_items(table, a, b) == pytest.approx(
                _naive_pearson_items(table, a, b), abs=1e-9)
    for a in users:
        for b in users:
            if a >= b:
                continue
            assert pearson_users(table, a, b) == pytest.approx(
                _naive_pearson_users(table, a, b), abs=1e-9)


@_common
@given(table=rating_tables())
def test_normalized_significance_matches_union_formula(table):
    items = sorted(table.items)[:5]
    for a in items:
        for b in items:
            if a >= b:
                continue
            union = len(table.item_users(a) | table.item_users(b))
            assert normalized_significance(table, a, b) == pytest.approx(
                significance_reference(table, a, b) / union)


# -- naive oracles (straight transcriptions of the formulas) ------------

def _naive_adjusted_cosine(table, item_i, item_j):
    common = table.item_users(item_i) & table.item_users(item_j)
    numerator = math.fsum(
        (table.value(u, item_i) - table.user_mean(u))
        * (table.value(u, item_j) - table.user_mean(u)) for u in common)
    norms = 1.0
    for item in (item_i, item_j):
        norms *= math.sqrt(math.fsum(
            (r.value - table.user_mean(u)) ** 2
            for u, r in table.item_profile(item).items()))
    if numerator == 0.0 or norms == 0.0:
        return 0.0
    return max(-1.0, min(1.0, numerator / norms))


def _naive_cosine(table, item_i, item_j):
    common = table.item_users(item_i) & table.item_users(item_j)
    numerator = math.fsum(
        table.value(u, item_i) * table.value(u, item_j) for u in common)
    norm_i = math.sqrt(math.fsum(
        r.value ** 2 for r in table.item_profile(item_i).values()))
    norm_j = math.sqrt(math.fsum(
        r.value ** 2 for r in table.item_profile(item_j).values()))
    if numerator == 0.0 or norm_i == 0.0 or norm_j == 0.0:
        return 0.0
    return max(-1.0, min(1.0, numerator / (norm_i * norm_j)))


def _naive_pearson_items(table, item_i, item_j):
    common = sorted(table.item_users(item_i) & table.item_users(item_j))
    if len(common) < 2:
        return 0.0
    values_i = [table.value(u, item_i) for u in common]
    values_j = [table.value(u, item_j) for u in common]
    mean_i = math.fsum(values_i) / len(values_i)
    mean_j = math.fsum(values_j) / len(values_j)
    numerator = math.fsum(
        (vi - mean_i) * (vj - mean_j) for vi, vj in zip(values_i, values_j))
    var_i = math.fsum((vi - mean_i) ** 2 for vi in values_i)
    var_j = math.fsum((vj - mean_j) ** 2 for vj in values_j)
    if var_i == 0.0 or var_j == 0.0:
        return 0.0
    return max(-1.0, min(1.0, numerator / math.sqrt(var_i * var_j)))


def _naive_pearson_users(table, user_a, user_b):
    common = table.user_items(user_a) & table.user_items(user_b)
    numerator = math.fsum(
        (table.value(user_a, i) - table.item_mean(i))
        * (table.value(user_b, i) - table.item_mean(i)) for i in common)
    if numerator == 0.0:
        return 0.0
    denom = 1.0
    for user in (user_a, user_b):
        denom *= math.sqrt(math.fsum(
            (r.value - table.item_mean(i)) ** 2
            for i, r in table.user_profile(user).items()))
    if denom == 0.0:
        return 0.0
    return max(-1.0, min(1.0, numerator / denom))


# -- store construction & guard semantics -------------------------------

class TestStoreBasics:
    def test_interning_is_sorted_and_deterministic(self, tiny_table):
        store = tiny_table.matrix()
        assert store.users == sorted(tiny_table.users)
        assert store.items == sorted(tiny_table.items)
        assert store.n_ratings == len(tiny_table)

    def test_matrix_is_memoized(self, tiny_table):
        assert tiny_table.matrix() is tiny_table.matrix()

    def test_means_match_table(self, tiny_table):
        store = tiny_table.matrix()
        for k, user in enumerate(store.users):
            assert store.user_means[k] == tiny_table.user_mean(user)
        for k, item in enumerate(store.items):
            assert store.item_means[k] == tiny_table.item_mean(item)
        assert store.global_mean == tiny_table.global_mean()

    def test_empty_table(self):
        store = RatingTable().matrix()
        assert store.n_users == 0
        assert store.n_items == 0
        assert list(store.all_pairs_adjusted_cosine()) == []

    def test_unknown_items_behave_like_reference(self, tiny_table):
        assert adjusted_cosine(tiny_table, "a", "nope") == 0.0
        assert cosine(tiny_table, "nope", "a") == 0.0
        assert significance(tiny_table, "nope", "nada") == 0
        # One known item: union is nonempty, significance is 0.
        assert normalized_significance(tiny_table, "a", "nope") == 0.0
        with pytest.raises(SimilarityError):
            normalized_significance(RatingTable(), "x", "y")

    def test_unknown_users_pearson_zero(self, tiny_table):
        assert pearson_users(tiny_table, "u1", "ghost") == 0.0
        assert pearson_users(tiny_table, "ghost", "phantom") == 0.0

    def test_pure_python_env_var_forces_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        table = RatingTable([Rating("u", "a", 3.0), Rating("u", "b", 4.0)])
        assert not table.matrix().uses_numpy


class TestGraphBulkAndTopK:
    def test_add_edges_matches_add_edge(self):
        from repro.similarity.graph import ItemGraph
        bulk = ItemGraph()
        bulk.add_edges([("a", "b", 0.5), ("b", "c", -0.2), ("a", "b", 0.7)])
        single = ItemGraph()
        for i, j, s in [("a", "b", 0.5), ("b", "c", -0.2), ("a", "b", 0.7)]:
            single.add_edge(i, j, s)
        assert sorted(bulk.edges()) == sorted(single.edges())

    def test_add_edges_rejects_self_loop(self):
        from repro.errors import GraphError
        from repro.similarity.graph import ItemGraph
        with pytest.raises(GraphError):
            ItemGraph().add_edges([("a", "a", 1.0)])

    def test_top_neighbors_accepts_frozenset(self):
        from repro.similarity.graph import ItemGraph
        graph = ItemGraph()
        graph.add_edge("q", "a", 0.9)
        graph.add_edge("q", "b", 0.8)
        graph.add_edge("q", "c", 0.7)
        members = frozenset({"b", "c"})
        assert graph.top_neighbors("q", 2, among=members) == [("b", 0.8), ("c", 0.7)]

    def test_top_k_accepts_pair_iterable(self):
        from repro.similarity.knn import top_k
        pairs = [("a", 0.5), ("c", 0.9), ("b", 0.5)]
        assert top_k(pairs, 2) == [("c", 0.9), ("a", 0.5)]
        assert top_k(iter(pairs), 2, exclude=frozenset({"c"})) == [
            ("a", 0.5), ("b", 0.5)]
