"""Unit tests for the BB/NB/NN layer partition (repro.core.layers)."""

import pytest

from repro.core.layers import Layer, LayerPartition
from repro.errors import GraphError
from repro.similarity.graph import ItemGraph, build_similarity_graph


def _graph(edges):
    graph = ItemGraph()
    for item_i, item_j, sim in edges:
        graph.add_edge(item_i, item_j, sim)
    return graph


class TestLayerPartition:
    def test_hand_built_layers(self):
        # m2-b1 is the only cross edge; m1-m2 and b1-b2 are intra edges;
        # m0 and b0 are isolated.
        graph = _graph([("m2", "b1", 0.5), ("m1", "m2", 0.4), ("b1", "b2", 0.3)])
        graph.add_item("m0")
        graph.add_item("b0")
        domain_of = {"m0": "m", "m1": "m", "m2": "m", "b0": "b", "b1": "b", "b2": "b"}
        partition = LayerPartition.from_graph(graph, domain_of)
        assert partition.layer_of("m2") is Layer.BB
        assert partition.layer_of("b1") is Layer.BB
        assert partition.layer_of("m1") is Layer.NB
        assert partition.layer_of("b2") is Layer.NB
        assert partition.layer_of("m0") is Layer.NN
        assert partition.layer_of("b0") is Layer.NN

    def test_bridge_symmetry(self):
        # A cross edge makes BOTH endpoints bridges.
        graph = _graph([("m1", "b1", 0.2)])
        partition = LayerPartition.from_graph(graph, {"m1": "m", "b1": "b"})
        assert partition.bridge_items("m") == {"m1"}
        assert partition.bridge_items("b") == {"b1"}

    def test_nn_connected_only_to_non_bridges(self):
        # m3 touches m1 (NB), not any bridge -> NN.
        graph = _graph([("m2", "b1", 0.5), ("m1", "m2", 0.4), ("m3", "m1", 0.3)])
        partition = LayerPartition.from_graph(
            graph, {"m1": "m", "m2": "m", "m3": "m", "b1": "b"})
        assert partition.layer_of("m3") is Layer.NN

    def test_requires_two_domains(self):
        graph = _graph([("a", "b", 0.1)])
        with pytest.raises(GraphError, match="2 domains"):
            LayerPartition.from_graph(graph, {"a": "m", "b": "m"})

    def test_missing_domain_label(self):
        graph = _graph([("a", "b", 0.1)])
        with pytest.raises(GraphError, match="missing"):
            LayerPartition.from_graph(graph, {"a": "m"})

    def test_unknown_item_queries(self, two_domain_micro):
        graph = build_similarity_graph(two_domain_micro.merged())
        partition = LayerPartition.from_graph(graph, two_domain_micro.domain_map())
        with pytest.raises(GraphError):
            partition.layer_of("ghost")
        with pytest.raises(GraphError):
            partition.members("ghost-domain", Layer.BB)

    def test_other_domain(self, two_domain_micro):
        graph = build_similarity_graph(two_domain_micro.merged())
        partition = LayerPartition.from_graph(graph, two_domain_micro.domain_map())
        assert partition.other_domain("m") == "b"
        assert partition.other_domain("b") == "m"

    def test_counts_total_items(self, two_domain_micro):
        graph = build_similarity_graph(two_domain_micro.merged())
        partition = LayerPartition.from_graph(graph, two_domain_micro.domain_map())
        assert sum(partition.counts().values()) == len(partition)

    def test_layers_partition_each_domain(self, small_trace):
        graph = build_similarity_graph(small_trace.merged())
        partition = LayerPartition.from_graph(graph, small_trace.domain_map())
        for domain in partition.domains:
            members = [partition.members(domain, layer) for layer in Layer]
            union = set().union(*members)
            assert sum(len(m) for m in members) == len(union)

    def test_figure_1a_layers(self, scenario):
        graph = build_similarity_graph(scenario.merged())
        partition = LayerPartition.from_graph(graph, scenario.domain_map())
        # Inception is the only movie-side bridge (via Cecilia).
        assert partition.bridge_items("movies") == {"inception"}
        assert partition.layer_of("interstellar") in (Layer.NB, Layer.NN)
