"""Unit tests for the similarity metrics (repro.similarity)."""

import pytest

from repro.data.ratings import Rating, RatingTable
from repro.errors import SimilarityError
from repro.similarity.adjusted_cosine import (
    adjusted_cosine,
    all_pairs_adjusted_cosine,
)
from repro.similarity.cosine import cosine
from repro.similarity.pearson import pearson_items, pearson_users
from repro.similarity.significance import (
    normalized_significance,
    significance,
)


class TestAdjustedCosine:
    def test_hand_computed_value(self):
        # u1: a=5, b=3 (mean 4); u2: a=4, b=2 (mean 3)
        table = RatingTable([
            Rating("u1", "a", 5.0), Rating("u1", "b", 3.0),
            Rating("u2", "a", 4.0), Rating("u2", "b", 2.0)])
        # centered: u1 -> a:+1, b:-1 ; u2 -> a:+1, b:-1
        # numerator = -1 + -1 = -2; norms = sqrt(2)*sqrt(2) = 2
        assert adjusted_cosine(table, "a", "b") == pytest.approx(-1.0)

    def test_no_common_users_is_zero(self, scenario):
        merged = scenario.merged()
        assert adjusted_cosine(merged, "interstellar", "forever-war") == 0.0

    def test_symmetry(self, tiny_table):
        assert adjusted_cosine(tiny_table, "a", "b") == pytest.approx(
            adjusted_cosine(tiny_table, "b", "a"))

    def test_bounded(self, small_trace):
        merged = small_trace.merged()
        items = sorted(merged.items)[:15]
        for i in items:
            for j in items:
                if i < j:
                    assert -1.0 <= adjusted_cosine(merged, i, j) <= 1.0

    def test_degenerate_constant_rater(self):
        # Single user rating everything identically: centered values 0.
        table = RatingTable([Rating("u", "a", 4.0), Rating("u", "b", 4.0)])
        assert adjusted_cosine(table, "a", "b") == 0.0

    def test_all_pairs_matches_pointwise(self, tiny_table):
        for item_i, item_j, sim in all_pairs_adjusted_cosine(tiny_table):
            assert sim == pytest.approx(adjusted_cosine(tiny_table, item_i, item_j))

    def test_all_pairs_yields_each_pair_once(self, tiny_table):
        pairs = [(i, j) for i, j, _ in all_pairs_adjusted_cosine(tiny_table)]
        assert len(pairs) == len(set(pairs))
        assert all(i < j for i, j in pairs)

    def test_min_common_users_filter(self, tiny_table):
        loose = list(all_pairs_adjusted_cosine(tiny_table))
        strict = list(all_pairs_adjusted_cosine(tiny_table, min_common_users=2))
        assert len(strict) <= len(loose)

    def test_max_profile_size_skips_whales(self, tiny_table):
        capped = list(all_pairs_adjusted_cosine(tiny_table, max_profile_size=2))
        # u1 (3 items) and u3 (3 items) are skipped entirely.
        contributing = {i for i, j, _ in capped} | {j for i, j, _ in capped}
        assert contributing <= {"a", "b", "d"}


class TestCosine:
    def test_positive_for_corated(self, tiny_table):
        # raw cosine of co-rated items is positive (all ratings > 0)
        assert cosine(tiny_table, "a", "b") > 0.0

    def test_zero_without_common_users(self, scenario):
        merged = scenario.merged()
        assert cosine(merged, "interstellar", "forever-war") == 0.0

    def test_bounded_and_symmetric(self, tiny_table):
        value = cosine(tiny_table, "b", "c")
        assert -1.0 <= value <= 1.0
        assert value == pytest.approx(cosine(tiny_table, "c", "b"))


class TestPearsonItems:
    def test_needs_two_common_raters(self, tiny_table):
        # items c and d share only u3.
        assert pearson_items(tiny_table, "c", "d") == 0.0

    def test_perfect_correlation(self):
        table = RatingTable([
            Rating("u1", "a", 1.0), Rating("u1", "b", 2.0),
            Rating("u2", "a", 3.0), Rating("u2", "b", 4.0),
            Rating("u3", "a", 5.0), Rating("u3", "b", 5.0)])
        assert pearson_items(table, "a", "b") > 0.9

    def test_degenerate_variance(self):
        table = RatingTable([
            Rating("u1", "a", 3.0), Rating("u1", "b", 2.0),
            Rating("u2", "a", 3.0), Rating("u2", "b", 4.0)])
        assert pearson_items(table, "a", "b") == 0.0


class TestPearsonUsers:
    def test_symmetry(self, tiny_table):
        assert pearson_users(tiny_table, "u1", "u2") == pytest.approx(
            pearson_users(tiny_table, "u2", "u1"))

    def test_agreeing_users_positive(self, tiny_table):
        # u1 and u2 rate a high and b low relative to item means.
        assert pearson_users(tiny_table, "u1", "u2") > 0.0

    def test_no_common_items_zero(self):
        table = RatingTable([Rating("u1", "a", 5.0), Rating("u2", "b", 1.0)])
        assert pearson_users(table, "u1", "u2") == 0.0

    def test_bounded(self, small_trace):
        merged = small_trace.merged()
        users = sorted(merged.users)[:10]
        for a in users:
            for b in users:
                if a < b:
                    assert -1.0 <= pearson_users(merged, a, b) <= 1.0


class TestSignificance:
    def test_definition_2_by_hand(self):
        # means: a = 4 (5,4,3... wait) compute: a rated 5,3 -> mean 4;
        # b rated 5,1 -> mean 3.
        table = RatingTable([
            Rating("u1", "a", 5.0), Rating("u1", "b", 5.0),  # like/like
            Rating("u2", "a", 3.0), Rating("u2", "b", 1.0),  # dislike/dislike
        ])
        assert significance(table, "a", "b") == 2

    def test_disagreement_not_counted(self):
        table = RatingTable([
            Rating("u1", "a", 5.0), Rating("u1", "b", 1.0),
            Rating("u2", "a", 1.0), Rating("u2", "b", 5.0),
        ])
        assert significance(table, "a", "b") == 0

    def test_symmetry(self, tiny_table):
        assert significance(tiny_table, "a", "b") == significance(tiny_table, "b", "a")

    def test_normalized_bounds(self, tiny_table):
        value = normalized_significance(tiny_table, "a", "b")
        assert 0.0 <= value <= 1.0

    def test_normalized_undefined_without_raters(self):
        with pytest.raises(SimilarityError):
            normalized_significance(RatingTable(), "x", "y")

    def test_normalized_denominator_is_union(self, tiny_table):
        raw = significance(tiny_table, "a", "b")
        union = len(tiny_table.item_users("a") | tiny_table.item_users("b"))
        assert normalized_significance(
            tiny_table, "a", "b") == pytest.approx(raw / union)
