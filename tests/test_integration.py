"""End-to-end integration tests: the paper's headline claims in miniature."""

import pytest

from repro.cf.item_average import ItemAverageRecommender
from repro.core.pipeline import NXMapRecommender, XMapConfig
from repro.data.splits import cold_start_split
from repro.data.synthetic import amazon_like, interstellar_scenario
from repro.evaluation.harness import evaluate


class TestInterstellarStory:
    """The paper's title scenario, end to end."""

    @pytest.fixture(scope="class")
    def fitted(self):
        scenario = interstellar_scenario()
        return scenario, NXMapRecommender(XMapConfig(prune_k=3, cf_k=5)).fit(scenario)

    def test_interstellar_maps_to_forever_war(self, fitted):
        _, recommender = fitted
        assert recommender.item_mapping()["interstellar"] == "forever-war"

    def test_alice_gets_book_recommendations(self, fitted):
        scenario, recommender = fitted
        # Alice never rated a book.
        assert not scenario.target.ratings.user_items("alice")
        recommended = recommender.recommend("alice", n=2)
        assert recommended
        assert all(item in scenario.target.items for item, _ in recommended)

    def test_xsim_connects_disconnected_items(self, fitted):
        _, recommender = fitted
        # Standard similarity is 0 (no common rater); X-Sim is positive.
        assert recommender.xsim_map["interstellar"]["forever-war"] > 0.0


class TestHeadlineAccuracy:
    """NX-Map beats the unpersonalised baseline on a full trace.

    This is the paper's central accuracy claim (Figure 8) at test
    scale: the default synthetic trace, cold-start protocol, both
    recommendation modes.
    """

    @pytest.fixture(scope="class")
    def split(self):
        return cold_start_split(amazon_like(), seed=7)

    @pytest.fixture(scope="class")
    def item_average_mae(self, split):
        return evaluate(
            "ItemAverage",
            ItemAverageRecommender(split.train.target.ratings),
            split).mae

    @pytest.mark.slow
    def test_nxmap_user_based_beats_item_average(self, split, item_average_mae):
        recommender = NXMapRecommender(XMapConfig(mode="user")).fit(
            split.train, users=split.test_users)
        result = evaluate("NX-Map-ub", recommender, split)
        assert result.mae < item_average_mae

    @pytest.mark.slow
    def test_nxmap_item_based_beats_item_average(self, split, item_average_mae):
        recommender = NXMapRecommender(XMapConfig(mode="item", alpha=0.03)).fit(
            split.train, users=split.test_users)
        result = evaluate("NX-Map-ib", recommender, split)
        assert result.mae < item_average_mae
