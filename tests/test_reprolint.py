"""reprolint's own test suite.

Each rule gets a seeded violation (must be caught) and a clean twin
(must pass); the CLI is pinned on exit codes (0 clean / 1 findings /
2 usage-or-parse errors), the suppression and baseline workflows, and
``list-points`` agreeing with the registry extraction. The last test
runs the real checker over the real tree — the same gate CI applies.
"""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
_TOOLS = str(REPO_ROOT / "tools")
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

from reprolint.cli import main  # noqa: E402
from reprolint.core import Checker, Severity  # noqa: E402
from reprolint.rules import ALL_RULES  # noqa: E402
from reprolint.rules.faultpoints import load_registry  # noqa: E402

# ----------------------------------------------------------------------
# Fixture-repo plumbing
# ----------------------------------------------------------------------


def write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def check(root: Path, *rels: str):
    checker = Checker(ALL_RULES, root)
    return checker.run([root / rel for rel in rels])


def rule_ids(result) -> list[str]:
    return [finding.rule for finding in result.findings]


# ----------------------------------------------------------------------
# Per-rule fixtures: seeded violation caught, clean twin passes
# ----------------------------------------------------------------------

# (rule id, repo-relative path, violating source, clean twin source)
_RULE_FIXTURES = [
    (
        "REP101",
        "src/repro/engine/route.py",
        """\
        def route(item, n):
            return hash(item) % n
        """,
        """\
        from repro.engine.partitioner import stable_hash


        def route(item, n):
            return stable_hash(item) % n
        """,
    ),
    (
        "REP102",
        "src/repro/engine/sweep.py",
        """\
        import random


        def pick(items):
            return random.choice(items)
        """,
        """\
        import random


        def pick(items, seed):
            return random.Random(seed).choice(items)
        """,
    ),
    (
        "REP102",
        "src/repro/core/sample.py",
        """\
        import numpy as np  # reprolint: disable=REP201


        def draw(n):
            return np.random.default_rng().random(n)
        """,
        """\
        import numpy as np  # reprolint: disable=REP201


        def draw(n, seed):
            return np.random.default_rng(seed).random(n)
        """,
    ),
    (
        "REP103",
        "src/repro/serving/tick.py",
        """\
        import time


        def stamp():
            return time.time()
        """,
        """\
        import time


        def elapsed(t0):
            return time.monotonic() - t0
        """,
    ),
    (
        "REP201",
        "src/repro/engine/mathy.py",
        """\
        import numpy as np


        def mean(xs):
            return float(np.mean(xs))
        """,
        """\
        def mean(xs):
            return sum(xs) / len(xs)
        """,
    ),
    (
        "REP202",
        "src/repro/data/matrix.py",
        """\
        def dot(a, b, use_numpy, np):
            if use_numpy:
                return np.dot(a, b)
            else:
                return np.dot(a, b)
        """,
        """\
        def dot(a, b, use_numpy, np):
            if use_numpy:
                return np.dot(a, b)
            else:
                return sum(x * y for x, y in zip(a, b))
        """,
    ),
    (
        "REP301",
        "src/repro/serving/publish.py",
        """\
        import os


        def publish(tmp, final):
            os.replace(tmp, final)
        """,
        """\
        import os


        def publish(tmp, final, dir_fd):
            with open(tmp) as handle:  # noqa: file io fixture
                os.fsync(handle.fileno())
            os.replace(tmp, final)
            _fsync_dir(dir_fd)


        def _fsync_dir(dir_fd):
            os.fsync(dir_fd)
        """,
    ),
    (
        "REP401",
        "src/repro/gateway/pause.py",
        """\
        import time


        async def pause():
            time.sleep(1.0)
        """,
        """\
        import asyncio


        async def pause():
            await asyncio.sleep(1.0)
        """,
    ),
    (
        "REP401",
        "src/repro/gateway/reap.py",
        """\
        async def reap(handle):
            handle.proc.wait()
        """,
        """\
        import asyncio


        async def reap(handle):
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, handle.proc.wait)
        """,
    ),
    (
        "REP402",
        "src/repro/gateway/task.py",
        """\
        import asyncio


        async def step():
            try:
                await asyncio.sleep(0)
            except asyncio.CancelledError:
                return None
        """,
        """\
        import asyncio


        async def step():
            try:
                await asyncio.sleep(0)
            except asyncio.CancelledError:
                raise
        """,
    ),
    (
        "REP501",
        "src/repro/util.py",
        """\
        def close(handle):
            try:
                handle.close()
            except:
                log("close failed")
        """,
        """\
        def close(handle):
            try:
                handle.close()
            except OSError:
                log("close failed")
        """,
    ),
    (
        "REP502",
        "scripts/cleanup.py",
        """\
        def cleanup(path):
            try:
                path.unlink()
            except Exception:
                pass
        """,
        """\
        def cleanup(path):
            try:
                path.unlink()
            except (OSError, RuntimeError):
                pass
        """,
    ),
    (
        "REP701",
        "src/repro/serving/report.py",
        """\
        def report(stats):
            print("served", stats["n"])
        """,
        """\
        import logging

        logger = logging.getLogger("repro.serving")


        def report(stats):
            logger.info("served %d", stats["n"])


        def main():
            print("cli output is fine here")


        if __name__ == "__main__":
            print("and here")
            main()
        """,
    ),
]


@pytest.mark.parametrize(
    "rule_id,rel,bad,good",
    _RULE_FIXTURES,
    ids=[f"{rid}:{Path(rel).stem}" for rid, rel, _, _ in _RULE_FIXTURES],
)
def test_rule_catches_seeded_violation(tmp_path, rule_id, rel, bad, good):
    write(tmp_path, rel, bad)
    result = check(tmp_path, rel)
    assert rule_id in rule_ids(result), (
        f"{rule_id} missed its seeded violation in {rel}: "
        f"{result.findings}"
    )


@pytest.mark.parametrize(
    "rule_id,rel,bad,good",
    _RULE_FIXTURES,
    ids=[f"{rid}:{Path(rel).stem}" for rid, rel, _, _ in _RULE_FIXTURES],
)
def test_rule_passes_clean_twin(tmp_path, rule_id, rel, bad, good):
    write(tmp_path, rel, good)
    result = check(tmp_path, rel)
    assert rule_id not in rule_ids(result), (
        f"{rule_id} false positive on the clean twin of {rel}: "
        f"{result.findings}"
    )


def test_every_rule_has_a_fixture():
    covered = {rule_id for rule_id, _, _, _ in _RULE_FIXTURES}
    covered |= {"REP601", "REP602"}  # the drift pair, below
    all_ids = {rule.id for rule in ALL_RULES} | {
        getattr(rule, "unexercised_id", rule.id) for rule in ALL_RULES
    }
    assert covered == all_ids, (
        "rules without a seeded-violation fixture: "
        f"{sorted(all_ids - covered)}"
    )


# ----------------------------------------------------------------------
# Rule edge cases
# ----------------------------------------------------------------------


def test_salted_hash_exempts_dunder_hash(tmp_path):
    write(
        tmp_path,
        "src/repro/engine/part.py",
        """\
        class Partitioner:
            def __hash__(self):
                return hash(("Partitioner", 4))
        """,
    )
    result = check(tmp_path, "src/repro/engine/part.py")
    assert rule_ids(result) == []


def test_determinism_rules_skip_synthetic_and_gateway(tmp_path):
    body = """\
    import random


    def draw():
        return random.random()
    """
    write(tmp_path, "src/repro/data/synthetic.py", body)
    write(tmp_path, "src/repro/gateway/jitter.py", body)
    result = check(
        tmp_path,
        "src/repro/data/synthetic.py",
        "src/repro/gateway/jitter.py",
    )
    assert "REP102" not in rule_ids(result)


def test_fallback_rule_follows_polarity_flips(tmp_path):
    write(
        tmp_path,
        "src/repro/data/matrix.py",
        """\
        def norm(xs, use_numpy, np):
            if not use_numpy:
                return np.linalg.norm(xs)
            return np.linalg.norm(xs)
        """,
    )
    result = check(tmp_path, "src/repro/data/matrix.py")
    findings = [f for f in result.findings if f.rule == "REP202"]
    # Only the `not use_numpy` body (the pure side) is flagged.
    assert [f.line for f in findings] == [3]


def test_drift_rule_flags_both_directions(tmp_path):
    write(
        tmp_path,
        "src/repro/durability/log.py",
        """\
        def append(record):
            crash_point("wal.append.write")
            crash_point("wal.orphan.point")
        """,
    )
    write(
        tmp_path,
        "tests/test_wal.py",
        """\
        def test_append_crash():
            plan = FaultPlan(rules=[
                FaultRule("wal.append.write", "error"),
                FaultRule("wal.renamed.point", "error"),
            ])
        """,
    )
    result = check(tmp_path, "src/repro/durability/log.py")
    by_rule = {finding.rule: finding.message for finding in result.findings}
    assert "wal.renamed.point" in by_rule["REP601"]
    assert "wal.orphan.point" in by_rule["REP602"]


def test_drift_rule_accepts_globs_wildcards_and_test_namespace(tmp_path):
    write(
        tmp_path,
        "src/repro/durability/log.py",
        """\
        def append(record):
            crash_point("wal.append.write")
            crash_point("wal.fsync")
        """,
    )
    write(
        tmp_path,
        "tests/test_wal.py",
        """\
        def test_glob_and_sweep():
            FaultRule("wal.*", "error")
            FaultRule("test.synthetic", "error")
            with injected_crashes() as recorder:
                pass
        """,
    )
    result = check(tmp_path, "src/repro/durability/log.py")
    assert rule_ids(result) == []


def test_inline_suppression_counts_as_suppressed(tmp_path):
    write(
        tmp_path,
        "src/repro/engine/route.py",
        """\
        def route(item, n):
            return hash(item) % n  # reprolint: disable=REP101
        """,
    )
    result = check(tmp_path, "src/repro/engine/route.py")
    assert rule_ids(result) == []
    assert [f.rule for f in result.suppressed] == ["REP101"]


def test_findings_are_error_severity_by_default():
    assert all(rule.severity is Severity.ERROR for rule in ALL_RULES)


# ----------------------------------------------------------------------
# The CLI
# ----------------------------------------------------------------------

_CLEAN = """\
def route(item, n):
    return int(item) % n
"""

_DIRTY = """\
def route(item, n):
    return hash(item) % n
"""


def _cli(root: Path, *argv: str) -> int:
    return main(["--root", str(root), *argv])


def test_check_exits_zero_on_clean_tree(tmp_path, capsys):
    write(tmp_path, "src/repro/engine/route.py", _CLEAN)
    code = _cli(tmp_path, "check", str(tmp_path / "src"))
    assert code == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_check_exits_one_on_findings(tmp_path, capsys):
    write(tmp_path, "src/repro/engine/route.py", _DIRTY)
    code = _cli(tmp_path, "check", str(tmp_path / "src"))
    assert code == 1
    out = capsys.readouterr().out
    assert "REP101" in out
    assert "src/repro/engine/route.py:2" in out


def test_check_exits_two_on_missing_path(tmp_path, capsys):
    code = _cli(tmp_path, "check", str(tmp_path / "nope"))
    assert code == 2
    assert "no such path" in capsys.readouterr().err


def test_check_exits_two_on_parse_error(tmp_path, capsys):
    write(tmp_path, "src/repro/engine/broken.py", "def oops(:\n")
    code = _cli(tmp_path, "check", str(tmp_path / "src"))
    assert code == 2
    assert "PARSE ERROR" in capsys.readouterr().out


def test_check_json_report_is_parseable(tmp_path, capsys):
    write(tmp_path, "src/repro/engine/route.py", _DIRTY)
    code = _cli(tmp_path, "check", str(tmp_path / "src"), "--format", "json")
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "reprolint-report"
    assert [f["rule"] for f in payload["findings"]] == ["REP101"]


def test_baseline_workflow_grandfathers_findings(tmp_path, capsys):
    write(tmp_path, "src/repro/engine/route.py", _DIRTY)
    src = str(tmp_path / "src")
    assert _cli(tmp_path, "check", src) == 1
    capsys.readouterr()

    assert _cli(tmp_path, "baseline", src) == 0
    assert "1 baseline entry" in capsys.readouterr().out
    baseline = json.loads((tmp_path / "tools/reprolint/baseline.json").read_text())
    assert baseline["format"] == "reprolint-baseline"
    assert len(baseline["entries"]) == 1

    # Baselined: clean exit, but the report still counts it.
    assert _cli(tmp_path, "check", src) == 0
    assert "1 baselined" in capsys.readouterr().out

    # --no-baseline resurfaces it; a new finding is never masked.
    assert _cli(tmp_path, "check", src, "--no-baseline") == 1
    capsys.readouterr()
    write(
        tmp_path,
        "src/repro/engine/other.py",
        "import time\n\n\ndef f():\n    return time.time()\n",
    )
    assert _cli(tmp_path, "check", src) == 1
    assert "REP103" in capsys.readouterr().out


def test_baseline_matching_survives_line_moves(tmp_path, capsys):
    path = write(tmp_path, "src/repro/engine/route.py", _DIRTY)
    src = str(tmp_path / "src")
    assert _cli(tmp_path, "baseline", src) == 0
    # Unrelated edits above the finding shift its line; the baseline
    # matches on (rule, path, obj, message), so it stays grandfathered.
    path.write_text("X = 1\n\n\n" + _DIRTY, encoding="utf-8")
    assert _cli(tmp_path, "check", src) == 0


def test_corrupt_baseline_is_a_usage_error(tmp_path, capsys):
    write(tmp_path, "src/repro/engine/route.py", _CLEAN)
    write(tmp_path, "tools/reprolint/baseline.json", '{"format": "nope"}')
    code = _cli(tmp_path, "check", str(tmp_path / "src"))
    assert code == 2
    assert "bad baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# list-points and the real tree
# ----------------------------------------------------------------------


def test_list_points_matches_registry_extraction(capsys):
    declarations, references = load_registry(REPO_ROOT)
    assert declarations, "the real tree declares fault points"
    code = _cli(REPO_ROOT, "list-points", "--format", "json")
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "reprolint-points"
    listed = {entry["point"] for entry in payload["points"]}
    assert listed == {decl.point for decl in declarations}
    # The durability sweep's wildcard reference covers every point.
    for entry in payload["points"]:
        assert entry["referenced_by"], entry["point"]


def test_real_tree_is_clean(capsys):
    code = _cli(
        REPO_ROOT,
        "check",
        str(REPO_ROOT / "src"),
        str(REPO_ROOT / "scripts"),
    )
    assert code == 0, capsys.readouterr().out
