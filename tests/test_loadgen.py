"""Percentile and report math in :mod:`repro.gateway.loadgen`.

The nearest-rank :func:`percentile` feeds every latency figure the
benches and smoke gates assert on, so its edge cases — empty, single
sample, two samples, heavy duplicates — get pinned here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gateway.loadgen import percentile, summarize


def test_percentile_empty_is_zero():
    for q in (0.0, 0.5, 0.99, 0.999, 1.0):
        assert percentile([], q) == 0.0


def test_percentile_single_sample_is_that_sample():
    for q in (0.0, 0.5, 0.99, 0.999):
        assert percentile([7.25], q) == 7.25


def test_percentile_two_samples():
    ordered = [1.0, 9.0]
    assert percentile(ordered, 0.50) == 9.0  # rank = int(0.5 * 2) = 1
    assert percentile(ordered, 0.49) == 1.0
    assert percentile(ordered, 0.99) == 9.0
    assert percentile(ordered, 0.999) == 9.0


def test_percentile_duplicates():
    ordered = [5.0] * 100
    for q in (0.50, 0.90, 0.99, 0.999):
        assert percentile(ordered, q) == 5.0
    mixed = sorted([1.0] * 99 + [100.0])
    assert percentile(mixed, 0.50) == 1.0
    assert percentile(mixed, 0.99) == 100.0
    assert percentile(mixed, 0.999) == 100.0


def test_percentile_rank_never_out_of_bounds():
    # q=1.0 must clamp to the last element, not index past the end
    assert percentile([1.0, 2.0, 3.0], 1.0) == 3.0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_percentile_properties(values, q):
    ordered = sorted(values)
    result = percentile(ordered, q)
    # always an element of the sample, and monotone in q
    assert result in ordered
    assert ordered[0] <= result <= ordered[-1]
    assert percentile(ordered, 0.0) == ordered[0]


def test_summarize_empty_run():
    report = summarize([], 0.0, errors=0, versions=set())
    assert report["n_requests"] == 0
    assert report["qps"] == 0.0
    latency = report["latency_ms"]
    assert latency["mean"] == latency["p50"] == latency["max"] == 0.0


def test_summarize_converts_to_milliseconds():
    report = summarize(
        [0.001, 0.002, 0.004],
        elapsed_s=2.0,
        errors=1,
        versions={3},
        shed=2,
        stale=1,
    )
    assert report["n_requests"] == 3
    assert report["errors"] == 1
    assert report["shed"] == 2
    assert report["stale"] == 1
    assert report["qps"] == pytest.approx(1.5)
    assert report["versions"] == [3]
    latency = report["latency_ms"]
    assert latency["p50"] == pytest.approx(2.0)
    assert latency["max"] == pytest.approx(4.0)
    assert latency["mean"] == pytest.approx(7.0 / 3.0)
