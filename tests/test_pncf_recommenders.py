"""Unit tests for the private recommenders (repro.privacy.pncf)."""

import pytest

from repro.cf.item_knn import ItemKNNRecommender
from repro.errors import PrivacyError
from repro.privacy.pncf import (
    PrivateItemKNNRecommender,
    PrivateUserKNNRecommender,
)


@pytest.fixture(scope="module")
def target(small_trace):
    return small_trace.target.ratings


class TestPrivateItemKNN:
    def test_rejects_bad_epsilon(self, target):
        with pytest.raises(PrivacyError):
            PrivateItemKNNRecommender(target, epsilon_prime=0.0)

    def test_rejects_negative_alpha(self, target):
        with pytest.raises(PrivacyError):
            PrivateItemKNNRecommender(target, alpha=-0.5)

    def test_predictions_in_scale(self, target):
        rec = PrivateItemKNNRecommender(target, k=10, epsilon_prime=0.8, seed=0)
        users = sorted(target.users)[:4]
        items = sorted(target.items)[:4]
        for user in users:
            for item in items:
                assert 1.0 <= rec.predict(user, item) <= 5.0

    def test_deterministic_given_seed(self, target):
        user = sorted(target.users)[0]
        item = sorted(target.items)[0]
        first = PrivateItemKNNRecommender(
            target, k=10, epsilon_prime=0.8, seed=42).predict(user, item)
        second = PrivateItemKNNRecommender(
            target, k=10, epsilon_prime=0.8, seed=42).predict(user, item)
        assert first == pytest.approx(second)

    def test_high_budget_tracks_non_private(self, target):
        """With a huge ε′ the private predictions converge to plain
        item-based CF (the paper: X-Map transforms to NX-Map)."""
        plain = ItemKNNRecommender(target, k=10)
        private = PrivateItemKNNRecommender(target, k=10, epsilon_prime=1000.0, seed=1)
        users = sorted(target.users)[:5]
        items = sorted(target.items)[:5]
        deltas = [abs(private.predict(u, i) - plain.predict(u, i))
                  for u in users for i in items]
        assert sum(deltas) / len(deltas) < 0.1

    def test_low_budget_noisier_than_high(self, target):
        plain = ItemKNNRecommender(target, k=10)
        users = sorted(target.users)[:5]
        items = sorted(target.items)[:5]

        def mean_delta(eps):
            rec = PrivateItemKNNRecommender(target, k=10, epsilon_prime=eps, seed=2)
            return sum(abs(rec.predict(u, i) - plain.predict(u, i))
                       for u in users for i in items) / 25
        assert mean_delta(0.2) > mean_delta(100.0)


class TestPrivateUserKNN:
    def test_predictions_in_scale(self, target):
        rec = PrivateUserKNNRecommender(target, k=10, epsilon_prime=0.5, seed=0)
        users = sorted(target.users)[:4]
        items = sorted(target.items)[:4]
        for user in users:
            for item in items:
                assert 1.0 <= rec.predict(user, item) <= 5.0

    def test_neighborhood_cached_per_user(self, target):
        rec = PrivateUserKNNRecommender(target, k=10, epsilon_prime=0.5, seed=0)
        user = sorted(target.users)[0]
        first = rec._private_neighbors(user)
        assert rec._private_neighbors(user) is first

    def test_budget_split_in_halves(self, target):
        rec = PrivateUserKNNRecommender(target, k=5, epsilon_prime=0.6)
        assert rec.selection_epsilon == pytest.approx(0.3)
        assert rec.noise_epsilon == pytest.approx(0.3)

    def test_user_without_history_falls_back(self, target):
        rec = PrivateUserKNNRecommender(target, k=5, epsilon_prime=0.5)
        item = sorted(target.items)[0]
        value = rec.predict("complete-stranger", item)
        assert 1.0 <= value <= 5.0
