"""Shared fixtures.

Expensive artifacts (the synthetic trace, a fitted pipeline) are
session-scoped: they are deterministic, never mutated by tests (the data
structures are immutable by design), and rebuilding them per test would
dominate the suite's runtime.
"""

from __future__ import annotations

import pytest

from repro.data.dataset import CrossDomainDataset, Dataset
from repro.data.ratings import Rating, RatingTable
from repro.data.splits import cold_start_split
from repro.data.synthetic import (
    SyntheticConfig,
    amazon_like,
    interstellar_scenario,
)


@pytest.fixture()
def tiny_table() -> RatingTable:
    """Four users, four items, hand-checkable numbers."""
    return RatingTable([
        Rating("u1", "a", 5.0, 0),
        Rating("u1", "b", 3.0, 1),
        Rating("u1", "c", 1.0, 2),
        Rating("u2", "a", 4.0, 0),
        Rating("u2", "b", 2.0, 1),
        Rating("u3", "b", 5.0, 0),
        Rating("u3", "c", 4.0, 1),
        Rating("u3", "d", 3.0, 2),
        Rating("u4", "a", 2.0, 0),
        Rating("u4", "d", 5.0, 1),
    ])


@pytest.fixture()
def scenario() -> CrossDomainDataset:
    """The Figure 1(a) hand-built scenario."""
    return interstellar_scenario()


@pytest.fixture(scope="session")
def small_config() -> SyntheticConfig:
    """A trace small enough for per-test pipelines."""
    return SyntheticConfig(
        n_users_source=120, n_users_target=120, n_overlap=40,
        n_items_source=120, n_items_target=110,
        ratings_per_user=12.0, seed=11)


@pytest.fixture(scope="session")
def small_trace(small_config) -> CrossDomainDataset:
    """A small but structurally complete two-domain trace."""
    return amazon_like(small_config)


@pytest.fixture(scope="session")
def small_split(small_trace):
    """Cold-start split of the small trace."""
    return cold_start_split(small_trace, seed=3)


@pytest.fixture()
def two_domain_micro() -> CrossDomainDataset:
    """A minimal two-domain dataset with one straddler for layer tests.

    ``s1`` rates movies m1, m2; ``x`` straddles (m2 + b1); ``t1`` rates
    books b1, b2; ``t2`` rates only b3 (isolated target item).
    Ratings vary so user-mean centering never degenerates.
    """
    movies = Dataset("m", RatingTable([
        Rating("s1", "m1", 5.0, 0),
        Rating("s1", "m2", 3.0, 1),
        Rating("s1", "m3", 1.0, 2),
        Rating("x", "m2", 5.0, 0),
        Rating("x", "m3", 2.0, 1),
    ]))
    books = Dataset("b", RatingTable([
        Rating("x", "b1", 5.0, 2),
        Rating("x", "b2", 2.0, 3),
        Rating("t1", "b1", 4.0, 0),
        Rating("t1", "b2", 2.0, 1),
        Rating("t1", "b3", 5.0, 2),
        Rating("t2", "b3", 3.0, 0),
        Rating("t2", "b2", 4.0, 1),
    ]))
    return CrossDomainDataset(movies, books)
