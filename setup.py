"""Legacy setuptools entry point.

Kept alongside pyproject.toml because offline environments without the
``wheel`` package need the --no-use-pep517 editable-install path.
"""
from setuptools import setup

setup()
