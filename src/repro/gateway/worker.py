"""The serving worker process: one memmapped model, one frame loop.

A worker is spawned by the :class:`~repro.gateway.supervisor.WorkerPool`
as a fresh interpreter (``python -m repro.gateway.worker``) holding one
end of a ``socketpair`` on an inherited file descriptor. It builds a
:class:`~repro.serving.watch.RegistryWatcher` over the shared snapshot
source — on the NumPy backend the model arrays are memory-mapped, so N
workers on one host share the bytes through the page cache — then
answers length-prefixed JSON requests strictly one at a time.

Convergence is two-speed:

* **idle**: the socket read times out every ``--poll-interval`` seconds
  and the worker polls its watcher, so a quiet worker still follows the
  publisher;
* **on demand**: every request carries the gateway's ``min_version``
  handshake. A worker that pins an older version polls once and retries
  immediately; if the source still has not caught up it answers a
  *retryable* ``stale`` error rather than serving the old model — the
  fleet never goes backwards in time from a client's point of view.

Three named fault points bracket the worker's life so the chaos
harness (:mod:`repro.faults`) can perturb it from the environment:
``gateway.worker.load`` before the snapshot source is opened (a kill
here is a death *during load*, before the first health OK; a delay is
a slow load), ``gateway.worker.request`` once per request frame
(SIGKILL mid-flight — ``REPRO_CRASH_POINT=gateway.worker.request:3``
still works, and a plan can also delay or inject retryable errors),
and ``gateway.worker.send`` inside every outgoing frame (drop /
corrupt / torn — see :mod:`repro.gateway.protocol`).

Two request-level contracts ride in the frame:

* ``budget_ms`` — the remaining deadline budget the gateway stamped at
  dispatch. A request whose budget is already exhausted (it sat behind
  a slow window or a retry storm) is answered with a ``deadline``
  error instead of being computed: late work is dead work, and
  skipping it is what keeps an overloaded fleet from queueing.
* ``allow_stale`` — the gateway's degraded-mode marker. The worker
  still polls once toward ``min_version``, but if the source has not
  caught up it serves the **freshest version it has** and tags the
  response ``stale: true`` (bounded staleness, explicit) instead of
  answering a retryable ``stale`` error.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time

from repro.errors import GatewayError, ReproError, StaleModelError
from repro.faults.plan import InjectedFault, fault_point
from repro.gateway.protocol import recv_frame, send_frame
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import TraceContext, event, span
from repro.serving.service import RecommendationService
from repro.serving.watch import RegistryWatcher

DEFAULT_POLL_INTERVAL = 0.2
DEFAULT_LOAD_TIMEOUT = 30.0

LOAD_FAULT_POINT = "gateway.worker.load"
REQUEST_FAULT_POINT = "gateway.worker.request"


def _error_response(kind: str, message: str, retryable: bool, **extra: object) -> dict:
    return {
        "ok": False,
        "error": {
            "type": kind,
            "message": message,
            "retryable": retryable,
            **extra,
        },
    }


class WorkerApp:
    """The request handlers, separated from the socket loop so tests
    can drive them directly."""

    def __init__(
        self,
        watcher: RegistryWatcher,
        service: RecommendationService,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.watcher = watcher
        self.service = service
        self.n_requests = 0
        #: the process-global registry by default: one worker process,
        #: one registry, snapshotted onto every health response so the
        #: gateway can aggregate the fleet.
        self.registry = registry if registry is not None else get_registry()
        self._m_requests = self.registry.counter(
            "worker_requests_total", "request frames handled, by method",
            labels=("method",),
        )
        self._m_serve_seconds = self.registry.histogram(
            "worker_request_seconds", "worker-side serve latency (reads)"
        )
        self._m_errors = self.registry.counter(
            "worker_errors_total", "error responses returned, by type",
            labels=("type",),
        )
        self._m_version = self.registry.gauge(
            "worker_version", "model version this worker currently pins"
        )
        self._m_loads = self.registry.counter(
            "worker_loads_total", "snapshot loads the watcher performed"
        )

    def _error(self, kind: str, message: str, retryable: bool, **extra: object) -> dict:
        self._m_errors.labels(kind).inc()
        return _error_response(kind, message, retryable, **extra)

    def handle(self, frame: dict) -> dict | None:
        """The response for one request frame; ``None`` means a clean
        shutdown was requested."""
        self.n_requests += 1
        method = frame.get("method")
        params = frame.get("params") or {}
        self._m_requests.labels(str(method)).inc()
        wire = frame.get("trace")
        trace = TraceContext.from_wire(wire).child() if wire is not None else None
        try:
            fault_point(REQUEST_FAULT_POINT)
        except InjectedFault as exc:
            event("worker.injected_fault", trace, error=str(exc))
            return self._error("injected", str(exc), retryable=True)
        if method == "shutdown":
            return None
        budget_ms = params.get("budget_ms")
        if budget_ms is not None and method in ("recommend", "similar_items"):
            try:
                exhausted = float(budget_ms) <= 0.0
            except (TypeError, ValueError):
                exhausted = False
            if exhausted:
                event("worker.deadline_reject", trace, budget_ms=budget_ms)
                return self._error(
                    "deadline",
                    "deadline budget exhausted before the worker began",
                    retryable=False,
                )
        try:
            if method == "health":
                return self._health()
            if method == "poll":
                self.watcher.poll()
                return {"ok": True, "version": self.watcher.version}
            if method == "recommend":
                with span("worker.serve", trace, self._m_serve_seconds,
                          method="recommend", pid=os.getpid()):
                    return self._recommend(params)
            if method == "similar_items":
                with span("worker.serve", trace, self._m_serve_seconds,
                          method="similar_items", pid=os.getpid()):
                    return self._similar_items(params)
        except StaleModelError as exc:
            return self._error(
                "stale",
                str(exc),
                retryable=True,
                version=exc.version,
                min_version=exc.min_version,
            )
        except ReproError as exc:
            return self._error(type(exc).__name__, str(exc), retryable=False)
        return self._error(
            "unknown_method",
            f"worker does not understand method {method!r}",
            retryable=False,
        )

    def _health(self) -> dict:
        # Export-on-scrape: the service's own counts bridge into the
        # registry only when a health frame asks, so the data hot path
        # pays nothing for them.
        self.service.export_metrics(self.registry)
        self._m_version.set(self.watcher.version)
        self._m_loads.set(self.watcher.n_loads)
        return {
            "ok": True,
            "version": self.watcher.version,
            "pid": os.getpid(),
            "n_requests": self.n_requests,
            "n_loads": self.watcher.n_loads,
            "metrics": self.registry.snapshot(),
        }

    def _fresh(self, min_version: int) -> None:
        """Converge before serving a request that requires a newer
        model than the local registry holds."""
        if min_version > self.watcher.version:
            self.watcher.poll()

    def _recommend(self, params: dict) -> dict:
        users = params.get("users")
        if not isinstance(users, list) or not users:
            raise GatewayError("recommend needs a non-empty 'users' list")
        n = int(params.get("n", 10))
        min_version = int(params.get("min_version", 0))
        allow_stale = bool(params.get("allow_stale"))
        self._fresh(min_version)
        version, results = self.service.recommend_batch_pinned(
            users, n, min_version=0 if allow_stale else min_version
        )
        response = {"ok": True, "version": version, "results": results}
        if allow_stale and version < min_version:
            response["stale"] = True
        return response

    def _similar_items(self, params: dict) -> dict:
        item = params.get("item")
        if not isinstance(item, str):
            raise GatewayError("similar_items needs an 'item' string")
        k = int(params.get("k", 10))
        minimum = params.get("minimum")
        if minimum is not None:
            minimum = float(minimum)
        min_version = int(params.get("min_version", 0))
        allow_stale = bool(params.get("allow_stale"))
        self._fresh(min_version)
        version, row = self.service.similar_items_pinned(
            item,
            k,
            minimum=minimum,
            min_version=0 if allow_stale else min_version,
        )
        response = {"ok": True, "version": version, "results": row}
        if allow_stale and version < min_version:
            response["stale"] = True
        return response


def wait_for_model(
    watcher: RegistryWatcher,
    timeout: float = DEFAULT_LOAD_TIMEOUT,
    interval: float = 0.05,
) -> int:
    """Poll until the source publishes a first version; the worker must
    not accept traffic while its registry is empty."""
    deadline = time.monotonic() + timeout
    while True:
        version = watcher.poll()
        if version is not None:
            return version
        if watcher.version > 0:
            return watcher.version
        if time.monotonic() >= deadline:
            raise GatewayError(
                f"no model appeared under {watcher.source} within "
                f"{timeout:.1f}s"
            )
        time.sleep(interval)


def serve(
    sock: socket.socket,
    app: WorkerApp,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
) -> None:
    """The frame loop: strictly one request, one response. Returns on
    clean EOF (the supervisor hung up) or an explicit shutdown.

    The watcher polls on two paths: the socket read times out every
    ``poll_interval`` when the worker is idle, and a **busy** worker
    polls between requests once the interval has elapsed — a saturated
    fleet must still converge on new versions, or the version handshake
    would start bouncing every request once one worker got ahead.
    """
    sock.settimeout(poll_interval)
    last_poll = time.monotonic()
    while True:
        try:
            frame = recv_frame(sock)
        except socket.timeout:
            app.watcher.poll()
            last_poll = time.monotonic()
            continue
        except GatewayError:
            return
        if frame is None:
            return
        response = app.handle(frame)
        if response is None:
            return
        try:
            send_frame(sock, response)
        except (BrokenPipeError, ConnectionResetError):
            return
        if time.monotonic() - last_poll >= poll_interval:
            app.watcher.poll()
            last_poll = time.monotonic()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway.worker",
        description="one serving worker of a gateway fleet",
    )
    parser.add_argument(
        "--fd",
        type=int,
        required=True,
        help="inherited socketpair file descriptor",
    )
    parser.add_argument(
        "--watch",
        required=True,
        help="snapshot source directory (catalog, durable store, or "
        "single snapshot)",
    )
    parser.add_argument("--pure-python", action="store_true")
    parser.add_argument("--poll-interval", type=float, default=DEFAULT_POLL_INTERVAL)
    parser.add_argument("--load-timeout", type=float, default=DEFAULT_LOAD_TIMEOUT)
    parser.add_argument("--row-cache-size", type=int, default=4096)
    parser.add_argument("--response-cache-size", type=int, default=1024)
    args = parser.parse_args(argv)

    sock = socket.socket(fileno=args.fd)
    use_numpy = False if args.pure_python else None
    # A kill here is a worker dying *during* snapshot load, before its
    # first health OK; a delay rule is a slow-loading source.
    fault_point(LOAD_FAULT_POINT)
    watcher = RegistryWatcher(args.watch, use_numpy=use_numpy)
    wait_for_model(watcher, timeout=args.load_timeout)
    service = RecommendationService(
        watcher.registry,
        row_cache_size=args.row_cache_size,
        response_cache_size=args.response_cache_size,
    )
    try:
        serve(sock, WorkerApp(watcher, service), args.poll_interval)
    finally:
        sock.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
