"""The asyncio HTTP front end: coalescing, shedding, degrading.

:class:`GatewayServer` is a stdlib-only HTTP/1.1 server (keep-alive,
JSON responses) in front of a
:class:`~repro.gateway.supervisor.WorkerPool`. Its job is the batching
economics the service layer already proved in-process
(``BENCH_service.json``: one vectorized ``recommend_batch`` pass is an
order of magnitude cheaper per user than per-request serving): many
concurrent ``/recommend`` clients are coalesced into one worker call.

The window is two-knobbed, both per-server:

* ``max_batch`` — a flush fires the moment this many requests are
  pending (a full window never waits);
* ``max_delay`` — the first request of a window starts a timer; a
  partial window flushes when it expires, so a lone request pays at
  most ``max_delay`` extra latency.

Flushes group pending requests by ``n`` (one worker call serves one
batch shape) and dispatch each group as its own task, so a second
window can fill — and route to a second worker — while the first is
still being scored: batching and multi-process parallelism compose
rather than serialise.

On top of the batching window the server is an **admission
controller**: at most ``max_inflight`` data requests run concurrently,
at most ``max_queue`` more may wait for a slot, and anything beyond
that is **shed immediately** with ``429 Too Many Requests`` and a
``Retry-After`` header. Shedding is the load-bearing choice: an
unbounded queue converts overload into unbounded latency for *every*
client (and, past the deadline, into wasted work — answers nobody is
waiting for), while a bounded queue keeps the served requests fast and
makes the overload explicit. A 429 is always a correct response;
a 30-second answer to a 1-second question never is.

Every data request runs under a **deadline budget**
(``request_timeout``, default the pool's ``call_timeout``); the pool
propagates the remaining budget to workers in the frame, so overload
sheds at the edge and deadlines kill dead work at the core.

``close()`` is a **graceful drain**: stop accepting new connections,
answer in-flight keep-alive requests with ``Connection: close``,
wait (bounded) for in-flight work, then reap the worker fleet — no
orphan processes, no abandoned sockets.

Endpoints::

    GET /recommend?user=alice&n=10      one user (coalesced)
    POST /recommend {"users": [...], "n": 10}   explicit batch
    GET /similar_items?item=tt0111161&k=10&minimum=0.2
    GET /healthz                        fleet + per-worker detail
    GET /metrics                        Prometheus text, fleet-merged

Every response — data, health, shed, error — carries an
``X-Request-Id`` header: the request's trace id (a well-formed
incoming ``X-Request-Id`` is honoured, anything else replaced), the
same id stamped on every server-side log line and protocol frame the
request touched. Counters live in a per-server
:class:`~repro.obs.metrics.MetricsRegistry`; ``/metrics`` merges it
with the pool's registry and the per-worker snapshots piggybacked on
health frames, so ``/healthz`` and ``/metrics`` read one source of
truth.

Every data response carries the model ``version`` that computed it —
single-valued by construction (the worker pinned exactly one version
for the whole batch). A response computed below the fleet's version
floor (only possible in ``allow_stale`` degraded mode) additionally
carries ``"stale": true``; the monotonic-reads promise is scoped to
non-stale responses, and the marker is what scopes it.

Error bodies are structured and **sanitized**: a machine-readable
``code`` plus a generic message. Internal details (worker pids,
filesystem paths, tracebacks) go to the ``repro.gateway`` logger, not
to the client — an error body that leaks ``/home/.../v-00000007``
is an information disclosure, not a diagnostic.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from urllib.parse import parse_qs, urlsplit

from repro.errors import GatewayError
from repro.gateway.supervisor import WorkerPool
from repro.obs.metrics import (
    BATCH_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.trace import TraceContext, event, span

DEFAULT_MAX_BATCH = 32
DEFAULT_MAX_DELAY = 0.002
DEFAULT_MAX_INFLIGHT = 64
DEFAULT_MAX_QUEUE = 128
DEFAULT_RETRY_AFTER = 1
_MAX_HEAD_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024

logger = logging.getLogger("repro.gateway")


def _error_body(code: str, message: str) -> dict:
    """A client-safe error payload: machine code + generic message.

    The ``error`` key stays a flat object with a stable shape; whatever
    internal detail produced it belongs in the server-side log."""
    return {"error": {"code": code, "message": message}}


class _Batcher:
    """Coalesce single-user recommend requests into worker batches.

    Single-threaded by construction — every method runs on the event
    loop — so the pending list needs no lock; the flush path just has
    to be careful to detach the list before awaiting anything.
    """

    def __init__(
        self,
        pool: WorkerPool,
        max_batch: int,
        max_delay: float,
        request_timeout: float | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_batch < 1:
            raise GatewayError(f"max_batch must be >= 1, got {max_batch}")
        self.pool = pool
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.request_timeout = request_timeout
        registry = registry if registry is not None else MetricsRegistry()
        self._m_flushes = registry.counter(
            "gateway_coalescer_flushes_total", "coalescing windows flushed"
        )
        self._m_coalesced = registry.counter(
            "gateway_coalesced_requests_total",
            "single-user requests that rode a coalescing window",
        )
        self._m_batch_size = registry.histogram(
            "gateway_coalesced_batch_size",
            "requests per flushed coalescing window",
            buckets=BATCH_BUCKETS,
        )
        self._pending: list[tuple[str, int, asyncio.Future, TraceContext | None]] = []
        self._timer: asyncio.TimerHandle | None = None

    @property
    def n_flushes(self) -> int:
        return int(self._m_flushes.value)

    @property
    def n_coalesced(self) -> int:
        return int(self._m_coalesced.value)

    async def submit(
        self, user: str, n: int, trace: TraceContext | None = None
    ) -> tuple[int, list, bool]:
        """One user's Top-N through the current window; resolves to
        ``(version, recommendations, stale)``."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((user, n, future, trace))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay, self._flush)
        return await future

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        window, self._pending = self._pending, []
        self._m_flushes.inc()
        self._m_coalesced.inc(len(window))
        self._m_batch_size.observe(float(len(window)))
        groups: dict[int, list[tuple[str, asyncio.Future, TraceContext | None]]] = {}
        for user, n, future, trace in window:
            groups.setdefault(n, []).append((user, future, trace))
        for n, group in groups.items():
            asyncio.ensure_future(self._dispatch(n, group))

    async def _dispatch(
        self, n: int, group: list[tuple[str, asyncio.Future, TraceContext | None]]
    ) -> None:
        users = [user for user, _, _ in group]
        # The batch travels under the first member's trace (one frame,
        # one trace); the flush event names every member so a batched
        # request's own id still leads to the worker-side span.
        first_trace = next((trace for _, _, trace in group if trace is not None), None)
        batch_trace = first_trace.child() if first_trace is not None else None
        event(
            "gateway.flush",
            batch_trace,
            batch_size=len(group),
            member_trace_ids=[
                trace.trace_id for _, _, trace in group if trace is not None
            ],
        )
        try:
            response = await self.pool.call(
                "recommend",
                {"users": users, "n": n},
                timeout=self.request_timeout,
                trace=batch_trace,
            )
        except Exception as exc:
            for _, future, _ in group:
                if not future.done():
                    future.set_exception(exc)
            return
        version = response["version"]
        stale = bool(response.get("stale"))
        for (_, future, _), result in zip(group, response["results"]):
            if not future.done():
                future.set_result((version, result, stale))


class GatewayServer:
    """The networked serving front end (see the module docstring)."""

    def __init__(
        self,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay: float = DEFAULT_MAX_DELAY,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        request_timeout: float | None = None,
        retry_after: int = DEFAULT_RETRY_AFTER,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_inflight < 1:
            raise GatewayError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise GatewayError(f"max_queue must be >= 0, got {max_queue}")
        self.pool = pool
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.request_timeout = (
            pool.call_timeout if request_timeout is None else request_timeout
        )
        self.retry_after = retry_after
        #: per-instance on purpose: tests run many gateways in one
        #: interpreter, and /healthz + /metrics must read *this*
        #: server's counts, not a process-wide blur.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.batcher = _Batcher(
            pool,
            max_batch,
            max_delay,
            request_timeout=self.request_timeout,
            registry=self.registry,
        )
        self._m_http_requests = self.registry.counter(
            "gateway_http_requests_total", "HTTP requests parsed at ingress"
        )
        self._m_responses = self.registry.counter(
            "gateway_http_responses_total",
            "HTTP responses written, by status code",
            labels=("code",),
        )
        self._m_shed = self.registry.counter(
            "gateway_shed_total", "data requests shed with 429 at admission"
        )
        self._m_stale = self.registry.counter(
            "gateway_stale_responses_total",
            "responses served carrying the stale marker",
        )
        self._m_request_seconds = self.registry.histogram(
            "gateway_request_seconds",
            "end-to-end HTTP request latency at the gateway",
        )
        self._m_uptime = self.registry.gauge(
            "gateway_uptime_seconds", "seconds since the listener bound"
        )
        self._m_inflight = self.registry.gauge(
            "gateway_inflight", "data requests currently executing"
        )
        self._m_queued = self.registry.gauge(
            "gateway_queued", "data requests waiting for an inflight slot"
        )
        self._started_monotonic: float | None = None
        self._inflight = 0
        self._waiting = 0
        self._slots = asyncio.Semaphore(max_inflight)
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._server: asyncio.AbstractServer | None = None

    # Legacy counter names — kept as views over the registry so the
    # registry is the single source of truth for /healthz and /metrics.
    @property
    def n_http_requests(self) -> int:
        return int(self._m_http_requests.value)

    @property
    def n_shed(self) -> int:
        return int(self._m_shed.value)

    @property
    def n_stale_responses(self) -> int:
        return int(self._m_stale.value)

    @property
    def uptime_s(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    async def start(self) -> None:
        """Bind and start accepting (workers must already be started);
        :attr:`port` holds the bound port afterwards (0 → ephemeral)."""
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self.port,
            limit=_MAX_HEAD_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()

    async def close(self) -> None:
        """Stop listening (idempotent); does not touch the pool."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self, grace: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, let in-flight requests
        finish (up to *grace* seconds), then reap the worker fleet.

        This is what the SIGTERM handler calls: after it returns, every
        process the pool ever spawned is dead and the listening socket
        is closed — a supervisor (systemd, k8s) observing the exit sees
        no orphans and no half-answered connections.
        """
        await self.close()
        try:
            await asyncio.wait_for(self._idle.wait(), grace)
        except asyncio.TimeoutError:
            logger.warning(
                "drain grace of %.1fs expired with %d requests in flight",
                grace,
                self._inflight,
            )
        await self.pool.close()

    async def serve_forever(self) -> None:  # pragma: no cover - CLI path
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------

    def _admit_nowait(self) -> bool:
        """Whether a new data request may even wait for a slot — the
        shed-or-queue decision, made before anything is awaited."""
        if self._inflight < self.max_inflight:
            return True
        return self._waiting < self.max_queue

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, target, headers, body = request
                self._m_http_requests.inc()
                trace = TraceContext.from_request_id(headers.get("x-request-id"))
                with span(
                    "gateway.request",
                    trace,
                    self._m_request_seconds,
                    method=method,
                    target=target,
                ) as request_span:
                    status, payload, extra = await self._route(
                        method, target, body, trace
                    )
                    request_span.fields["status"] = status
                self._m_responses.labels(str(status)).inc()
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                ) and not self._draining
                self._write_response(
                    writer, status, payload, keep_alive, extra,
                    request_id=trace.trace_id,
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except asyncio.CancelledError:
            # Loop shutdown with a keep-alive connection parked in
            # read: close the transport (via the finally below) but
            # let the cancellation propagate — a swallowed
            # CancelledError here would report the handler task as
            # having finished normally mid-shutdown.
            raise
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, dict, bytes] | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target, _http_version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, separator, value = line.partition(":")
            if separator:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        if length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | str,
        keep_alive: bool,
        extra_headers: dict[str, str] | None = None,
        request_id: str | None = None,
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   429: "Too Many Requests", 503: "Service Unavailable"}
        if isinstance(payload, str):  # /metrics exposition
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head_lines = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Error')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if request_id is not None:
            # Every response — 200s, sheds, errors — is correlatable
            # with the server-side lines that explain it.
            head_lines.append(f"X-Request-Id: {request_id}")
        for name, value in (extra_headers or {}).items():
            head_lines.append(f"{name}: {value}")
        head = "\r\n".join(head_lines) + "\r\n\r\n"
        writer.write(head.encode("latin-1") + body)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        trace: TraceContext | None = None,
    ) -> tuple[int, dict | str, dict[str, str] | None]:
        trace = trace if trace is not None else TraceContext()
        split = urlsplit(target)
        path = split.path
        query = {name: values[-1] for name, values in parse_qs(split.query).items()}
        if body:
            try:
                parsed = json.loads(body.decode("utf-8"))
            except ValueError:
                return (
                    400,
                    _error_body("bad_json", "request body is not valid JSON"),
                    None,
                )
            if not isinstance(parsed, dict):
                return (
                    400,
                    _error_body("bad_json", "request body must be an object"),
                    None,
                )
            query = {**parsed, **query}
        if path == "/healthz":
            status, payload = await self._healthz()
            return status, payload, None
        if path == "/metrics":
            return 200, await self._metrics(), None
        if path not in ("/recommend", "/similar_items"):
            return (
                404,
                _error_body("not_found", f"no such endpoint: {path}"),
                None,
            )
        if self._draining:
            return (
                503,
                _error_body("draining", "server is shutting down"),
                None,
            )
        if not self._admit_nowait():
            self._m_shed.inc()
            event("gateway.shed", trace, path=path, queued=self._waiting,
                  inflight=self._inflight)
            return (
                429,
                _error_body(
                    "overloaded",
                    "server is at capacity; retry after a backoff",
                ),
                {"Retry-After": str(self.retry_after)},
            )
        async with _AdmissionTicket(self):
            try:
                if path == "/recommend":
                    status, payload = await self._recommend(query, trace)
                else:
                    status, payload = await self._similar_items(query, trace)
            except GatewayError as exc:
                # Sanitized on the wire, detailed in the log: worker
                # ids, pids and filesystem paths stay server-side. The
                # trace id is the client's handle on this line — it is
                # what the response's X-Request-Id echoes back.
                logger.warning(
                    "upstream failure on %s (trace %s): %s",
                    path, trace.trace_id, exc,
                )
                event("gateway.upstream_error", trace, path=path, error=str(exc))
                return (
                    503,
                    _error_body(
                        "upstream_unavailable",
                        "no worker could serve the request",
                    ),
                    None,
                )
            except (TypeError, ValueError) as exc:
                return (
                    400,
                    _error_body("bad_request", f"bad request: {exc}"),
                    None,
                )
        return status, payload, None

    async def _healthz(self) -> tuple[int, dict]:
        stats = self.pool.stats()
        healthy = stats["alive"] > 0 and not self._draining
        payload = {
            "status": (
                "draining"
                if self._draining
                else ("ok" if stats["alive"] > 0 else "unavailable")
            ),
            "version": stats["fleet_version"],
            "uptime_s": round(self.uptime_s, 3),
            "workers": stats,
            "fleet": self.pool.worker_details(),
            "http_requests": self.n_http_requests,
            "shed": self.n_shed,
            "inflight": self._inflight,
            "queued": self._waiting,
            "batch": {
                "flushes": self.batcher.n_flushes,
                "coalesced": self.batcher.n_coalesced,
            },
        }
        return (200 if healthy else 503), payload

    async def _metrics(self) -> str:
        """Prometheus-text exposition of the whole fleet: this server's
        registry merged with the pool's and with every worker registry
        snapshot the pool holds (piggybacked on health frames)."""
        self._m_uptime.set(self.uptime_s)
        self._m_inflight.set(self._inflight)
        self._m_queued.set(self._waiting)
        snapshots = [self.registry.snapshot()]
        collect = getattr(self.pool, "collect_metrics", None)
        if collect is not None:
            snapshots.extend(await collect())
        return render_prometheus(merge_snapshots(*snapshots))

    def _finish(self, payload: dict) -> tuple[int, dict]:
        if payload.get("stale"):
            self._m_stale.inc()
        return 200, payload

    async def _recommend(
        self, query: dict, trace: TraceContext | None = None
    ) -> tuple[int, dict]:
        n = int(query.get("n", 10))
        users = query.get("users")
        if users is not None:
            if not isinstance(users, list) or not users:
                return 400, _error_body(
                    "bad_request", "'users' must be a non-empty list"
                )
            response = await self.pool.call(
                "recommend",
                {"users": users, "n": n},
                timeout=self.request_timeout,
                trace=trace,
            )
            payload = {
                "version": response["version"],
                "users": users,
                "recommendations": response["results"],
            }
            if response.get("stale"):
                payload["stale"] = True
            return self._finish(payload)
        user = query.get("user")
        if not user:
            return 400, _error_body(
                "bad_request", "missing 'user' (or 'users') parameter"
            )
        version, result, stale = await self.batcher.submit(str(user), n, trace)
        payload = {
            "version": version,
            "user": user,
            "recommendations": result,
        }
        if stale:
            payload["stale"] = True
        return self._finish(payload)

    async def _similar_items(
        self, query: dict, trace: TraceContext | None = None
    ) -> tuple[int, dict]:
        item = query.get("item")
        if not item:
            return 400, _error_body("bad_request", "missing 'item' parameter")
        params: dict = {"item": str(item), "k": int(query.get("k", 10))}
        if query.get("minimum") is not None:
            params["minimum"] = float(query["minimum"])
        response = await self.pool.call(
            "similar_items", params, timeout=self.request_timeout, trace=trace
        )
        payload = {
            "version": response["version"],
            "item": item,
            "neighbors": response["results"],
        }
        if response.get("stale"):
            payload["stale"] = True
        return self._finish(payload)


class _AdmissionTicket:
    """One data request's occupancy of the admission window: a bounded
    wait for an inflight slot, bookkeeping on both edges, and the
    idle event the drain path waits on."""

    def __init__(self, server: GatewayServer) -> None:
        self.server = server

    async def __aenter__(self) -> "_AdmissionTicket":
        server = self.server
        server._waiting += 1
        server._idle.clear()
        try:
            await server._slots.acquire()
        finally:
            server._waiting -= 1
        server._inflight += 1
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        server = self.server
        server._inflight -= 1
        server._slots.release()
        if server._inflight == 0 and server._waiting == 0:
            server._idle.set()
