"""The asyncio HTTP front end: coalescing concurrent requests.

:class:`GatewayServer` is a stdlib-only HTTP/1.1 server (keep-alive,
JSON responses) in front of a
:class:`~repro.gateway.supervisor.WorkerPool`. Its job is the batching
economics the service layer already proved in-process
(``BENCH_service.json``: one vectorized ``recommend_batch`` pass is an
order of magnitude cheaper per user than per-request serving): many
concurrent ``/recommend`` clients are coalesced into one worker call.

The window is two-knobbed, both per-server:

* ``max_batch`` — a flush fires the moment this many requests are
  pending (a full window never waits);
* ``max_delay`` — the first request of a window starts a timer; a
  partial window flushes when it expires, so a lone request pays at
  most ``max_delay`` extra latency.

Flushes group pending requests by ``n`` (one worker call serves one
batch shape) and dispatch each group as its own task, so a second
window can fill — and route to a second worker — while the first is
still being scored: batching and multi-process parallelism compose
rather than serialise.

Endpoints::

    GET /recommend?user=alice&n=10      one user (coalesced)
    POST /recommend {"users": [...], "n": 10}   explicit batch
    GET /similar_items?item=tt0111161&k=10&minimum=0.2
    GET /healthz

Every data response carries the model ``version`` that computed it —
single-valued by construction (the worker pinned exactly one version
for the whole batch), which is what the smoke gate asserts when it
diffs gateway responses against an in-process reference during a live
publish.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

from repro.errors import GatewayError
from repro.gateway.supervisor import WorkerPool

DEFAULT_MAX_BATCH = 32
DEFAULT_MAX_DELAY = 0.002
_MAX_HEAD_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024


class _Batcher:
    """Coalesce single-user recommend requests into worker batches.

    Single-threaded by construction — every method runs on the event
    loop — so the pending list needs no lock; the flush path just has
    to be careful to detach the list before awaiting anything.
    """

    def __init__(
        self, pool: WorkerPool, max_batch: int, max_delay: float
    ) -> None:
        if max_batch < 1:
            raise GatewayError(f"max_batch must be >= 1, got {max_batch}")
        self.pool = pool
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.n_flushes = 0
        self.n_coalesced = 0
        self._pending: list[tuple[str, int, asyncio.Future]] = []
        self._timer: asyncio.TimerHandle | None = None

    async def submit(self, user: str, n: int) -> tuple[int, list]:
        """One user's Top-N through the current window; resolves to
        ``(version, recommendations)``."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((user, n, future))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay, self._flush)
        return await future

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        window, self._pending = self._pending, []
        self.n_flushes += 1
        self.n_coalesced += len(window)
        groups: dict[int, list[tuple[str, asyncio.Future]]] = {}
        for user, n, future in window:
            groups.setdefault(n, []).append((user, future))
        for n, group in groups.items():
            asyncio.ensure_future(self._dispatch(n, group))

    async def _dispatch(
        self, n: int, group: list[tuple[str, asyncio.Future]]
    ) -> None:
        users = [user for user, _ in group]
        try:
            response = await self.pool.call(
                "recommend", {"users": users, "n": n}
            )
        except Exception as exc:
            for _, future in group:
                if not future.done():
                    future.set_exception(exc)
            return
        version = response["version"]
        for (_, future), result in zip(group, response["results"]):
            if not future.done():
                future.set_result((version, result))


class GatewayServer:
    """The networked serving front end (see the module docstring)."""

    def __init__(
        self,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay: float = DEFAULT_MAX_DELAY,
    ) -> None:
        self.pool = pool
        self.host = host
        self.port = port
        self.batcher = _Batcher(pool, max_batch, max_delay)
        self.n_http_requests = 0
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start accepting (workers must already be started);
        :attr:`port` holds the bound port afterwards (0 → ephemeral)."""
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self.port,
            limit=_MAX_HEAD_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:  # pragma: no cover - CLI path
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, target, headers, body = request
                self.n_http_requests += 1
                status, payload = await self._route(method, target, body)
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                self._write_response(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except asyncio.CancelledError:
            # Loop shutdown with a keep-alive connection parked in
            # read: finish quietly instead of surfacing a cancelled
            # handler task.
            return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, dict, bytes] | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target, _http_version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, separator, value = line.partition(":")
            if separator:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        if length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   503: "Service Unavailable"}
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict]:
        split = urlsplit(target)
        path = split.path
        query = {
            name: values[-1]
            for name, values in parse_qs(split.query).items()
        }
        if body:
            try:
                parsed = json.loads(body.decode("utf-8"))
            except ValueError:
                return 400, {"error": "request body is not valid JSON"}
            if not isinstance(parsed, dict):
                return 400, {"error": "request body must be an object"}
            query = {**parsed, **query}
        try:
            if path == "/healthz":
                return await self._healthz()
            if path == "/recommend":
                return await self._recommend(query)
            if path == "/similar_items":
                return await self._similar_items(query)
        except GatewayError as exc:
            return 503, {"error": str(exc)}
        except (TypeError, ValueError) as exc:
            return 400, {"error": f"bad request: {exc}"}
        return 404, {"error": f"no such endpoint: {path}"}

    async def _healthz(self) -> tuple[int, dict]:
        stats = self.pool.stats()
        healthy = stats["alive"] > 0
        payload = {
            "status": "ok" if healthy else "unavailable",
            "version": stats["fleet_version"],
            "workers": stats,
            "http_requests": self.n_http_requests,
            "batch": {
                "flushes": self.batcher.n_flushes,
                "coalesced": self.batcher.n_coalesced,
            },
        }
        return (200 if healthy else 503), payload

    async def _recommend(self, query: dict) -> tuple[int, dict]:
        n = int(query.get("n", 10))
        users = query.get("users")
        if users is not None:
            if not isinstance(users, list) or not users:
                return 400, {"error": "'users' must be a non-empty list"}
            response = await self.pool.call(
                "recommend", {"users": users, "n": n}
            )
            return 200, {
                "version": response["version"],
                "users": users,
                "recommendations": response["results"],
            }
        user = query.get("user")
        if not user:
            return 400, {"error": "missing 'user' (or 'users') parameter"}
        version, result = await self.batcher.submit(str(user), n)
        return 200, {
            "version": version,
            "user": user,
            "recommendations": result,
        }

    async def _similar_items(self, query: dict) -> tuple[int, dict]:
        item = query.get("item")
        if not item:
            return 400, {"error": "missing 'item' parameter"}
        params: dict = {"item": str(item), "k": int(query.get("k", 10))}
        if query.get("minimum") is not None:
            params["minimum"] = float(query["minimum"])
        response = await self.pool.call("similar_items", params)
        return 200, {
            "version": response["version"],
            "item": item,
            "neighbors": response["results"],
        }
