"""The gateway ↔ worker wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON. The framing is deliberately primitive — both ends
are this repository, the transport is an inherited ``socketpair`` —
but it is **self-delimiting** (a reader always knows where a message
ends, so request/response never desynchronise) and **EOF-honest** (a
dead peer reads as a clean ``None`` / ``IncompleteReadError`` at a
frame boundary, or a :class:`~repro.errors.GatewayError` mid-frame,
which is how the supervisor detects worker death without signals).

Requests and responses are plain dicts::

    {"method": "recommend", "params": {"users": [...], "n": 10,
                                       "min_version": 3},
     "trace": {"trace_id": "9f2c…", "span_id": "41ab…"}}
    {"ok": true, "version": 3, "results": [...]}
    {"ok": false, "error": {"type": "stale", "retryable": true,
                            "message": "..."}}

The optional top-level ``"trace"`` field is the request's
:class:`~repro.obs.trace.TraceContext` on the wire — the gateway
stamps it at dispatch so the worker's spans and log lines carry the
same ``trace_id`` the HTTP client got back as ``X-Request-Id``. A
frame without it (old callers, direct tests) still serves; tracing is
correlation, not protocol. Health responses ride the other direction:
each carries the worker registry's ``"metrics"`` snapshot, which is
how per-process metrics aggregate fleet-wide without another channel.

Sync helpers (:func:`send_frame` / :func:`recv_frame`) serve the
blocking worker loop; async twins (:func:`write_frame` /
:func:`read_frame`) serve the asyncio supervisor. Both speak the same
bytes.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import time

from repro.errors import GatewayError
from repro.faults.plan import frame_fault

#: the named fault point every worker→gateway frame passes through —
#: a seeded :class:`~repro.faults.plan.FaultPlan` can delay, drop,
#: corrupt or tear the frame here (see :func:`send_frame`).
SEND_FAULT_POINT = "gateway.worker.send"

HEADER_BYTES = 4
#: Refuse frames above this size — a corrupt header must not make a
#: reader try to allocate gigabytes. Generous for real traffic (a
#: 10k-user batch of Top-100 responses is ~2 MB).
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(payload: dict) -> bytes:
    """The wire bytes for one message (header + JSON body)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise GatewayError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return len(body).to_bytes(HEADER_BYTES, "big") + body


def _decode_body(header: bytes, body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except ValueError as exc:
        raise GatewayError(f"malformed frame payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise GatewayError(
            f"frame payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload


def _length_of(header: bytes) -> int:
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise GatewayError(
            f"frame header claims {length} bytes "
            f"(limit {MAX_FRAME_BYTES}); stream is corrupt"
        )
    return length


# ----------------------------------------------------------------------
# Blocking side (the worker loop)
# ----------------------------------------------------------------------


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Send one frame (the worker side of the pair).

    This is the transport fault surface: an armed fault plan can delay
    the frame, drop it entirely (the supervisor observes a hang and
    kills the worker), corrupt the length header (the supervisor
    detects a corrupt stream), or tear it — half the bytes followed by
    a real ``SIGKILL``, the strongest mid-frame death a test can
    inject. Payload bytes are never mutated: a flipped digit could
    produce valid-but-wrong JSON, which a correctness harness must
    never inject below its own oracle.
    """
    data = encode_frame(payload)
    rule = frame_fault(SEND_FAULT_POINT)
    if rule is not None:
        if rule.kind == "delay":
            time.sleep(rule.delay_s)
        elif rule.kind == "drop":
            return
        elif rule.kind == "corrupt":
            data = (MAX_FRAME_BYTES + 1).to_bytes(HEADER_BYTES, "big") + data[
                HEADER_BYTES:
            ]
        elif rule.kind == "torn":  # pragma: no cover - kills the process
            sock.sendall(data[: max(1, len(data) // 2)])
            os.kill(os.getpid(), signal.SIGKILL)
    sock.sendall(data)


def _recv_exact(sock: socket.socket, n: int, at_boundary: bool) -> bytes | None:
    """Exactly *n* bytes from *sock*.

    ``None`` means the peer closed at a frame boundary (only honoured
    when *at_boundary*). A socket timeout is only allowed to escape
    between frames — once a frame has started, the reader keeps
    waiting, so a slow sender can never desynchronise the stream.
    """
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except socket.timeout:
            if not buf and at_boundary:
                raise
            continue
        if not chunk:
            if not buf and at_boundary:
                return None
            raise GatewayError(f"peer closed mid-frame ({len(buf)}/{n} bytes)")
        buf.extend(chunk)
    return bytes(buf)


def recv_frame(sock: socket.socket) -> dict | None:
    """The next frame, or ``None`` on clean EOF.

    Raises ``socket.timeout`` only between frames (the worker uses the
    gap to poll its watcher) and :class:`~repro.errors.GatewayError`
    on a torn or corrupt stream.
    """
    header = _recv_exact(sock, HEADER_BYTES, at_boundary=True)
    if header is None:
        return None
    length = _length_of(header)
    body = _recv_exact(sock, length, at_boundary=False)
    return _decode_body(header, body)


# ----------------------------------------------------------------------
# Async side (the supervisor)
# ----------------------------------------------------------------------


def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(encode_frame(payload))


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """The next frame, or ``None`` on clean EOF (a worker that died
    between requests). Mid-frame EOF — a worker killed while replying
    — surfaces as :class:`~repro.errors.GatewayError`."""
    header = await reader.read(HEADER_BYTES)
    if not header:
        return None
    while len(header) < HEADER_BYTES:
        more = await reader.read(HEADER_BYTES - len(header))
        if not more:
            raise GatewayError("peer closed mid-frame (header)")
        header += more
    length = _length_of(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise GatewayError(
            f"peer closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return _decode_body(header, body)
