"""The networked serving tier: HTTP gateway over a worker fleet.

This package is the first multi-process layer of the system — the
point where the in-process serving stack (`repro.serving`) becomes a
topology::

            clients (HTTP/1.1 keep-alive)
                      │
              GatewayServer            asyncio, stdlib only
          coalesce → batch windows     (max_batch / max_delay)
                      │
               WorkerPool              checkout routing, retries,
          version handshake (min_version), restart-on-death
              │              │
         worker proc …  worker proc    fresh interpreters over a
         RegistryWatcher → memmapped   socketpair; each watches the
         ModelSnapshot → Recommendation shared snapshot source and
         Service (version-pinned)       serves one pinned version
              └──────┬───────┘
            shared snapshot source     SnapshotCatalog / DurableSweep
            (page cache shared)        store / plain snapshot dir

Guarantees, in one line each: every response is computed under exactly
one model version (pinning); no **non-stale** response is ever
computed from a model older than one the fleet already served (the
``min_version`` handshake → monotonic reads; degraded-mode responses
step outside the floor and say so with ``stale: true``); worker death
is retried or cleanly failed, never hung (checkout + deadline budget +
per-slot restart loop); a crash-looping worker is rate-limited by its
slot's circuit breaker, not respawned at full speed; overload is shed
at the edge (429) instead of queueing without bound.
"""

# repro.gateway.worker is deliberately NOT imported here: the package
# must stay importable before ``python -m repro.gateway.worker`` runs
# the module as ``__main__`` (importing it from the package first makes
# runpy execute a second copy).
from repro.gateway.server import GatewayServer
from repro.gateway.supervisor import CircuitBreaker, WorkerHandle, WorkerPool

__all__ = [
    "CircuitBreaker",
    "GatewayServer",
    "WorkerHandle",
    "WorkerPool",
]
