"""Load generation against a running gateway, stdlib-only.

Two arrival disciplines, because they answer different questions:

* **closed loop** (:func:`run_closed_loop`) — C clients issue requests
  back-to-back over keep-alive connections. Throughput-seeking: it
  measures the capacity of the serving path (what ``qps`` can the
  gateway sustain), and per-request latency excludes client-side
  queueing by construction.
* **open loop** (:func:`run_open_loop`) — a Poisson process schedules
  arrivals at a target rate λ (exponential inter-arrival gaps) and
  latency is measured **from the scheduled arrival time**, so requests
  that queue behind a slow window are charged for the wait. This is
  the honest tail-latency discipline: a closed loop self-throttles
  around slowness and hides exactly the p99/p999 behaviour an SLA
  cares about (the coordinated-omission trap).

Workers are threads (the load is network-bound; the GIL releases on
socket waits) with one persistent ``http.client`` connection each.
Reports carry p50/p90/p99/p999 latency, achieved qps, error counts,
and every distinct model version observed — the bench uses the last to
prove responses stayed single-versioned during live publishes.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import GatewayError


def percentile(sorted_values: list[float], q: float) -> float:
    """The *q*-quantile (0 ≤ q ≤ 1) of an ascending list, by the
    nearest-rank method the serving benches use."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


def summarize(
    latencies_s: list[float],
    elapsed_s: float,
    errors: int,
    versions: set[int],
    shed: int = 0,
    stale: int = 0,
) -> dict:
    """A latency/throughput report dict (latencies in milliseconds).

    ``qps`` counts successfully answered requests only — it is the
    **goodput**. Shed requests (HTTP 429) are reported separately from
    errors: a shed is the server keeping its latency promise under
    overload, not a failure to answer correctly.
    """
    ordered = sorted(latencies_s)
    count = len(ordered)
    return {
        "n_requests": count,
        "errors": errors,
        "shed": shed,
        "stale": stale,
        "elapsed_s": elapsed_s,
        "qps": count / elapsed_s if elapsed_s > 0 else 0.0,
        "versions": sorted(versions),
        "latency_ms": {
            "mean": (sum(ordered) / count * 1000.0) if count else 0.0,
            "p50": percentile(ordered, 0.50) * 1000.0,
            "p90": percentile(ordered, 0.90) * 1000.0,
            "p99": percentile(ordered, 0.99) * 1000.0,
            "p999": percentile(ordered, 0.999) * 1000.0,
            "max": (ordered[-1] * 1000.0) if count else 0.0,
        },
    }


class GatewayClient:
    """A minimal keep-alive JSON client for one gateway."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: the ``X-Request-Id`` of the most recent response — what a
        #: client quotes to correlate a failure with server-side logs.
        self.last_request_id: str | None = None
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def request(self, target: str) -> tuple[int, dict]:
        """One GET round trip returning ``(status, payload)``;
        reconnects once on a dropped keep-alive connection. Callers
        that care about shedding/degradation inspect the status (429 =
        shed, 200 + ``stale`` marker = degraded) instead of treating
        every non-200 as one undifferentiated failure."""
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request("GET", target)
                response = conn.getresponse()
                body = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                OSError,
            ) as exc:
                self.close()
                if attempt:
                    raise GatewayError(f"request to {target} failed: {exc}") from exc
        self.last_request_id = response.getheader("X-Request-Id")
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        try:
            payload = json.loads(body.decode("utf-8"))
        except ValueError:
            payload = {}
        if not isinstance(payload, dict):
            payload = {}
        return response.status, payload

    def get(self, target: str) -> dict:
        """One GET round trip; raises
        :class:`~repro.errors.GatewayError` on any non-200 status."""
        status, payload = self.request(target)
        if status != 200:
            raise GatewayError(f"{target} -> HTTP {status}: {payload!r}")
        return payload

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None


def _recommend_target(user: str, n: int) -> str:
    return f"/recommend?user={user}&n={n}"


def run_serial_baseline(
    host: str,
    port: int,
    users: list[str],
    n: int,
    n_requests: int,
) -> dict:
    """The un-batched floor: ONE client, strictly sequential requests.

    Every request has the gateway to itself, so each pays a full
    round trip plus an unshared (single-user) scoring pass — the
    number batched serving has to beat.
    """
    client = GatewayClient(host, port)
    latencies: list[float] = []
    versions: set[int] = set()
    errors = 0
    started = time.perf_counter()
    for i in range(n_requests):
        user = users[i % len(users)]
        t0 = time.perf_counter()
        try:
            payload = client.get(_recommend_target(user, n))
        except GatewayError:
            errors += 1
            continue
        latencies.append(time.perf_counter() - t0)
        versions.add(payload["version"])
    elapsed = time.perf_counter() - started
    client.close()
    return summarize(latencies, elapsed, errors, versions)


def run_closed_loop(
    host: str,
    port: int,
    users: list[str],
    n: int,
    concurrency: int,
    requests_per_client: int,
) -> dict:
    """Capacity probe: *concurrency* clients, back-to-back requests."""
    latencies: list[float] = []
    versions: set[int] = set()
    errors = 0
    shed = 0
    stale = 0
    lock = threading.Lock()

    def client_loop(client_id: int) -> None:
        nonlocal errors, shed, stale
        client = GatewayClient(host, port)
        local_latencies: list[float] = []
        local_versions: set[int] = set()
        local_errors = local_shed = local_stale = 0
        for i in range(requests_per_client):
            user = users[(client_id + i * concurrency) % len(users)]
            t0 = time.perf_counter()
            try:
                status, payload = client.request(_recommend_target(user, n))
            except GatewayError:
                local_errors += 1
                continue
            if status == 429:
                local_shed += 1
                continue
            if status != 200:
                local_errors += 1
                continue
            local_latencies.append(time.perf_counter() - t0)
            local_versions.add(payload["version"])
            if payload.get("stale"):
                local_stale += 1
        client.close()
        with lock:
            latencies.extend(local_latencies)
            versions.update(local_versions)
            errors += local_errors
            shed += local_shed
            stale += local_stale

    threads = [
        threading.Thread(target=client_loop, args=(client_id,))
        for client_id in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    report = summarize(latencies, elapsed, errors, versions, shed=shed, stale=stale)
    report["discipline"] = "closed"
    report["concurrency"] = concurrency
    return report


def run_open_loop(
    host: str,
    port: int,
    users: list[str],
    n: int,
    rate_qps: float,
    duration_s: float,
    max_workers: int = 64,
    seed: int = 0,
) -> dict:
    """Poisson arrivals at *rate_qps* for *duration_s* seconds.

    Latency is measured from each request's **scheduled** arrival —
    a request delayed behind a slow batch window or a worker restart
    accrues that delay — so the tail percentiles are
    coordinated-omission-free.
    """
    rng = random.Random(seed)
    arrivals: list[float] = []
    clock = 0.0
    while clock < duration_s:
        clock += rng.expovariate(rate_qps)
        if clock < duration_s:
            arrivals.append(clock)
    local = threading.local()
    latencies: list[float] = []
    versions: set[int] = set()
    errors = 0
    shed = 0
    stale = 0
    lock = threading.Lock()

    def fire(user: str, scheduled_at: float, epoch: float) -> None:
        nonlocal errors, shed, stale
        client = getattr(local, "client", None)
        if client is None:
            client = GatewayClient(host, port)
            local.client = client
        delay = (epoch + scheduled_at) - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            status, payload = client.request(_recommend_target(user, n))
        except GatewayError:
            with lock:
                errors += 1
            return
        if status == 429:
            with lock:
                shed += 1
            return
        if status != 200:
            with lock:
                errors += 1
            return
        latency = time.perf_counter() - (epoch + scheduled_at)
        with lock:
            latencies.append(latency)
            versions.add(payload["version"])
            if payload.get("stale"):
                stale += 1

    with ThreadPoolExecutor(max_workers=max_workers) as executor:
        epoch = time.perf_counter()
        futures = [
            executor.submit(fire, users[i % len(users)], scheduled_at, epoch)
            for i, scheduled_at in enumerate(arrivals)
        ]
        for future in futures:
            future.result()
    elapsed = time.perf_counter() - epoch
    report = summarize(latencies, elapsed, errors, versions, shed=shed, stale=stale)
    report["discipline"] = "poisson"
    report["offered_qps"] = rate_qps
    report["n_scheduled"] = len(arrivals)
    return report
