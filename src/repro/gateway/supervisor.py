"""The worker fleet supervisor: spawn, route, retry, restart — hardened.

The :class:`WorkerPool` owns N worker **slots**. Each slot runs a
sequence of worker subprocesses — a fresh interpreter (no fork)
connected over a ``socketpair`` inherited as a file descriptor, so
worker death is observable as plain EOF on the pair — governed by its
own :class:`CircuitBreaker`:

* every death or failed spawn raises the slot's consecutive-failure
  count, and the next respawn waits an **exponential backoff with
  jitter** (a bad snapshot source throttles to the backoff cap instead
  of crash-looping the host at full speed);
* at ``breaker_threshold`` consecutive failures the breaker **trips
  open**: the slot is quarantined for the backoff delay, then spawns a
  single **half-open probe**. The probe joins the rotation; its first
  successfully served request closes the breaker, its first failure
  re-opens it with a doubled delay;
* a worker that either serves a request or survives
  ``healthy_lifetime`` seconds resets the count — deaths of long-lived
  workers are ordinary churn, not a failure streak.

Routing is checkout-based: one request occupies one worker at a time,
and a worker returns to the idle queue the moment its response
arrives. Per request the pool now enforces a **deadline budget**: the
whole retry loop — checkout waits, attempts, stale backoffs — runs
against one deadline, and every dispatched frame carries the remaining
budget as ``budget_ms`` so a worker can refuse dead work instead of
computing an answer nobody is waiting for.

Two optional read-side behaviours (reads are idempotent, which is what
makes both safe):

* **hedged reads** (``hedge_delay``): when an in-flight read has not
  answered within the threshold and a sibling is idle, the frame is
  duplicated to the sibling and the first answer wins — a stuck or
  slow worker costs one hedge, not a timeout. The loser finishes in
  the background and re-enters rotation.
* **bounded-staleness degradation** (``allow_stale``): when the fresh
  retry loop cannot satisfy the fleet's ``min_version`` floor within
  the deadline (every worker behind, source unreadable), a reserved
  slice of the budget re-issues the read with ``allow_stale`` and the
  response is served from the freshest version a worker holds, tagged
  ``stale: true`` — an explicit, bounded-staleness answer instead of a
  failure.

The pool still carries the fleet-wide version handshake: every
successful response advances :attr:`fleet_version`, every read is
stamped with it as ``min_version``, and only non-stale responses are
promised monotone — the ``stale`` marker is exactly the flag that says
"this one stepped outside the floor, deliberately".
"""

from __future__ import annotations

import asyncio
import os
import random
import socket
import subprocess
import sys
from pathlib import Path

from repro.errors import GatewayError
from repro.faults.plan import SPAWN_SEQ_ENV
from repro.gateway.protocol import read_frame, write_frame
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.trace import TraceContext, event

DEFAULT_CALL_TIMEOUT = 30.0
DEFAULT_STALE_BACKOFF = 0.05
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BACKOFF_BASE = 0.1
DEFAULT_BACKOFF_CAP = 5.0
DEFAULT_HEALTHY_LIFETIME = 10.0

#: the idempotent read methods — the only ones stamped with the
#: version floor, hedged, or served stale.
READ_METHODS = ("recommend", "similar_items")


def _worker_pythonpath() -> str:
    """A PYTHONPATH under which ``import repro`` resolves to the same
    package the supervisor is running."""
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    if not existing:
        return package_root
    if package_root in existing.split(os.pathsep):
        return existing
    return package_root + os.pathsep + existing


class CircuitBreaker:
    """Consecutive-failure circuit breaker + respawn backoff for one
    worker slot.

    States: ``closed`` (normal), ``open`` (quarantined — respawn waits
    out :meth:`next_delay`), ``half_open`` (a probe worker is in
    rotation; the next outcome decides). The backoff delay is
    exponential in the consecutive-failure count with equal jitter
    (uniform in [ceiling/2, ceiling]), capped at ``max_delay`` — the
    jitter keeps a fleet of slots from thundering back in lockstep,
    the floor keeps a crash loop genuinely rate-limited.
    """

    def __init__(
        self,
        threshold: int = DEFAULT_BREAKER_THRESHOLD,
        base_delay: float = DEFAULT_BACKOFF_BASE,
        max_delay: float = DEFAULT_BACKOFF_CAP,
        rng: random.Random | None = None,
        on_transition=None,
    ) -> None:
        if threshold < 1:
            raise GatewayError(f"threshold must be >= 1, got {threshold}")
        if base_delay <= 0 or max_delay < base_delay:
            raise GatewayError(
                f"need 0 < base_delay <= max_delay, got "
                f"{base_delay}/{max_delay}"
            )
        self.threshold = threshold
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.rng = rng if rng is not None else random.Random()
        self.state = "closed"
        self.consecutive_failures = 0
        self.n_trips = 0
        #: optional ``callback(old_state, new_state)`` fired on every
        #: state change — the pool counts transitions through it.
        self.on_transition = on_transition

    def _transition(self, state: str) -> None:
        if state != self.state:
            old, self.state = self.state, state
            if self.on_transition is not None:
                self.on_transition(old, state)

    def record_failure(self) -> None:
        """One more consecutive failure; trips the breaker at the
        threshold (immediately when the half-open probe failed)."""
        self.consecutive_failures += 1
        if (self.state == "half_open" or self.consecutive_failures >= self.threshold):
            if self.state != "open":
                self.n_trips += 1
            self._transition("open")

    def record_success(self) -> None:
        """A worker served: close the breaker, reset the streak."""
        self.consecutive_failures = 0
        self._transition("closed")

    def on_probe(self) -> None:
        """A replacement came up while open: it is the half-open probe."""
        if self.state == "open":
            self._transition("half_open")

    def next_delay(self) -> float:
        """Seconds to wait before the next spawn attempt (0 on a clean
        streak)."""
        if self.consecutive_failures <= 0:
            return 0.0
        ceiling = min(
            self.max_delay,
            self.base_delay * (2 ** (self.consecutive_failures - 1)),
        )
        return self.rng.uniform(ceiling / 2, ceiling)


class WorkerHandle:
    """One live worker subprocess and its frame stream."""

    def __init__(
        self,
        worker_id: int,
        proc: subprocess.Popen,
        sock: socket.socket,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        slot: "WorkerSlot | None" = None,
    ) -> None:
        self.worker_id = worker_id
        self.proc = proc
        self.sock = sock
        self.reader = reader
        self.writer = writer
        self.slot = slot
        self.alive = True
        self.n_calls = 0
        self.version = 0
        self.spawned_at = 0.0
        #: event-loop clock of the last OK response — what lets
        #: /healthz tell a hung-but-alive worker from an idle one.
        self.last_served_monotonic = 0.0

    @property
    def pid(self) -> int:
        return self.proc.pid

    async def call(self, payload: dict, timeout: float) -> dict:
        """One request/response round trip. Any failure mode —
        timeout, EOF, torn frame — is surfaced as
        :class:`~repro.errors.GatewayError` after the worker has been
        killed, so the caller only ever retries against a dead
        (restarting) worker, never a desynchronised one."""
        self.n_calls += 1
        try:
            write_frame(self.writer, payload)
            await self.writer.drain()
            response = await asyncio.wait_for(read_frame(self.reader), timeout)
        except asyncio.TimeoutError:
            self.kill()
            raise GatewayError(
                f"worker {self.worker_id} (pid {self.pid}) gave no "
                f"response within {timeout:.1f}s; killed"
            ) from None
        except (ConnectionError, OSError, GatewayError) as exc:
            self.kill()
            raise GatewayError(
                f"worker {self.worker_id} (pid {self.pid}) died "
                f"mid-request: {exc}"
            ) from exc
        if response is None:
            self.kill()
            raise GatewayError(
                f"worker {self.worker_id} (pid {self.pid}) closed its "
                f"stream mid-request"
            )
        return response

    def kill(self) -> None:
        """Tear the worker down (idempotent); its slot loop sees the
        exit and arranges the replacement."""
        self.alive = False
        if self.proc.poll() is None:
            self.proc.kill()
        try:
            self.writer.close()
        except (OSError, RuntimeError):
            pass


class WorkerSlot:
    """One supervised position in the fleet: a breaker plus whichever
    worker process currently fills it."""

    def __init__(self, slot_id: int, breaker: CircuitBreaker) -> None:
        self.slot_id = slot_id
        self.breaker = breaker
        self.handle: WorkerHandle | None = None
        self.task: asyncio.Task | None = None
        self.n_restarts = 0
        self.n_spawn_failures = 0
        #: the current worker's latest registry snapshot (piggybacked
        #: on health frames) and the merged snapshots of every dead
        #: predecessor — a restart must not zero the slot's history.
        self.latest_metrics: dict | None = None
        self.retired_metrics: dict | None = None

    def live_handle(self) -> WorkerHandle | None:
        handle = self.handle
        if handle is not None and handle.alive and handle.proc.poll() is None:
            return handle
        return None


class WorkerPool:
    """Spawn and supervise N gateway workers over one snapshot source.

    Args:
        watch: the shared snapshot source directory every worker
            watches (a :class:`~repro.serving.watch.SnapshotCatalog`
            root, a durable store, or a single snapshot directory).
        n_workers: fleet size (slot count).
        pure_python: run workers on the pure-Python backend.
        call_timeout: the default per-request deadline budget — the
            whole retry loop for one request runs against it.
        retries: extra attempts for a request whose worker died or
            answered stale (reads are idempotent, so retrying is safe).
        poll_interval: idle watcher poll period inside each worker.
        load_timeout: per-spawn ceiling for a worker's snapshot load.
        breaker_threshold / backoff_base / backoff_cap /
            healthy_lifetime: the per-slot circuit-breaker knobs (see
            :class:`CircuitBreaker`).
        hedge_delay: duplicate an in-flight read to an idle sibling
            after this many seconds; ``None`` disables hedging.
        allow_stale: when a read cannot meet the fleet's version floor
            within its deadline, serve the freshest available version
            tagged ``stale: true`` instead of failing.
        jitter_seed: seed for the backoff jitter (tests pin it).
        worker_env: extra environment for worker processes (the fault
            harness injects ``REPRO_FAULT_PLAN`` / ``REPRO_CRASH_POINT``
            here).
    """

    def __init__(
        self,
        watch: str | Path,
        n_workers: int = 2,
        pure_python: bool = False,
        call_timeout: float = DEFAULT_CALL_TIMEOUT,
        retries: int = 2,
        poll_interval: float = 0.2,
        load_timeout: float = 30.0,
        row_cache_size: int = 4096,
        response_cache_size: int = 1024,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        healthy_lifetime: float = DEFAULT_HEALTHY_LIFETIME,
        hedge_delay: float | None = None,
        allow_stale: bool = False,
        jitter_seed: int | None = None,
        worker_env: dict[str, str] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if n_workers < 1:
            raise GatewayError(f"n_workers must be >= 1, got {n_workers}")
        self.watch = Path(watch)
        self.n_workers = n_workers
        self.pure_python = pure_python
        self.call_timeout = call_timeout
        self.retries = retries
        self.poll_interval = poll_interval
        self.load_timeout = load_timeout
        self.row_cache_size = row_cache_size
        self.response_cache_size = response_cache_size
        self.breaker_threshold = breaker_threshold
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.healthy_lifetime = healthy_lifetime
        self.hedge_delay = hedge_delay
        self.allow_stale = allow_stale
        self.worker_env = dict(worker_env or {})
        #: highest model version any worker has served — the fleet's
        #: monotonic-read floor.
        self.fleet_version = 0
        #: per-instance for the same reason as the server's: many
        #: pools per test process, each with exact counter assertions.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_restarts = self.registry.counter(
            "gateway_worker_restarts_total", "worker deaths respawned"
        )
        self._m_spawn_failures = self.registry.counter(
            "gateway_worker_spawn_failures_total",
            "spawn attempts that never reached readiness",
        )
        self._m_calls = self.registry.counter(
            "gateway_pool_calls_total", "requests routed through the pool"
        )
        self._m_retries = self.registry.counter(
            "gateway_retries_total",
            "extra attempts after a death or retryable worker error",
        )
        self._m_hedged = self.registry.counter(
            "gateway_hedges_total", "slow reads duplicated to a sibling"
        )
        self._m_hedge_wins = self.registry.counter(
            "gateway_hedge_wins_total", "hedged duplicates that answered first"
        )
        self._m_stale_served = self.registry.counter(
            "gateway_stale_serves_total",
            "reads served below the version floor, tagged stale",
        )
        self._m_breaker = self.registry.counter(
            "gateway_breaker_transitions_total",
            "circuit-breaker state changes, by target state",
            labels=("to",),
        )
        self._m_fleet_version = self.registry.gauge(
            "gateway_fleet_version",
            "highest model version any worker has served",
        )
        self._m_worker_lag = self.registry.gauge(
            "gateway_worker_version_lag",
            "versions behind the fleet floor, per slot (at scrape)",
            labels=("slot",),
        )
        #: every pid this pool ever spawned — the drain gate asserts
        #: all of them are dead after close().
        self.spawned_pids: list[int] = []
        self._rng = random.Random(jitter_seed)
        self._idle: asyncio.Queue[WorkerHandle] = asyncio.Queue()
        self._slots: list[WorkerSlot] = []
        self._next_id = 0
        self._closing = False

    # Legacy counter names — registry-backed views, so stats() and
    # /metrics can never disagree.
    @property
    def n_restarts(self) -> int:
        return int(self._m_restarts.value)

    @property
    def n_spawn_failures(self) -> int:
        return int(self._m_spawn_failures.value)

    @property
    def n_calls(self) -> int:
        return int(self._m_calls.value)

    @property
    def n_hedged(self) -> int:
        return int(self._m_hedged.value)

    @property
    def n_hedge_wins(self) -> int:
        return int(self._m_hedge_wins.value)

    @property
    def n_stale_served(self) -> int:
        return int(self._m_stale_served.value)

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self._m_breaker.labels(new).inc()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Start one supervision loop per slot and wait for the fleet.

        Returns once every slot has a ready worker, or — when early
        spawns fail (a worker dying during snapshot load) — as soon as
        the slot loops have had ``load_timeout`` to produce at least
        one; zero ready workers by then tears the pool down and
        raises, so a bad source fails callers fast instead of hanging
        them while the breakers crash-loop politely in the background.
        """
        loop = asyncio.get_running_loop()
        for slot_id in range(self.n_workers):
            slot = WorkerSlot(
                slot_id,
                CircuitBreaker(
                    threshold=self.breaker_threshold,
                    base_delay=self.backoff_base,
                    max_delay=self.backoff_cap,
                    rng=self._rng,
                    on_transition=self._on_breaker_transition,
                ),
            )
            self._slots.append(slot)
            slot.task = asyncio.create_task(self._run_slot(slot))
        deadline = loop.time() + self.load_timeout + self.call_timeout
        while loop.time() < deadline and not self._closing:
            ready = len(self.alive_workers())
            if ready >= self.n_workers:
                return
            if ready > 0 and loop.time() >= deadline - self.call_timeout:
                return  # partial fleet: serve what we have
            await asyncio.sleep(0.02)
        if self.alive_workers():
            return
        await self.close()
        raise GatewayError(
            f"no worker became ready within "
            f"{self.load_timeout + self.call_timeout:.1f}s "
            f"({self.n_spawn_failures} failed spawn attempts)"
        )

    async def _run_slot(self, slot: WorkerSlot) -> None:
        """One slot's whole life: spawn (after any breaker delay), hand
        the worker to the rotation, wait out its death, account for it,
        repeat. Only this loop spawns for its slot, so a death observed
        by both a caller and the loop still yields exactly one
        replacement."""
        loop = asyncio.get_running_loop()
        while not self._closing:
            delay = slot.breaker.next_delay()
            if delay > 0:
                await asyncio.sleep(delay)
            if self._closing:
                return
            try:
                handle = await self._spawn(slot)
            except asyncio.CancelledError:
                raise
            except (GatewayError, OSError):
                slot.n_spawn_failures += 1
                self._m_spawn_failures.inc()
                slot.breaker.record_failure()
                continue
            slot.handle = handle
            slot.breaker.on_probe()
            self._idle.put_nowait(handle)
            await loop.run_in_executor(None, handle.proc.wait)
            handle.alive = False
            try:
                handle.writer.close()
            except (OSError, RuntimeError):
                pass
            if self._closing:
                return
            # The dead worker's counts fold into the slot's history;
            # the fleet-wide merge must survive restarts.
            if slot.latest_metrics is not None:
                slot.retired_metrics = (
                    merge_snapshots(slot.retired_metrics, slot.latest_metrics)
                    if slot.retired_metrics is not None
                    else slot.latest_metrics
                )
                slot.latest_metrics = None
            slot.n_restarts += 1
            self._m_restarts.inc()
            if loop.time() - handle.spawned_at >= self.healthy_lifetime:
                # A long-lived worker dying is churn, not a streak.
                slot.breaker.record_success()
            slot.breaker.record_failure()

    async def _spawn(self, slot: WorkerSlot) -> WorkerHandle:
        worker_id = self._next_id
        self._next_id += 1
        parent_sock, child_sock = socket.socketpair()
        argv = [
            sys.executable,
            "-m",
            "repro.gateway.worker",
            "--fd",
            str(child_sock.fileno()),
            "--watch",
            str(self.watch),
            "--poll-interval",
            str(self.poll_interval),
            "--load-timeout",
            str(self.load_timeout),
            "--row-cache-size",
            str(self.row_cache_size),
            "--response-cache-size",
            str(self.response_cache_size),
        ]
        if self.pure_python:
            argv.append("--pure-python")
        env = dict(os.environ)
        env.update(self.worker_env)
        env["PYTHONPATH"] = _worker_pythonpath()
        # The fleet-wide spawn sequence number: fault-plan rules gate
        # on it ("the first K workers die during load").
        env[SPAWN_SEQ_ENV] = str(worker_id)
        proc = subprocess.Popen(argv, pass_fds=[child_sock.fileno()], env=env)
        self.spawned_pids.append(proc.pid)
        try:
            child_sock.close()
            parent_sock.setblocking(False)
            reader, writer = await asyncio.open_connection(sock=parent_sock)
            handle = WorkerHandle(
                worker_id, proc, parent_sock, reader, writer, slot=slot
            )
            handle.spawned_at = asyncio.get_running_loop().time()
            # The worker only enters its frame loop once its model is
            # loaded, so the first health round trip doubles as
            # readiness.
            response = await handle.call(
                {"method": "health"},
                self.load_timeout + self.call_timeout,
            )
        except BaseException:
            # Covers cancellation too: a spawn interrupted by close()
            # must not leave an orphan process behind.
            if proc.poll() is None:
                proc.kill()
            try:
                # Bounded block on purpose: this path also runs while
                # being cancelled, where scheduling an executor job is
                # no longer reliable, and a SIGKILLed child reaps in
                # milliseconds.
                proc.wait(timeout=5)  # reprolint: disable=REP401
            except (OSError, subprocess.TimeoutExpired):
                pass
            try:
                parent_sock.close()
            except OSError:
                pass
            raise
        self._note_version(response, handle)
        if isinstance(response.get("metrics"), dict):
            slot.latest_metrics = response["metrics"]
        return handle

    async def close(self) -> None:
        """Kill the fleet and stop the slot loops (idempotent)."""
        self._closing = True
        tasks = [slot.task for slot in self._slots if slot.task is not None]
        for task in tasks:
            task.cancel()
        # gather(return_exceptions=True) swallows the tasks' own
        # CancelledError without masking an outer cancellation of
        # close() itself — cancellation is a BaseException on 3.8+ and
        # must never be eaten by a broad except.
        await asyncio.gather(*tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()
        for slot in self._slots:
            slot.task = None
            handle = slot.handle
            if handle is not None:
                handle.kill()
                # Reap off-loop: wait() on a just-SIGKILLed child is
                # quick, but a stuck NFS/core-dump write could stall
                # the event loop mid-drain.
                await loop.run_in_executor(None, handle.proc.wait)
        while not self._idle.empty():
            self._idle.get_nowait()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _checkout(self, timeout: float) -> WorkerHandle:
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise GatewayError(
                    "no live worker became available within "
                    f"{timeout:.1f}s"
                )
            try:
                handle = await asyncio.wait_for(self._idle.get(), remaining)
            except asyncio.TimeoutError:
                raise GatewayError(
                    "no live worker became available within "
                    f"{timeout:.1f}s"
                ) from None
            if handle.alive and handle.proc.poll() is None:
                return handle
            # A corpse left in the queue by a death; skip it — its
            # slot loop already arranged the replacement.

    def _checkout_nowait(self) -> WorkerHandle | None:
        """An idle live worker right now, or ``None`` (the hedge path
        never waits — a hedge that queues is just more load)."""
        while True:
            try:
                handle = self._idle.get_nowait()
            except asyncio.QueueEmpty:
                return None
            if handle.alive and handle.proc.poll() is None:
                return handle

    def _release(self, handle: WorkerHandle) -> None:
        if handle.alive and handle.proc.poll() is None:
            self._idle.put_nowait(handle)

    def _note_version(self, response: dict, handle: WorkerHandle | None = None) -> None:
        version = response.get("version")
        if isinstance(version, int):
            if handle is not None:
                handle.version = max(handle.version, version)
            if version > self.fleet_version:
                self.fleet_version = version
                self._m_fleet_version.set(version)

    async def _call_one(
        self, handle: WorkerHandle, payload: dict, timeout: float
    ) -> dict:
        """One attempt against one worker; always releases (or buries)
        the handle, feeds the slot's breaker, and tracks versions."""
        try:
            response = await handle.call(payload, timeout)
        except GatewayError:
            self._release(handle)  # dead handles are not re-queued
            raise
        self._note_version(response, handle)
        if response.get("ok"):
            handle.last_served_monotonic = asyncio.get_running_loop().time()
            if handle.slot is not None:
                handle.slot.breaker.record_success()
                if isinstance(response.get("metrics"), dict):
                    handle.slot.latest_metrics = response["metrics"]
        self._release(handle)
        return response

    async def _dispatch(
        self,
        handle: WorkerHandle,
        method: str,
        params: dict,
        remaining: float,
        trace: TraceContext | None = None,
    ) -> dict:
        """One (possibly hedged) attempt. The frame carries the
        remaining deadline budget; reads that linger past
        ``hedge_delay`` are duplicated to an idle sibling and the first
        answer wins — the loser completes in the background and simply
        re-enters rotation."""
        payload = {
            "method": method,
            "params": {**params, "budget_ms": remaining * 1000.0},
        }
        if trace is not None:
            payload["trace"] = trace.to_wire()
        primary = asyncio.ensure_future(self._call_one(handle, payload, remaining))
        hedge_after = self.hedge_delay
        if (
            hedge_after is None
            or method not in READ_METHODS
            or remaining <= hedge_after
        ):
            return await primary
        done, _pending = await asyncio.wait({primary}, timeout=hedge_after)
        if done:
            return primary.result()
        # The primary is officially slow. Race it against a *waiting*
        # checkout of a sibling — a momentarily-busy fleet frees a
        # worker in milliseconds, and a hedge that only glanced once
        # would miss it and ride out the full hang.
        checkout = asyncio.ensure_future(self._checkout(remaining - hedge_after))
        done, _pending = await asyncio.wait(
            {primary, checkout}, return_when=asyncio.FIRST_COMPLETED
        )
        if primary in done:
            if checkout.done():
                if checkout.exception() is None:
                    self._release(checkout.result())
            else:
                checkout.cancel()
                checkout.add_done_callback(_swallow_result)
            return primary.result()
        try:
            sibling = checkout.result()
        except GatewayError:
            return await primary
        self._m_hedged.inc()
        event("pool.hedge", trace, method=method,
              primary=handle.worker_id, sibling=sibling.worker_id)
        hedge = asyncio.ensure_future(
            self._call_one(sibling, payload, remaining - hedge_after)
        )
        tasks = {primary, hedge}
        first_error: GatewayError | None = None
        while tasks:
            done, tasks = await asyncio.wait(tasks, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                exc = task.exception()
                if exc is None:
                    for loser in tasks:
                        # Let the slower attempt finish in the
                        # background; its handle re-enters rotation
                        # inside _call_one either way.
                        loser.add_done_callback(_swallow_result)
                    if task is hedge:
                        self._m_hedge_wins.inc()
                        event("pool.hedge_win", trace, method=method)
                    return task.result()
                if isinstance(exc, GatewayError) and first_error is None:
                    first_error = exc
                elif not isinstance(exc, GatewayError):
                    raise exc
        raise first_error if first_error is not None else GatewayError(
            "hedged dispatch failed"
        )

    async def call(
        self,
        method: str,
        params: dict | None = None,
        timeout: float | None = None,
        trace: TraceContext | None = None,
    ) -> dict:
        """Route one request to the fleet and return the worker's
        response payload, retrying across deaths and staleness within
        one deadline budget. Raises
        :class:`~repro.errors.GatewayError` when the budget or retry
        count is exhausted (unless ``allow_stale`` turns the failure
        into an explicit stale response), and for non-retryable worker
        errors."""
        self._m_calls.inc()
        loop = asyncio.get_running_loop()
        budget = self.call_timeout if timeout is None else timeout
        deadline = loop.time() + budget
        params = dict(params or {})
        read = method in READ_METHODS
        # Reserve a slice of the budget for the degraded attempt, so
        # "fresh failed" still leaves time to serve *something*.
        stale_grace = (min(1.0, budget * 0.25) if (self.allow_stale and read) else 0.0)
        fresh_deadline = deadline - stale_grace
        last_error: GatewayError | None = None
        attempt = 0
        while attempt <= self.retries and loop.time() < fresh_deadline:
            attempt += 1
            if attempt > 1:
                self._m_retries.inc()
                event("pool.retry", trace, method=method, attempt=attempt,
                      error=str(last_error))
            if read:
                # The handshake: no response may be computed from a
                # model older than the newest the fleet has served.
                params["min_version"] = self.fleet_version
                if trace is not None:
                    trace.baggage["min_version"] = self.fleet_version
            remaining = fresh_deadline - loop.time()
            if trace is not None:
                trace.baggage["budget_ms"] = round(remaining * 1000.0, 3)
            try:
                handle = await self._checkout(remaining)
            except GatewayError as exc:
                last_error = exc
                break
            try:
                response = await self._dispatch(
                    handle, method, params, remaining, trace
                )
            except GatewayError as exc:
                last_error = exc
                continue  # the worker is dead; retry on another
            if response.get("ok"):
                return response
            error = response.get("error") or {}
            message = error.get("message", "worker error")
            if error.get("retryable"):
                last_error = GatewayError(f"worker {handle.worker_id}: {message}")
                await asyncio.sleep(DEFAULT_STALE_BACKOFF)
                continue
            raise GatewayError(f"worker {handle.worker_id}: {message}")
        if self.allow_stale and read:
            response = await self._stale_fallback(method, params, deadline, trace)
            if response is not None:
                return response
        raise GatewayError(
            f"request {method!r} failed after {attempt} attempts "
            f"within {budget:.1f}s: {last_error}"
        )

    async def _stale_fallback(
        self,
        method: str,
        params: dict,
        deadline: float,
        trace: TraceContext | None = None,
    ) -> dict | None:
        """The bounded-staleness degraded path: one attempt with
        ``allow_stale`` — the worker serves its freshest version and
        tags the response ``stale`` when that is behind the floor."""
        loop = asyncio.get_running_loop()
        remaining = max(0.05, deadline - loop.time())
        stale_params = {
            **params,
            "min_version": self.fleet_version,
            "allow_stale": True,
        }
        event("pool.stale_fallback", trace, method=method,
              min_version=self.fleet_version)
        try:
            handle = await self._checkout(remaining)
            payload = {
                "method": method,
                "params": {**stale_params, "budget_ms": remaining * 1000.0},
            }
            if trace is not None:
                payload["trace"] = trace.to_wire()
            response = await self._call_one(handle, payload, remaining)
        except GatewayError:
            return None
        if not response.get("ok"):
            return None
        if response.get("stale"):
            self._m_stale_served.inc()
        return response

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def alive_workers(self) -> list[int]:
        return [
            handle.pid
            for slot in self._slots
            if (handle := slot.live_handle()) is not None
        ]

    def worker_details(self) -> list[dict]:
        """Per-slot fleet shape — what ``/healthz`` exposes so an
        operator (or the chaos smoke) can assert it without logs."""
        details = []
        for slot in self._slots:
            handle = slot.handle
            live = slot.live_handle() is not None
            details.append(
                {
                    "slot": slot.slot_id,
                    "pid": handle.pid if handle is not None else None,
                    "alive": live,
                    "version": handle.version if handle is not None else 0,
                    "restarts": slot.n_restarts,
                    "spawn_failures": slot.n_spawn_failures,
                    "circuit": slot.breaker.state,
                    "consecutive_failures": (slot.breaker.consecutive_failures),
                    "n_calls": handle.n_calls if handle is not None else 0,
                    "last_served_monotonic": (
                        handle.last_served_monotonic if handle is not None else 0.0
                    ),
                }
            )
        return details

    async def collect_metrics(self, timeout: float = 1.0) -> list[dict]:
        """Registry snapshots for ``/metrics``: the pool's own, plus
        every worker's (live workers are health-polled best-effort —
        a busy worker's last-known snapshot is served instead of
        blocking the scrape behind data traffic)."""
        await self._poll_worker_metrics(timeout)
        for slot in self._slots:
            handle = slot.live_handle()
            lag = (
                max(0, self.fleet_version - handle.version)
                if handle is not None
                else 0
            )
            self._m_worker_lag.labels(str(slot.slot_id)).set(lag)
        snapshots = [self.registry.snapshot()]
        for slot in self._slots:
            if slot.retired_metrics is not None:
                snapshots.append(slot.retired_metrics)
            if slot.latest_metrics is not None:
                snapshots.append(slot.latest_metrics)
        return snapshots

    async def _poll_worker_metrics(self, timeout: float) -> None:
        """One concurrent health round over every *idle* worker; each
        OK response refreshes its slot's snapshot inside
        :meth:`_call_one`. Checked-out (busy) workers are skipped —
        a scrape must never queue behind, or time out, data traffic."""
        handles: list[WorkerHandle] = []
        while True:
            handle = self._checkout_nowait()
            if handle is None:
                break
            handles.append(handle)
        if not handles:
            return
        await asyncio.gather(
            *(
                self._call_one(handle, {"method": "health"}, timeout)
                for handle in handles
            ),
            return_exceptions=True,
        )

    def stats(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "alive": len(self.alive_workers()),
            "fleet_version": self.fleet_version,
            "n_calls": self.n_calls,
            "n_restarts": self.n_restarts,
            "n_spawn_failures": self.n_spawn_failures,
            "n_hedged": self.n_hedged,
            "n_hedge_wins": self.n_hedge_wins,
            "n_stale_served": self.n_stale_served,
        }


def _swallow_result(task: asyncio.Task) -> None:
    """Retrieve a background task's outcome so a losing hedge's error
    is never reported as an unretrieved exception."""
    if not task.cancelled():
        task.exception()
