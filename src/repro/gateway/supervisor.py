"""The worker fleet supervisor: spawn, route, retry, restart.

The :class:`WorkerPool` owns N worker subprocesses. Each worker is a
**fresh interpreter** (no fork — the parent's asyncio loop, locks, and
numpy state never leak into a child) connected over a ``socketpair``
inherited as a file descriptor, so worker death is observable as plain
EOF on the pair — no PID polling, no signals.

Routing is checkout-based: one request occupies one worker at a time
(workers are single-threaded; their parallelism is process-level), and
a worker returns to the idle queue the moment its response arrives.
Three failure modes are handled distinctly:

* **death mid-flight** (EOF/torn frame): the request is retried on
  another worker — every gateway method is an idempotent read, so the
  retry is safe — while the worker's monitor task spawns a
  replacement;
* **hang** (no frame within ``call_timeout``): the worker is killed
  (which turns the hang into a death) and the request retried;
* **stale model** (a worker answers behind the fleet's
  ``min_version``): retried after a short pause — the worker polls its
  watcher on demand, so one round trip is normally enough.

The pool carries the fleet-wide version handshake: every successful
response advances :attr:`fleet_version` (the highest version any
worker has served), and every read request is stamped with it as
``min_version``. The result is **monotonic reads across the fleet** —
once any client has seen version ``v``, no later response is computed
from an older model, even though workers converge independently. This
per-request version floor is the seam a partially replicated fleet
will later widen into a version *vector* across item partitions.
"""

from __future__ import annotations

import asyncio
import os
import socket
import subprocess
import sys
from pathlib import Path

from repro.errors import GatewayError
from repro.gateway.protocol import read_frame, write_frame

DEFAULT_CALL_TIMEOUT = 30.0
DEFAULT_STALE_BACKOFF = 0.05


def _worker_pythonpath() -> str:
    """A PYTHONPATH under which ``import repro`` resolves to the same
    package the supervisor is running."""
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    if not existing:
        return package_root
    if package_root in existing.split(os.pathsep):
        return existing
    return package_root + os.pathsep + existing


class WorkerHandle:
    """One live worker subprocess and its frame stream."""

    def __init__(
        self,
        worker_id: int,
        proc: subprocess.Popen,
        sock: socket.socket,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.worker_id = worker_id
        self.proc = proc
        self.sock = sock
        self.reader = reader
        self.writer = writer
        self.alive = True
        self.n_calls = 0

    @property
    def pid(self) -> int:
        return self.proc.pid

    async def call(self, payload: dict, timeout: float) -> dict:
        """One request/response round trip. Any failure mode —
        timeout, EOF, torn frame — is surfaced as
        :class:`~repro.errors.GatewayError` after the worker has been
        killed, so the caller only ever retries against a dead
        (restarting) worker, never a desynchronised one."""
        self.n_calls += 1
        try:
            write_frame(self.writer, payload)
            await self.writer.drain()
            response = await asyncio.wait_for(
                read_frame(self.reader), timeout
            )
        except asyncio.TimeoutError:
            self.kill()
            raise GatewayError(
                f"worker {self.worker_id} (pid {self.pid}) gave no "
                f"response within {timeout:.1f}s; killed"
            ) from None
        except (ConnectionError, OSError, GatewayError) as exc:
            self.kill()
            raise GatewayError(
                f"worker {self.worker_id} (pid {self.pid}) died "
                f"mid-request: {exc}"
            ) from exc
        if response is None:
            self.kill()
            raise GatewayError(
                f"worker {self.worker_id} (pid {self.pid}) closed its "
                f"stream mid-request"
            )
        return response

    def kill(self) -> None:
        """Tear the worker down (idempotent); its monitor task sees the
        exit and spawns a replacement."""
        self.alive = False
        if self.proc.poll() is None:
            self.proc.kill()
        try:
            self.writer.close()
        except Exception:
            pass


class WorkerPool:
    """Spawn and supervise N gateway workers over one snapshot source.

    Args:
        watch: the shared snapshot source directory every worker
            watches (a :class:`~repro.serving.watch.SnapshotCatalog`
            root, a durable store, or a single snapshot directory).
        n_workers: fleet size.
        pure_python: run workers on the pure-Python backend.
        call_timeout: per-request ceiling before a worker is declared
            hung and killed.
        retries: extra attempts for a request whose worker died or
            answered stale (reads are idempotent, so retrying is safe).
        poll_interval: idle watcher poll period inside each worker.
        worker_env: extra environment for worker processes (the fault
            harness injects ``REPRO_CRASH_POINT`` here).
    """

    def __init__(
        self,
        watch,
        n_workers: int = 2,
        pure_python: bool = False,
        call_timeout: float = DEFAULT_CALL_TIMEOUT,
        retries: int = 2,
        poll_interval: float = 0.2,
        load_timeout: float = 30.0,
        row_cache_size: int = 4096,
        response_cache_size: int = 1024,
        worker_env: dict[str, str] | None = None,
    ) -> None:
        if n_workers < 1:
            raise GatewayError(f"n_workers must be >= 1, got {n_workers}")
        self.watch = Path(watch)
        self.n_workers = n_workers
        self.pure_python = pure_python
        self.call_timeout = call_timeout
        self.retries = retries
        self.poll_interval = poll_interval
        self.load_timeout = load_timeout
        self.row_cache_size = row_cache_size
        self.response_cache_size = response_cache_size
        self.worker_env = dict(worker_env or {})
        #: highest model version any worker has served — the fleet's
        #: monotonic-read floor.
        self.fleet_version = 0
        self.n_restarts = 0
        self.n_calls = 0
        self._idle: asyncio.Queue[WorkerHandle] = asyncio.Queue()
        self._handles: list[WorkerHandle] = []
        self._monitors: list[asyncio.Task] = []
        self._next_id = 0
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the fleet and block until every worker answers a
        health check (its model is loaded and mapped)."""
        for _ in range(self.n_workers):
            handle = await self._spawn()
            self._handles.append(handle)
            self._monitors.append(
                asyncio.create_task(self._monitor(handle))
            )
            self._idle.put_nowait(handle)

    async def _spawn(self) -> WorkerHandle:
        worker_id = self._next_id
        self._next_id += 1
        parent_sock, child_sock = socket.socketpair()
        argv = [
            sys.executable,
            "-m",
            "repro.gateway.worker",
            "--fd",
            str(child_sock.fileno()),
            "--watch",
            str(self.watch),
            "--poll-interval",
            str(self.poll_interval),
            "--load-timeout",
            str(self.load_timeout),
            "--row-cache-size",
            str(self.row_cache_size),
            "--response-cache-size",
            str(self.response_cache_size),
        ]
        if self.pure_python:
            argv.append("--pure-python")
        env = dict(os.environ)
        env.update(self.worker_env)
        env["PYTHONPATH"] = _worker_pythonpath()
        proc = subprocess.Popen(
            argv, pass_fds=[child_sock.fileno()], env=env
        )
        child_sock.close()
        parent_sock.setblocking(False)
        try:
            reader, writer = await asyncio.open_connection(
                sock=parent_sock
            )
        except Exception:
            proc.kill()
            parent_sock.close()
            raise
        handle = WorkerHandle(worker_id, proc, parent_sock, reader, writer)
        # The worker only enters its frame loop once its model is
        # loaded, so the first health round trip doubles as readiness.
        response = await handle.call(
            {"method": "health"}, self.load_timeout + self.call_timeout
        )
        self._note_version(response)
        return handle

    async def _monitor(self, handle: WorkerHandle) -> None:
        """Wait out one worker's life; replace it when it dies. Only
        monitors spawn replacements, so a death observed by both a
        caller and the monitor still yields exactly one new worker."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, handle.proc.wait)
        handle.alive = False
        try:
            handle.writer.close()
        except Exception:
            pass
        if self._closing:
            return
        self.n_restarts += 1
        try:
            replacement = await self._spawn()
        except (GatewayError, OSError):
            # A replacement that cannot come up (source vanished,
            # fork limits) leaves the fleet one short; the next death
            # or close() accounts for it.
            return
        self._handles.append(replacement)
        self._monitors.append(
            asyncio.create_task(self._monitor(replacement))
        )
        self._idle.put_nowait(replacement)

    async def close(self) -> None:
        """Kill the fleet and cancel the monitors (idempotent)."""
        self._closing = True
        for task in self._monitors:
            task.cancel()
        for task in self._monitors:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._monitors.clear()
        for handle in self._handles:
            handle.kill()
            handle.proc.wait()
        self._handles.clear()
        while not self._idle.empty():
            self._idle.get_nowait()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _checkout(self) -> WorkerHandle:
        deadline = (
            asyncio.get_running_loop().time() + self.call_timeout
        )
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise GatewayError(
                    "no live worker became available within "
                    f"{self.call_timeout:.1f}s"
                )
            try:
                handle = await asyncio.wait_for(
                    self._idle.get(), remaining
                )
            except asyncio.TimeoutError:
                raise GatewayError(
                    "no live worker became available within "
                    f"{self.call_timeout:.1f}s"
                ) from None
            if handle.alive and handle.proc.poll() is None:
                return handle
            # A corpse left in the queue by a death; skip it — its
            # monitor already arranged the replacement.

    def _release(self, handle: WorkerHandle) -> None:
        if handle.alive and handle.proc.poll() is None:
            self._idle.put_nowait(handle)

    def _note_version(self, response: dict) -> None:
        version = response.get("version")
        if isinstance(version, int) and version > self.fleet_version:
            self.fleet_version = version

    async def call(
        self,
        method: str,
        params: dict | None = None,
        timeout: float | None = None,
    ) -> dict:
        """Route one request to the fleet and return the worker's
        response payload, retrying across deaths and staleness. Raises
        :class:`~repro.errors.GatewayError` when the retry budget is
        exhausted, and for non-retryable worker errors."""
        self.n_calls += 1
        timeout = self.call_timeout if timeout is None else timeout
        params = dict(params or {})
        last_error: GatewayError | None = None
        for _attempt in range(self.retries + 1):
            if method in ("recommend", "similar_items"):
                # The handshake: no response may be computed from a
                # model older than the newest the fleet has served.
                params["min_version"] = self.fleet_version
            try:
                handle = await self._checkout()
            except GatewayError as exc:
                last_error = exc
                break
            try:
                response = await handle.call(
                    {"method": method, "params": params}, timeout
                )
            except GatewayError as exc:
                last_error = exc
                continue  # the worker is dead; retry on another
            finally:
                self._release(handle)
            if response.get("ok"):
                self._note_version(response)
                return response
            error = response.get("error") or {}
            message = error.get("message", "worker error")
            if error.get("retryable"):
                last_error = GatewayError(
                    f"worker {handle.worker_id}: {message}"
                )
                await asyncio.sleep(DEFAULT_STALE_BACKOFF)
                continue
            raise GatewayError(
                f"worker {handle.worker_id}: {message}"
            )
        raise GatewayError(
            f"request {method!r} failed after {self.retries + 1} "
            f"attempts: {last_error}"
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def alive_workers(self) -> list[int]:
        return [
            handle.pid
            for handle in self._handles
            if handle.alive and handle.proc.poll() is None
        ]

    def stats(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "alive": len(self.alive_workers()),
            "fleet_version": self.fleet_version,
            "n_calls": self.n_calls,
            "n_restarts": self.n_restarts,
        }
