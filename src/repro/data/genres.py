"""Genre-based sub-domain partitioning (§6.5, Table 2).

To evaluate X-Map in a homogeneous setting, the paper splits ML-20M into
two sub-domains: sort the genres by movie count, allocate alternate
sorted genres to D1/D2, then assign each (multi-genre) movie to the
sub-domain sharing the most of its genres — ties go to either.

The output feeds Table 2 (the genre allocation itself) and Table 3
(running the cross-domain pipeline between the two sub-domains).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.data.dataset import CrossDomainDataset, Dataset
from repro.errors import DataError


@dataclass(frozen=True)
class GenrePartition:
    """Result of the Table 2 split.

    Attributes:
        d1_genres / d2_genres: (genre, movie count) rows exactly as the
            paper's Table 2 lists them, in descending count order.
        d1 / d2: the two sub-domain datasets.
    """

    d1_genres: tuple[tuple[str, int], ...]
    d2_genres: tuple[tuple[str, int], ...]
    d1: Dataset
    d2: Dataset

    def as_cross_domain(self) -> CrossDomainDataset:
        """View the two sub-domains as a source→target problem
        (Table 3 runs the full X-Map pipeline on this)."""
        return CrossDomainDataset(self.d1, self.d2)

    def table_rows(self) -> list[tuple[str, int, str, int]]:
        """Rows (d1 genre, count, d2 genre, count) padded like Table 2."""
        rows = []
        for idx in range(max(len(self.d1_genres), len(self.d2_genres))):
            g1, c1 = self.d1_genres[idx] if idx < len(self.d1_genres) else ("–", 0)
            g2, c2 = self.d2_genres[idx] if idx < len(self.d2_genres) else ("–", 0)
            rows.append((g1, c1, g2, c2))
        return rows


def genre_movie_counts(dataset: Dataset) -> Counter[str]:
    """Movies per genre (a multi-genre movie counts once per genre)."""
    counts: Counter[str] = Counter()
    for genres in dataset.item_genres.values():
        counts.update(genres)
    return counts


def partition_by_genre(dataset: Dataset,
                       names: tuple[str, str] = ("d1", "d2")) -> GenrePartition:
    """Split *dataset* into two genre-based sub-domains per Table 2.

    Raises :class:`~repro.errors.DataError` if the dataset carries no
    genre metadata.
    """
    if not dataset.item_genres:
        raise DataError(
            f"dataset {dataset.name!r} has no genre metadata to partition on")
    counts = genre_movie_counts(dataset)
    ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    g1 = {genre for idx, (genre, _) in enumerate(ordered) if idx % 2 == 0}
    g2 = {genre for idx, (genre, _) in enumerate(ordered) if idx % 2 == 1}

    items_d1: set[str] = set()
    items_d2: set[str] = set()
    tie_breaker = 0
    for item in sorted(dataset.items):
        genres = set(dataset.item_genres.get(item, ()))
        overlap1 = len(genres & g1)
        overlap2 = len(genres & g2)
        if overlap1 > overlap2:
            items_d1.add(item)
        elif overlap2 > overlap1:
            items_d2.add(item)
        else:
            # Equal overlap: the paper allows either; we alternate over
            # the sorted item order so both stay populated. (Not
            # hash(item) — string hashing is randomized per process,
            # which made the split, and every artifact derived from it,
            # differ run to run.)
            (items_d1 if tie_breaker == 0 else items_d2).add(item)
            tie_breaker ^= 1

    def build(sub_name: str, items: set[str]) -> Dataset:
        table = dataset.ratings.restricted_to_items(items)
        return Dataset(
            sub_name, table,
            item_titles={i: t for i, t in dataset.item_titles.items() if i in items},
            item_genres={i: g for i, g in dataset.item_genres.items() if i in items})

    d1 = build(names[0], items_d1)
    d2 = build(names[1], items_d2)

    def rows(genre_set: set[str]) -> tuple[tuple[str, int], ...]:
        return tuple(sorted(((g, counts[g]) for g in genre_set),
                            key=lambda kv: (-kv[1], kv[0])))

    return GenrePartition(d1_genres=rows(g1), d2_genres=rows(g2), d1=d1, d2=d2)
