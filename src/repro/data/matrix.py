"""The interned, array-backed rating store behind the hot similarity paths.

:class:`~repro.data.ratings.RatingTable` is the semantic store: string ids,
``Rating`` objects, doubly-indexed dict-of-dicts. That representation is
right for the evaluation protocols (immutable derivation, per-rating
timesteps) but wrong for the similarity backbone: the Baseliner's Eq-6
accumulation and the Extender's significance sweeps spend their time
hashing string tuples and re-deriving user means from objects.

:class:`MatrixRatingStore` is the compact mirror the hot loops run over:

* user and item ids interned to dense integer indexes (sorted
  lexicographically, so integer order == string order and results stay
  deterministic);
* CSR-style per-user rows and per-item columns of ``(index, value)``
  pairs, each with the user-mean-centered value (the Eq-6 building block)
  precomputed alongside;
* per-user and per-item means, per-item centered/raw L2 norms, per-item
  like/dislike flags (Definition 2) and per-user item-centered norms
  (Eq 1), all computed once at construction.

The store has a NumPy fast path and a pure-Python fallback behind the
same API, selected at construction (``REPRO_PURE_PYTHON=1`` forces the
fallback — the CI matrix uses it). Means and norms are always computed
with ``math.fsum`` in pure Python so both backends share bit-identical
scalars; the pair accumulation orders of the two backends are aligned
(users ascending, one sequential add per co-rating) so the two paths
produce *identical* similarity graphs, not merely close ones.

Build one store per pipeline run via :meth:`RatingTable.matrix`, which
memoizes on the (immutable) table — every string-keyed similarity entry
point picks it up transparently.
"""

from __future__ import annotations

import bisect
import math
import os
from typing import TYPE_CHECKING, Iterable, Iterator, NamedTuple, Sequence

from repro.errors import SimilarityError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.data.ratings import Rating, RatingTable
    from repro.similarity.knn import NeighborIndex

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


def numpy_available() -> bool:
    """Whether the NumPy fast path can be used (installed and not
    disabled via the ``REPRO_PURE_PYTHON`` environment variable;
    ``"0"`` and the empty string count as unset)."""
    return _np is not None and os.environ.get("REPRO_PURE_PYTHON", "") in ("", "0")


def _clip1(value: float) -> float:
    return max(-1.0, min(1.0, value))


def _intersect_sorted(a: Sequence[int], b: Sequence[int]
                      ) -> tuple[list[int], list[int]]:
    """Positions of the common values of two strictly-increasing int
    sequences (the pure-Python profile intersection)."""
    pos_a: list[int] = []
    pos_b: list[int] = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x = a[i]
        y = b[j]
        if x == y:
            pos_a.append(i)
            pos_b.append(j)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return pos_a, pos_b


class PairAccumulation:
    """Reduced Eq-6 pair accumulation over one user subset (one shard).

    Produced by :meth:`MatrixRatingStore.pair_accumulation` and merged by
    :meth:`MatrixRatingStore.merge_accumulations` — the unit of work the
    engine's sharded sweep ships between processes. Pairs are encoded as
    ``left * n_items + right`` integer keys with ``left < right``.

    On the NumPy backend ``keys`` is a strictly-increasing int64 array and
    ``sums`` / ``counts`` / ``agree`` are aligned value arrays. On the
    pure-Python backend ``keys`` is ``None`` and the other three are dicts
    over the same integer pair keys.

    Attributes:
        keys: unique pair keys (NumPy backend only).
        sums: Eq-6 numerator partial sums per pair.
        counts: co-rating contribution counts per pair (``|Y_i ∩ Y_j|``
            restricted to the accumulated users) — exact integers.
        agree: Definition-2 like/dislike agreement counts per pair, or
            ``None`` when significance was not requested.
    """

    __slots__ = ("keys", "sums", "counts", "agree")

    def __init__(self, keys, sums, counts, agree) -> None:
        self.keys = keys
        self.sums = sums
        self.counts = counts
        self.agree = agree

    @property
    def n_pairs(self) -> int:
        """Distinct co-rated pairs accumulated."""
        return len(self.sums) if self.keys is None else len(self.keys)


class AssemblyResult(NamedTuple):
    """Output of :meth:`MatrixRatingStore.assemble_from_partitions`.

    Attributes:
        adjacency: the symmetric string-keyed adjacency (``None`` when
            the caller asked for the index only).
        index: the rank-ordered
            :class:`~repro.similarity.knn.NeighborIndex` selected during
            assembly (``None`` unless requested).
    """

    adjacency: dict[str, dict[str, float]] | None
    index: "NeighborIndex | None"


class StoreDelta:
    """What one :meth:`MatrixRatingStore.append_ratings` batch changed.

    Everything downstream of an append consumes this record: the delta
    Eq-6 re-accumulation reads the touched flags, the accumulation fold
    remaps old pair keys through :attr:`item_map`, and the
    ``NeighborIndex`` row refresh rebuilds exactly the rows the batch
    could have moved.

    Interning stays sorted across an append: new users and items are
    *inserted* at their lexicographic positions, so both maps are
    strictly increasing and every invariant that rides on
    "integer order == string order" (pair-key ordering, serving
    tie-breaks) survives untouched.

    Attributes:
        n_old_items: item count of the base store (old pair keys encode
            ``left * n_old_items + right``).
        user_map: old user index → new user index, strictly increasing.
        item_map: old item index → new item index, strictly increasing.
        touched_users: new-space indexes (ascending) of users with
            ratings in the batch — their means, and so every centered
            value they contribute, moved.
        touched_items: new-space indexes (ascending) of every item in a
            touched user's post-append profile — the blast radius of
            the user-mean changes (Eq-6 numerators and item centered
            norms can only change inside this set).
        batch_items: new-space indexes (ascending) of the items rated in
            the batch — their item means, and so the Definition-2 like
            flags of *all* their raters, moved. Always a subset of
            *touched_items*.
        new_users: user ids interned by this batch, ascending.
        new_items: item ids interned by this batch, ascending.
    """

    __slots__ = ("n_old_items", "user_map", "item_map", "touched_users",
                 "touched_items", "batch_items", "new_users", "new_items")

    def __init__(self, n_old_items, user_map, item_map, touched_users,
                 touched_items, batch_items, new_users, new_items) -> None:
        self.n_old_items = n_old_items
        self.user_map = user_map
        self.item_map = item_map
        self.touched_users = touched_users
        self.touched_items = touched_items
        self.batch_items = batch_items
        self.new_users = new_users
        self.new_items = new_items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StoreDelta(touched_users={len(self.touched_users)}, "
                f"touched_items={len(self.touched_items)}, "
                f"new_users={len(self.new_users)}, "
                f"new_items={len(self.new_items)})")


def _insert_map(old_names: Sequence[str], inserted: Sequence[str]) -> list[int]:
    """New index of each old position after inserting *inserted* (sorted,
    disjoint from *old_names*) into the sorted *old_names* list."""
    out = [0] * len(old_names)
    j = 0
    n_inserted = len(inserted)
    for k, name in enumerate(old_names):
        while j < n_inserted and inserted[j] < name:
            j += 1
        out[k] = k + j
    return out


def _list_insert(base: list, positions: Sequence[int], values: list) -> list:
    """``np.insert`` for plain lists: *positions* are non-decreasing
    offsets into *base*; equal positions insert in the given order."""
    out: list = []
    prev = 0
    for pos, value in zip(positions, values):
        out.extend(base[prev:pos])
        out.append(value)
        prev = pos
    out.extend(base[prev:])
    return out


class MatrixRatingStore:
    """Integer-interned, array-backed view of one :class:`RatingTable`.

    Construction is one O(N log N) pass; every similarity primitive is
    then a sparse merge or accumulation over dense arrays. Instances are
    immutable and safe to share across pipeline phases.
    """

    __slots__ = (
        "users", "items", "user_index", "item_index",
        "n_ratings", "global_mean", "user_means", "item_means",
        "user_ptr", "user_item_idx", "user_values", "user_centered",
        "user_item_centered", "user_item_centered_norms",
        "item_ptr", "item_user_idx", "item_values", "item_centered",
        "item_likes", "item_centered_norms", "item_raw_norms",
        "_use_numpy", "_triu_cache", "_item_names_obj", "_like_dicts",
        "_user_likes",
    )

    def __init__(self, table: "RatingTable", use_numpy: bool | None = None) -> None:
        if use_numpy is None:
            use_numpy = numpy_available()
        elif use_numpy and _np is None:
            raise SimilarityError("use_numpy=True requested but numpy is not installed")
        self._use_numpy = bool(use_numpy)
        self._triu_cache: dict[int, tuple] = {}
        self._item_names_obj = None
        self._like_dicts: list[dict[int, bool] | None] | None = None
        self._user_likes = None

        users = sorted(table.users)
        items = sorted(table.items)
        self.users = users
        self.items = items
        user_index = {user: k for k, user in enumerate(users)}
        item_index = {item: k for k, item in enumerate(items)}
        self.user_index = user_index
        self.item_index = item_index
        n = len(table)
        self.n_ratings = n
        self.global_mean = table.global_mean()

        # One pass over the Rating objects, then everything else is sorts
        # (np.lexsort on the fast path, list sorts on the fallback) and
        # vectorised arithmetic over flat columns. All sums of float sets
        # go through math.fsum, which is *exact* (single final rounding),
        # so means and norms are independent of accumulation order and
        # identical across backends; centering is one element-wise IEEE
        # subtraction either way.
        if self._use_numpy:
            rows = [(user_index[r.user], item_index[r.item], r.value) for r in table]
            if rows:
                user_raw, item_raw, value_raw = zip(*rows)
            else:
                user_raw = item_raw = value_raw = ()
            user_arr = _np.asarray(user_raw, dtype=_np.int64)
            item_arr = _np.asarray(item_raw, dtype=_np.int64)
            value_arr = _np.asarray(value_raw, dtype=_np.float64)
            csr_order = _np.lexsort((item_arr, user_arr))
            user_csr = user_arr[csr_order]
            item_csr = item_arr[csr_order]
            value_csr = value_arr[csr_order]
            user_ptr_arr = _np.searchsorted(user_csr, _np.arange(len(users) + 1))
            user_ptr = user_ptr_arr.tolist()
            value_csr_list = value_csr.tolist()
            user_means = [
                math.fsum(value_csr_list[user_ptr[k]:user_ptr[k + 1]])
                / (user_ptr[k + 1] - user_ptr[k])
                for k in range(len(users))]
            csc_order = _np.lexsort((user_csr, item_csr))
            item_csc = item_csr[csc_order]
            item_values_arr = value_csr[csc_order]
            item_ptr_arr = _np.searchsorted(item_csc, _np.arange(len(items) + 1))
            item_ptr = item_ptr_arr.tolist()
            item_values_list = item_values_arr.tolist()
            item_means = [
                math.fsum(item_values_list[item_ptr[k]:item_ptr[k + 1]])
                / (item_ptr[k + 1] - item_ptr[k])
                for k in range(len(items))]
            user_means_arr = _np.asarray(user_means, dtype=_np.float64)
            item_means_arr = _np.asarray(item_means, dtype=_np.float64)
            user_centered_arr = value_csr - user_means_arr[user_csr]
            self.user_means = user_means_arr
            self.item_means = item_means_arr
            self.user_ptr = user_ptr_arr
            self.user_item_idx = item_csr
            self.user_values = value_csr
            self.user_centered = user_centered_arr
            self.user_item_centered = value_csr - item_means_arr[item_csr]
            self.item_ptr = item_ptr_arr
            self.item_user_idx = user_csr[csc_order]
            self.item_values = item_values_arr
            self.item_centered = user_centered_arr[csc_order]
            self.item_likes = item_values_arr >= item_means_arr[item_csc]
            user_item_centered_sq = (
                self.user_item_centered * self.user_item_centered).tolist()
            item_centered_sq = (self.item_centered * self.item_centered).tolist()
            item_raw_sq = (item_values_arr * item_values_arr).tolist()
        else:
            triples = sorted((user_index[r.user], item_index[r.item], r.value)
                             for r in table)
            if triples:
                user_col, item_col, value_col = map(list, zip(*triples))
            else:
                user_col, item_col, value_col = [], [], []
            user_ptr = [0] * (len(users) + 1)
            for u in user_col:
                user_ptr[u + 1] += 1
            for k in range(len(users)):
                user_ptr[k + 1] += user_ptr[k]
            user_means = [
                math.fsum(value_col[user_ptr[k]:user_ptr[k + 1]])
                / (user_ptr[k + 1] - user_ptr[k])
                for k in range(len(users))]
            perm = sorted(range(n), key=lambda k: (item_col[k], user_col[k]))
            item_ptr = [0] * (len(items) + 1)
            for k in perm:
                item_ptr[item_col[k] + 1] += 1
            for k in range(len(items)):
                item_ptr[k + 1] += item_ptr[k]
            item_values = [value_col[k] for k in perm]
            item_means = [
                math.fsum(item_values[item_ptr[k]:item_ptr[k + 1]])
                / (item_ptr[k + 1] - item_ptr[k])
                for k in range(len(items))]
            user_centered = [value_col[k] - user_means[user_col[k]] for k in range(n)]
            self.user_means = user_means
            self.item_means = item_means
            self.user_ptr = user_ptr
            self.user_item_idx = item_col
            self.user_values = value_col
            self.user_centered = user_centered
            self.user_item_centered = [
                value_col[k] - item_means[item_col[k]] for k in range(n)]
            self.item_ptr = item_ptr
            self.item_user_idx = [user_col[k] for k in perm]
            self.item_values = item_values
            self.item_centered = [user_centered[k] for k in perm]
            self.item_likes = [
                item_values[k] >= item_means[item_col[perm[k]]]
                for k in range(n)]
            user_item_centered_sq = [c * c for c in self.user_item_centered]
            item_centered_sq = [c * c for c in self.item_centered]
            item_raw_sq = [v * v for v in item_values]

        user_item_centered_norms = [
            math.sqrt(math.fsum(user_item_centered_sq[user_ptr[k]:user_ptr[k + 1]]))
            for k in range(len(users))]
        item_centered_norms = [
            math.sqrt(math.fsum(item_centered_sq[item_ptr[k]:item_ptr[k + 1]]))
            for k in range(len(items))]
        item_raw_norms = [
            math.sqrt(math.fsum(item_raw_sq[item_ptr[k]:item_ptr[k + 1]]))
            for k in range(len(items))]
        if self._use_numpy:
            self.user_item_centered_norms = _np.asarray(
                user_item_centered_norms, dtype=_np.float64)
            self.item_centered_norms = _np.asarray(
                item_centered_norms, dtype=_np.float64)
            self.item_raw_norms = _np.asarray(item_raw_norms, dtype=_np.float64)
        else:
            self.user_item_centered_norms = user_item_centered_norms
            self.item_centered_norms = item_centered_norms
            self.item_raw_norms = item_raw_norms

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def uses_numpy(self) -> bool:
        """Whether this store runs on the NumPy fast path."""
        return self._use_numpy

    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def n_items(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backend = "numpy" if self._use_numpy else "python"
        return (f"MatrixRatingStore(users={self.n_users}, "
                f"items={self.n_items}, ratings={self.n_ratings}, "
                f"backend={backend})")

    # ------------------------------------------------------------------
    # Column / row slices
    # ------------------------------------------------------------------

    def _item_col(self, idx: int) -> tuple[int, int]:
        return int(self.item_ptr[idx]), int(self.item_ptr[idx + 1])

    def _user_row(self, idx: int) -> tuple[int, int]:
        return int(self.user_ptr[idx]), int(self.user_ptr[idx + 1])

    def item_raters(self, idx: int) -> int:
        """``|Y_i|`` for an item *index*."""
        start, end = self._item_col(idx)
        return end - start

    # ------------------------------------------------------------------
    # Pairwise metrics (string-keyed adapters live in repro.similarity)
    # ------------------------------------------------------------------

    def _common_dot(self, index_column, value_column,
                    slice_a: tuple[int, int],
                    slice_b: tuple[int, int]) -> float:
        """Dot product of two *value_column* slices over the intersection
        of the corresponding (strictly increasing) *index_column* slices.

        The one intersection kernel every pairwise metric shares —
        ``intersect1d`` on the NumPy path, a two-pointer merge on the
        fallback.
        """
        start_a, end_a = slice_a
        start_b, end_b = slice_b
        if self._use_numpy:
            _, pos_a, pos_b = _np.intersect1d(
                index_column[start_a:end_a], index_column[start_b:end_b],
                assume_unique=True, return_indices=True)
            if len(pos_a) == 0:
                return 0.0
            return float(_np.dot(value_column[start_a:end_a][pos_a],
                                 value_column[start_b:end_b][pos_b]))
        pos_a, pos_b = _intersect_sorted(index_column[start_a:end_a],
                                         index_column[start_b:end_b])
        values_a = value_column[start_a:end_a]
        values_b = value_column[start_b:end_b]
        total = 0.0
        for x, y in zip(pos_a, pos_b):
            total += values_a[x] * values_b[y]
        return total

    def _common_values(self, index_column, value_column,
                       slice_a: tuple[int, int],
                       slice_b: tuple[int, int]
                       ) -> tuple[list[float], list[float]]:
        """Aligned value pairs over the intersection, as plain lists."""
        start_a, end_a = slice_a
        start_b, end_b = slice_b
        if self._use_numpy:
            _, pos_a, pos_b = _np.intersect1d(
                index_column[start_a:end_a], index_column[start_b:end_b],
                assume_unique=True, return_indices=True)
            return (value_column[start_a:end_a][pos_a].tolist(),
                    value_column[start_b:end_b][pos_b].tolist())
        pos_a, pos_b = _intersect_sorted(index_column[start_a:end_a],
                                         index_column[start_b:end_b])
        values_a = value_column[start_a:end_a]
        values_b = value_column[start_b:end_b]
        return ([values_a[x] for x in pos_a], [values_b[y] for y in pos_b])

    def adjusted_cosine(self, item_i: str, item_j: str) -> float:
        """Eq 6 over the precomputed centered columns and norms."""
        i = self.item_index.get(item_i)
        j = self.item_index.get(item_j)
        if i is None or j is None:
            return 0.0
        if i == j:
            return 0.0 if self.item_centered_norms[i] == 0.0 else 1.0
        numerator = self._common_dot(
            self.item_user_idx, self.item_centered,
            self._item_col(i), self._item_col(j))
        if numerator == 0.0:
            return 0.0
        denominator = (self.item_centered_norms[i] * self.item_centered_norms[j])
        if denominator == 0.0:
            return 0.0
        return _clip1(numerator / denominator)

    def cosine(self, item_i: str, item_j: str) -> float:
        """Plain cosine over the raw columns, norms over full rater sets."""
        i = self.item_index.get(item_i)
        j = self.item_index.get(item_j)
        if i is None or j is None:
            return 0.0
        numerator = self._common_dot(
            self.item_user_idx, self.item_values,
            self._item_col(i), self._item_col(j))
        if numerator == 0.0:
            return 0.0
        denominator = self.item_raw_norms[i] * self.item_raw_norms[j]
        if denominator == 0.0:
            return 0.0
        return _clip1(numerator / denominator)

    def pearson_items(self, item_i: str, item_j: str) -> float:
        """Item–item Pearson over co-raters (centered on co-rater means)."""
        i = self.item_index.get(item_i)
        j = self.item_index.get(item_j)
        if i is None or j is None:
            return 0.0
        values_i, values_j = self._common_values(
            self.item_user_idx, self.item_values,
            self._item_col(i), self._item_col(j))
        if len(values_i) < 2:
            return 0.0
        mean_i = math.fsum(values_i) / len(values_i)
        mean_j = math.fsum(values_j) / len(values_j)
        numerator = math.fsum(
            (vi - mean_i) * (vj - mean_j)
            for vi, vj in zip(values_i, values_j))
        var_i = math.fsum((vi - mean_i) ** 2 for vi in values_i)
        var_j = math.fsum((vj - mean_j) ** 2 for vj in values_j)
        if var_i == 0.0 or var_j == 0.0:
            return 0.0
        return _clip1(numerator / math.sqrt(var_i * var_j))

    def pearson_users(self, user_a: str, user_b: str) -> float:
        """Eq 1: item-mean-centered numerator, full-profile norms."""
        a = self.user_index.get(user_a)
        b = self.user_index.get(user_b)
        if a is None or b is None:
            return 0.0
        numerator = self._common_dot(
            self.user_item_idx, self.user_item_centered,
            self._user_row(a), self._user_row(b))
        if numerator == 0.0:
            return 0.0
        denominator = (self.user_item_centered_norms[a]
                       * self.user_item_centered_norms[b])
        if denominator == 0.0:
            return 0.0
        return _clip1(numerator / denominator)

    def _like_dict(self, idx: int) -> dict[int, bool]:
        """Lazy per-item ``user index → likes`` dict (cached).

        Typical item profiles have tens-to-hundreds of raters, where a
        small-dict probe loop beats array set-intersection constants by a
        wide margin — this is the Definition-2 hot path the Extender's
        significance sweeps hit, so it gets the dict treatment on both
        backends (the result is an integer count; no float concerns).
        """
        if self._like_dicts is None:
            self._like_dicts = [None] * len(self.items)
        cached = self._like_dicts[idx]
        if cached is None:
            start, end = self._item_col(idx)
            users = self.item_user_idx[start:end]
            likes = self.item_likes[start:end]
            if self._use_numpy:
                users = users.tolist()
                likes = likes.tolist()
            cached = dict(zip(users, likes))
            self._like_dicts[idx] = cached
        return cached

    def significance(self, item_i: str, item_j: str) -> int:
        """Definition 2: probe the smaller like-dict against the larger."""
        i = self.item_index.get(item_i)
        j = self.item_index.get(item_j)
        if i is None or j is None:
            return 0
        likes_i = self._like_dict(i)
        likes_j = self._like_dict(j)
        if len(likes_j) < len(likes_i):
            likes_i, likes_j = likes_j, likes_i
        lookup = likes_j.get
        count = 0
        for user, like in likes_i.items():
            other = lookup(user)
            if other is not None and other == like:
                count += 1
        return count

    def common_raters(self, item_i: str, item_j: str) -> int:
        """``|Y_i ∩ Y_j|`` via the same smaller-into-larger probe."""
        i = self.item_index.get(item_i)
        j = self.item_index.get(item_j)
        if i is None or j is None:
            return 0
        likes_i = self._like_dict(i)
        likes_j = self._like_dict(j)
        if len(likes_j) < len(likes_i):
            likes_i, likes_j = likes_j, likes_i
        return sum(1 for user in likes_i if user in likes_j)

    def normalized_significance(self, item_i: str, item_j: str) -> float:
        """Definition 4: ``S_{i,j} / |Y_i ∪ Y_j|`` without materialising
        the union — ``|Y_i| + |Y_j| − |Y_i ∩ Y_j|``."""
        i = self.item_index.get(item_i)
        j = self.item_index.get(item_j)
        raters_i = self.item_raters(i) if i is not None else 0
        raters_j = self.item_raters(j) if j is not None else 0
        if i == j and i is not None:
            # Degenerate self-query: union == each profile.
            return self.significance(item_i, item_j) / raters_i
        union = raters_i + raters_j - self.common_raters(item_i, item_j)
        if union == 0:
            raise SimilarityError(
                f"normalized significance undefined: neither {item_i!r} "
                f"nor {item_j!r} has raters")
        return self.significance(item_i, item_j) / union

    # ------------------------------------------------------------------
    # All-pairs adjusted cosine (the Baseliner's Eq-6 sweep)
    # ------------------------------------------------------------------

    def _triu(self, n: int):
        """Cached upper-triangle index pair for a profile of length *n*
        (profile lengths repeat heavily, so the cache removes most of the
        per-user index-generation cost)."""
        cached = self._triu_cache.get(n)
        if cached is None:
            cached = _np.triu_indices(n, 1)
            self._triu_cache[n] = cached
        return cached

    def all_pairs_adjusted_cosine(
            self, min_common_users: int = 1,
            max_profile_size: int | None = None,
    ) -> Iterator[tuple[str, str, float]]:
        """Yield ``(i, j, sim)`` for every co-rated item pair (Eq 6).

        Both backends accumulate the numerators in the same canonical
        order (profile-length groups ascending, user index ascending
        within a group, one sequential add per co-rating), so they
        produce bit-identical sums and therefore identical graphs. Pairs
        come out sorted by (i, j) with ``i < j`` (interning is
        lexicographic, so integer order is string order).

        Peak memory on the NumPy path is one ``(key, value)`` pair per
        co-rating contribution (``Σ_u |X_u|²`` entries); cap skewed
        profiles with *max_profile_size* as the paper's Spark job does.
        """
        if self._use_numpy:
            yield from self._all_pairs_numpy(min_common_users, max_profile_size)
        else:
            yield from self._all_pairs_python(min_common_users, max_profile_size)

    @property
    def user_likes(self):
        """Per-rating like/dislike flags in CSR (user-row) order.

        The same Definition-2 comparison as :attr:`item_likes` (value at
        or above the item's mean), but aligned with the per-user rows the
        pair sweep batches over — what lets the sharded sweep fold the
        significance counts into the Eq-6 pass. Built lazily and cached.
        """
        if self._user_likes is None:
            if self._use_numpy:
                self._user_likes = (
                    self.user_values >= self.item_means[self.user_item_idx])
            else:
                self._user_likes = [
                    self.user_values[k]
                    >= self.item_means[self.user_item_idx[k]]
                    for k in range(self.n_ratings)]
        return self._user_likes

    def eligible_users(self, max_profile_size: int | None = None,
                       users: Sequence[int] | None = None):
        """User indexes that contribute Eq-6 pairs, in canonical sweep
        order: profile-length groups ascending, user index ascending
        within a group.

        *users* restricts to a subset (a shard; must be ascending) —
        the order of the restricted sweep is the canonical order filtered
        to the subset, so every shard accumulates exactly as the full
        sweep would over those users.
        """
        if self._use_numpy:
            lengths = _np.diff(self.user_ptr)
            if users is None:
                mask = lengths >= 2
                if max_profile_size is not None:
                    mask &= lengths <= max_profile_size
                eligible = _np.nonzero(mask)[0]
            else:
                candidates = _np.asarray(users, dtype=_np.int64)
                sub = lengths[candidates] if len(candidates) else candidates
                mask = sub >= 2
                if max_profile_size is not None:
                    mask &= sub <= max_profile_size
                eligible = candidates[mask]
            return eligible[_np.argsort(lengths[eligible], kind="stable")]
        ptr = self.user_ptr
        candidates = range(len(self.users)) if users is None else users
        eligible = [
            u for u in candidates
            if ptr[u + 1] - ptr[u] >= 2
            and (max_profile_size is None or ptr[u + 1] - ptr[u] <= max_profile_size)]
        eligible.sort(key=lambda u: (ptr[u + 1] - ptr[u], u))
        return eligible

    def _contribution_arrays_numpy(self, eligible, with_significance: bool):
        """The batched Eq-6 fan-out over *eligible* (canonical order) as
        aligned ``(pair key, numerator contribution[, like agreement])``
        arrays.

        Users are batched by profile length so each batch is one 2-D
        gather + one broadcasted multiply instead of a per-user Python
        iteration. The contribution order (length groups ascending,
        users ascending within a group, triu pair order within a user)
        is mirrored exactly by the pure-Python fallback, and bincount
        adds sequentially in input order — hence bit-identical sums and
        identical output graphs across backends.
        """
        n_items = len(self.items)
        lengths = _np.diff(self.user_ptr)
        group_lengths = lengths[eligible]
        starts = self.user_ptr[eligible]
        likes_all = self.user_likes if with_significance else None
        key_parts = []
        value_parts = []
        agree_parts = []
        distinct, group_bounds = _np.unique(group_lengths, return_index=True)
        group_bounds = list(group_bounds) + [len(eligible)]
        for g, length in enumerate(distinct.tolist()):
            batch_starts = starts[group_bounds[g]:group_bounds[g + 1]]
            offsets = batch_starts[:, None] + _np.arange(length)
            idx = self.user_item_idx[offsets]
            centered = self.user_centered[offsets]
            rows, cols = self._triu(length)
            key_parts.append((idx[:, rows] * n_items + idx[:, cols]).ravel())
            value_parts.append((centered[:, rows] * centered[:, cols]).ravel())
            if with_significance:
                likes = likes_all[offsets]
                agree_parts.append((likes[:, rows] == likes[:, cols]).ravel())
        keys = _np.concatenate(key_parts)
        values = _np.concatenate(value_parts)
        agree = _np.concatenate(agree_parts) if with_significance else None
        return keys, values, agree

    def _reduce_contributions_numpy(self, keys, values, agree) -> PairAccumulation:
        """Group the contribution arrays by pair key.

        Two accumulation strategies with identical results (bincount
        adds sequentially in input order either way): a dense m²-sized
        accumulator when the item space is small relative to the
        contribution count (no sort at all), else sort-based grouping
        via np.unique. The 2²⁴ ceiling caps the dense accumulator at
        ~256 MB for the two arrays.
        """
        n_items = len(self.items)
        if n_items * n_items <= max(1 << 20, min(4 * len(keys), 1 << 24)):
            space = n_items * n_items
            dense_counts = _np.bincount(keys, minlength=space)
            dense_sums = _np.bincount(keys, weights=values, minlength=space)
            uniq = _np.nonzero(dense_counts)[0]
            counts = dense_counts[uniq]
            sums = dense_sums[uniq]
            agree_counts = None
            if agree is not None:
                agree_counts = _np.bincount(keys[agree], minlength=space)[uniq]
        else:
            uniq, inverse, counts = _np.unique(
                keys, return_inverse=True, return_counts=True)
            sums = _np.bincount(inverse, weights=values, minlength=len(uniq))
            agree_counts = None
            if agree is not None:
                agree_counts = _np.bincount(inverse[agree], minlength=len(uniq))
        return PairAccumulation(uniq, sums, counts, agree_counts)

    def _accumulate_python(self, eligible, with_significance: bool,
                           pair_flags=None) -> PairAccumulation:
        """Dict-based per-shard accumulation (pure-Python backend), in
        the same canonical order as the NumPy batches.

        *pair_flags* (the delta re-accumulation's restriction) is an
        ``(in_touched, in_batch)`` pair of per-item boolean lists:
        contributions are kept only for pairs with both endpoints
        touched, or — when *in_batch* is given — at least one endpoint
        in the batch (the like-flag blast radius). Filtering skips
        pairs, never reorders them, so the kept pairs accumulate
        exactly as the unrestricted sweep would.
        """
        n_items = len(self.items)
        sums: dict[int, float] = {}
        counts: dict[int, int] = {}
        agree: dict[int, int] | None = {} if with_significance else None
        in_touched = in_batch = None
        if pair_flags is not None:
            in_touched, in_batch = pair_flags
        ptr = self.user_ptr
        idx_all = self.user_item_idx
        centered_all = self.user_centered
        likes_all = self.user_likes if with_significance else None
        for u in eligible:
            start, end = ptr[u], ptr[u + 1]
            length = end - start
            idx = idx_all[start:end]
            centered = centered_all[start:end]
            if with_significance:
                likes = likes_all[start:end]
                for a in range(length):
                    idx_a = idx[a]
                    base = idx_a * n_items
                    centered_a = centered[a]
                    like_a = likes[a]
                    for b in range(a + 1, length):
                        idx_b = idx[b]
                        if in_touched is not None and not (
                                (in_touched[idx_a] and in_touched[idx_b])
                                or (in_batch is not None
                                    and (in_batch[idx_a] or in_batch[idx_b]))):
                            continue
                        key = base + idx_b
                        value = centered_a * centered[b]
                        if key in sums:
                            sums[key] += value
                            counts[key] += 1
                        else:
                            sums[key] = value
                            counts[key] = 1
                        if like_a == likes[b]:
                            agree[key] = agree.get(key, 0) + 1
            else:
                for a in range(length):
                    idx_a = idx[a]
                    base = idx_a * n_items
                    centered_a = centered[a]
                    for b in range(a + 1, length):
                        idx_b = idx[b]
                        if in_touched is not None and not (
                                in_touched[idx_a] and in_touched[idx_b]):
                            continue
                        key = base + idx_b
                        value = centered_a * centered[b]
                        if key in sums:
                            sums[key] += value
                            counts[key] += 1
                        else:
                            sums[key] = value
                            counts[key] = 1
        return PairAccumulation(None, sums, counts, agree)

    def pair_accumulation(self, users: Sequence[int] | None = None,
                          max_profile_size: int | None = None,
                          with_significance: bool = False
                          ) -> PairAccumulation:
        """Reduced Eq-6 accumulation over *users* (one shard of the pair
        sweep; ``None`` means every user).

        With ``with_significance`` the same pass also counts Definition-2
        like/dislike agreements per pair. Those counts equal the true
        ``S_{i,j}`` only when no profile filter drops co-raters — i.e.
        when *max_profile_size* is ``None`` (a user rating both i and j
        always has a profile of length ≥ 2, so the implicit minimum never
        excludes anyone).
        """
        eligible = self.eligible_users(max_profile_size, users)
        if not self._use_numpy:
            return self._accumulate_python(eligible, with_significance)
        if len(eligible) == 0:
            empty_int = _np.zeros(0, dtype=_np.int64)
            return PairAccumulation(
                empty_int, _np.zeros(0, dtype=_np.float64), empty_int.copy(),
                empty_int.copy() if with_significance else None)
        keys, values, agree = self._contribution_arrays_numpy(
            eligible, with_significance)
        return self._reduce_contributions_numpy(keys, values, agree)

    def merge_accumulations(
            self, parts: Sequence[PairAccumulation]) -> PairAccumulation:
        """Merge per-shard accumulations, in the given (shard index)
        order.

        The integer counts merge exactly (addition of non-negative ints
        is associative). The float numerator partials are added per pair
        sequentially in part order, so for a fixed shard layout the
        merged sums are deterministic and independent of *how* the shards
        were executed (serial or process pool) — and a single-part merge
        returns the part untouched, which is what makes the 1-shard sweep
        bit-identical to the unsharded store path.
        """
        if len(parts) == 1:
            return parts[0]
        with_significance = any(part.agree is not None for part in parts)
        if with_significance and not all(part.agree is not None for part in parts):
            raise SimilarityError(
                "cannot merge accumulations with and without "
                "significance counts")
        if not self._use_numpy:
            sums: dict[int, float] = {}
            counts: dict[int, int] = {}
            agree: dict[int, int] | None = {} if with_significance else None
            for part in parts:
                part_counts = part.counts
                part_agree = part.agree
                for key, value in part.sums.items():
                    if key in sums:
                        sums[key] += value
                        counts[key] += part_counts[key]
                    else:
                        sums[key] = value
                        counts[key] = part_counts[key]
                if with_significance:
                    for key, value in part_agree.items():
                        agree[key] = agree.get(key, 0) + value
            return PairAccumulation(None, sums, counts, agree)
        if not parts:
            return self.pair_accumulation(users=(), with_significance=with_significance)
        keys_cat = _np.concatenate([part.keys for part in parts])
        sums_cat = _np.concatenate([part.sums for part in parts])
        counts_cat = _np.concatenate([part.counts for part in parts])
        uniq, inverse = _np.unique(keys_cat, return_inverse=True)
        sums = _np.bincount(inverse, weights=sums_cat, minlength=len(uniq))
        # Integer partials ride through bincount's float64 weights (exact
        # below 2^53, far beyond any co-rater count) — an order of
        # magnitude faster than the unbuffered np.add.at on this
        # driver-side merge tail.
        counts = _np.bincount(
            inverse, weights=counts_cat,
            minlength=len(uniq)).astype(_np.int64)
        agree_counts = None
        if with_significance:
            agree_cat = _np.concatenate([part.agree for part in parts])
            agree_counts = _np.bincount(
                inverse, weights=agree_cat,
                minlength=len(uniq)).astype(_np.int64)
        return PairAccumulation(uniq, sums, counts, agree_counts)

    # ------------------------------------------------------------------
    # Incremental updates (append a rating batch without a rebuild)
    # ------------------------------------------------------------------

    def _bisect_column(self, column, start: int, end: int, needle: int) -> int:
        """Leftmost position of *needle* in the strictly-increasing
        ``column[start:end]`` slice, as an absolute offset."""
        if self._use_numpy:
            return start + int(_np.searchsorted(column[start:end], needle))
        return bisect.bisect_left(column, needle, start, end)

    def append_ratings(self, batch: "Iterable[Rating]"
                       ) -> tuple["MatrixRatingStore", "StoreDelta"]:
        """A new store with *batch* appended, plus the
        :class:`StoreDelta` describing what moved.

        New users and items are interned at their sorted positions
        (interning stays lexicographic — every downstream tie-break and
        pair-key ordering survives), the CSR/CSC arrays are patched in
        place of a rebuild, and means / centered values / norms / like
        flags are recomputed **only** for the rows and columns the batch
        could have moved. A ``(user, item)`` pair already present has
        its value replaced (the :meth:`RatingTable.with_ratings`
        override semantics); duplicate pairs inside *batch* keep the
        last value, matching the table's merge.

        Equality contract (property-tested in
        ``tests/test_incremental.py``): the appended store is
        **bit-identical** to ``MatrixRatingStore(table.with_ratings(
        batch))`` on the same backend — untouched scalars are copied,
        touched ones recomputed with the exact operations (``math.fsum``
        means and norms, element-wise IEEE centering) the constructor
        uses. The base store is never mutated.
        """
        merged_batch: dict[tuple[str, str], float] = {}
        for rating in batch:
            merged_batch[(rating.user, rating.item)] = float(rating.value)

        old_users, old_items = self.users, self.items
        new_user_names = sorted({u for u, _ in merged_batch} - self.user_index.keys())
        new_item_names = sorted({i for _, i in merged_batch} - self.item_index.keys())
        users_new = (sorted(old_users + new_user_names)
                     if new_user_names else old_users)
        items_new = (sorted(old_items + new_item_names)
                     if new_item_names else old_items)
        user_map = _insert_map(old_users, new_user_names)
        item_map = _insert_map(old_items, new_item_names)
        user_index_new = {u: k for k, u in enumerate(users_new)}
        item_index_new = {i: k for k, i in enumerate(items_new)}

        # Classify the batch: value replacements patch in place, new
        # pairs become (sorted) insertion records with their offsets
        # into the *old* arrays — np.insert / _list_insert semantics.
        replacements_csr: list[tuple[int, float]] = []
        replacements_csc: list[tuple[int, float]] = []
        inserts: list[tuple[int, int, float]] = []
        for (u_name, i_name), value in merged_batch.items():
            u_old = self.user_index.get(u_name)
            i_old = self.item_index.get(i_name)
            if u_old is not None and i_old is not None:
                start, end = self._user_row(u_old)
                pos = self._bisect_column(self.user_item_idx, start, end, i_old)
                if pos < end and int(self.user_item_idx[pos]) == i_old:
                    replacements_csr.append((pos, value))
                    cstart, cend = self._item_col(i_old)
                    cpos = self._bisect_column(self.item_user_idx, cstart, cend, u_old)
                    replacements_csc.append((cpos, value))
                    continue
            inserts.append((user_index_new[u_name], item_index_new[i_name], value))

        imap_get = item_map.__getitem__
        umap_get = user_map.__getitem__
        csr_inserts = sorted(inserts)
        csc_inserts = sorted((i, u, value) for u, i, value in inserts)
        csr_positions: list[int] = []
        for u_new, i_new, _ in csr_inserts:
            u_old = self.user_index.get(users_new[u_new])
            if u_old is None:
                rank = bisect.bisect_left(old_users, users_new[u_new])
                csr_positions.append(int(self.user_ptr[rank]))
                continue
            start, end = self._user_row(u_old)
            # Position of the new item id among the row's remapped ids.
            pos = start
            while pos < end and imap_get(int(self.user_item_idx[pos])) < i_new:
                pos += 1
            csr_positions.append(pos)
        csc_positions: list[int] = []
        for i_new, u_new, _ in csc_inserts:
            i_old = self.item_index.get(items_new[i_new])
            if i_old is None:
                rank = bisect.bisect_left(old_items, items_new[i_new])
                csc_positions.append(int(self.item_ptr[rank]))
                continue
            start, end = self._item_col(i_old)
            pos = start
            while pos < end and umap_get(int(self.item_user_idx[pos])) < u_new:
                pos += 1
            csc_positions.append(pos)

        touched_users = sorted({user_index_new[u] for u, _ in merged_batch})
        batch_items = sorted({item_index_new[i] for _, i in merged_batch})
        n_new = self.n_ratings + len(inserts)

        new = MatrixRatingStore.__new__(MatrixRatingStore)
        new._use_numpy = self._use_numpy
        new._triu_cache = {}
        new._item_names_obj = None
        new._like_dicts = None
        new._user_likes = None
        new.users = users_new
        new.items = items_new
        new.user_index = user_index_new
        new.item_index = item_index_new
        new.n_ratings = n_new
        new.global_mean = self.global_mean

        if self._use_numpy:
            self._append_arrays_numpy(
                new, user_map, item_map, replacements_csr, replacements_csc,
                csr_positions, csr_inserts, csc_positions, csc_inserts,
                touched_users, batch_items)
        else:
            self._append_arrays_python(
                new, user_map, item_map, replacements_csr, replacements_csc,
                csr_positions, csr_inserts, csc_positions, csc_inserts,
                touched_users, batch_items)

        # Touched items: everything in a touched user's new profile.
        touched_set: set[int] = set()
        for u in touched_users:
            start, end = new._user_row(u)
            row = new.user_item_idx[start:end]
            touched_set.update(row.tolist() if self._use_numpy else row)
        touched_items = sorted(touched_set)

        new._finalise_append(touched_users, touched_items, batch_items, n_new)
        delta = StoreDelta(
            n_old_items=len(old_items), user_map=user_map,
            item_map=item_map, touched_users=touched_users,
            touched_items=touched_items, batch_items=batch_items,
            new_users=tuple(new_user_names), new_items=tuple(new_item_names))
        return new, delta

    def _append_arrays_numpy(self, new, user_map, item_map,
                             replacements_csr, replacements_csc,
                             csr_positions, csr_inserts,
                             csc_positions, csc_inserts,
                             touched_users, batch_items) -> None:
        """Patch the CSR/CSC arrays of the appended store (NumPy)."""
        imap = _np.asarray(item_map, dtype=_np.int64)
        umap = _np.asarray(user_map, dtype=_np.int64)
        n_users_new = len(new.users)
        n_items_new = len(new.items)
        csr_pos = _np.asarray(csr_positions, dtype=_np.int64)
        csc_pos = _np.asarray(csc_positions, dtype=_np.int64)
        csr_item_ids = _np.asarray([i for _, i, _ in csr_inserts], dtype=_np.int64)
        csr_values = _np.asarray([v for _, _, v in csr_inserts], dtype=_np.float64)
        csc_user_ids = _np.asarray([u for _, u, _ in csc_inserts], dtype=_np.int64)
        csc_values = _np.asarray([v for _, _, v in csc_inserts], dtype=_np.float64)

        remapped_idx = (imap[self.user_item_idx]
                        if self.n_ratings else self.user_item_idx)
        new.user_item_idx = _np.insert(remapped_idx, csr_pos, csr_item_ids)
        values = self.user_values.copy()
        for pos, value in replacements_csr:
            values[pos] = value
        new.user_values = _np.insert(values, csr_pos, csr_values)
        new.user_centered = _np.insert(self.user_centered, csr_pos, 0.0)
        new.user_item_centered = _np.insert(self.user_item_centered, csr_pos, 0.0)

        lengths = _np.zeros(n_users_new, dtype=_np.int64)
        lengths[umap] = _np.diff(self.user_ptr)
        for u_new, _, _ in csr_inserts:
            lengths[u_new] += 1
        user_ptr = _np.zeros(n_users_new + 1, dtype=_np.int64)
        _np.cumsum(lengths, out=user_ptr[1:])
        new.user_ptr = user_ptr

        user_means = _np.empty(n_users_new, dtype=_np.float64)
        user_means[umap] = self.user_means
        new.user_means = user_means

        remapped_users = (umap[self.item_user_idx]
                          if self.n_ratings else self.item_user_idx)
        new.item_user_idx = _np.insert(remapped_users, csc_pos, csc_user_ids)
        col_values = self.item_values.copy()
        for pos, value in replacements_csc:
            col_values[pos] = value
        new.item_values = _np.insert(col_values, csc_pos, csc_values)
        new.item_centered = _np.insert(self.item_centered, csc_pos, 0.0)
        new.item_likes = _np.insert(self.item_likes, csc_pos, False)

        col_lengths = _np.zeros(n_items_new, dtype=_np.int64)
        col_lengths[imap] = _np.diff(self.item_ptr)
        for i_new, _, _ in csc_inserts:
            col_lengths[i_new] += 1
        item_ptr = _np.zeros(n_items_new + 1, dtype=_np.int64)
        _np.cumsum(col_lengths, out=item_ptr[1:])
        new.item_ptr = item_ptr

        item_means = _np.empty(n_items_new, dtype=_np.float64)
        item_means[imap] = self.item_means
        new.item_means = item_means
        norms = _np.empty(n_items_new, dtype=_np.float64)
        norms[imap] = self.item_centered_norms
        new.item_centered_norms = norms
        raw_norms = _np.empty(n_items_new, dtype=_np.float64)
        raw_norms[imap] = self.item_raw_norms
        new.item_raw_norms = raw_norms
        user_norms = _np.empty(n_users_new, dtype=_np.float64)
        user_norms[umap] = self.user_item_centered_norms
        new.user_item_centered_norms = user_norms

    def _append_arrays_python(self, new, user_map, item_map,
                              replacements_csr, replacements_csc,
                              csr_positions, csr_inserts,
                              csc_positions, csc_inserts,
                              touched_users, batch_items) -> None:
        """Patch the CSR/CSC lists of the appended store (fallback)."""
        n_users_new = len(new.users)
        n_items_new = len(new.items)
        csr_item_ids = [i for _, i, _ in csr_inserts]
        csr_values = [v for _, _, v in csr_inserts]
        csc_user_ids = [u for _, u, _ in csc_inserts]
        csc_values = [v for _, _, v in csc_inserts]

        remapped_idx = [item_map[x] for x in self.user_item_idx]
        new.user_item_idx = _list_insert(remapped_idx, csr_positions, csr_item_ids)
        values = list(self.user_values)
        for pos, value in replacements_csr:
            values[pos] = value
        new.user_values = _list_insert(values, csr_positions, csr_values)
        new.user_centered = _list_insert(
            list(self.user_centered), csr_positions, [0.0] * len(csr_values))
        new.user_item_centered = _list_insert(
            list(self.user_item_centered), csr_positions,
            [0.0] * len(csr_values))

        lengths = [0] * n_users_new
        for k in range(len(self.users)):
            lengths[user_map[k]] = self.user_ptr[k + 1] - self.user_ptr[k]
        for u_new, _, _ in csr_inserts:
            lengths[u_new] += 1
        user_ptr = [0] * (n_users_new + 1)
        for k in range(n_users_new):
            user_ptr[k + 1] = user_ptr[k] + lengths[k]
        new.user_ptr = user_ptr

        user_means = [0.0] * n_users_new
        for k in range(len(self.users)):
            user_means[user_map[k]] = self.user_means[k]
        new.user_means = user_means

        remapped_users = [user_map[x] for x in self.item_user_idx]
        new.item_user_idx = _list_insert(remapped_users, csc_positions, csc_user_ids)
        col_values = list(self.item_values)
        for pos, value in replacements_csc:
            col_values[pos] = value
        new.item_values = _list_insert(col_values, csc_positions, csc_values)
        new.item_centered = _list_insert(
            list(self.item_centered), csc_positions,
            [0.0] * len(csc_values))
        new.item_likes = _list_insert(
            list(self.item_likes), csc_positions,
            [False] * len(csc_values))

        col_lengths = [0] * n_items_new
        for k in range(len(self.items)):
            col_lengths[item_map[k]] = self.item_ptr[k + 1] - self.item_ptr[k]
        for i_new, _, _ in csc_inserts:
            col_lengths[i_new] += 1
        item_ptr = [0] * (n_items_new + 1)
        for k in range(n_items_new):
            item_ptr[k + 1] = item_ptr[k] + col_lengths[k]
        new.item_ptr = item_ptr

        item_means = [0.0] * n_items_new
        norms = [0.0] * n_items_new
        raw_norms = [0.0] * n_items_new
        for k in range(len(self.items)):
            item_means[item_map[k]] = self.item_means[k]
            norms[item_map[k]] = self.item_centered_norms[k]
            raw_norms[item_map[k]] = self.item_raw_norms[k]
        new.item_means = item_means
        new.item_centered_norms = norms
        new.item_raw_norms = raw_norms
        user_norms = [0.0] * n_users_new
        for k in range(len(self.users)):
            user_norms[user_map[k]] = self.user_item_centered_norms[k]
        new.user_item_centered_norms = user_norms

    def _finalise_append(self, touched_users, touched_items, batch_items,
                         n_new: int) -> None:
        """Recompute the derived scalars the batch moved, on the *new*
        store (self), with the exact operations the constructor uses —
        ``math.fsum`` means/norms and element-wise IEEE centering — so
        the appended store is bit-identical to a rebuild."""
        use_numpy = self._use_numpy

        def _seq(values):
            return values.tolist() if use_numpy else values

        # User means first — centered values feed off them.
        for u in touched_users:
            start, end = self._user_row(u)
            values = _seq(self.user_values[start:end])
            mean = math.fsum(values) / len(values)
            self.user_means[u] = mean
            if use_numpy:
                self.user_centered[start:end] = \
                    self.user_values[start:end] - mean
            else:
                for p in range(start, end):
                    self.user_centered[p] = self.user_values[p] - mean

        # Item means for the batch's items (only their columns changed).
        for i in batch_items:
            start, end = self._item_col(i)
            values = _seq(self.item_values[start:end])
            self.item_means[i] = math.fsum(values) / len(values)

        # CSC centered values follow the touched users' new means: a
        # touched user's ratings all live in touched-item columns.
        for i in touched_items:
            start, end = self._item_col(i)
            if use_numpy:
                self.item_centered[start:end] = (
                    self.item_values[start:end]
                    - self.user_means[self.item_user_idx[start:end]])
            else:
                for p in range(start, end):
                    self.item_centered[p] = (
                        self.item_values[p]
                        - self.user_means[self.item_user_idx[p]])
            seg = self.item_centered[start:end]
            self.item_centered_norms[i] = math.sqrt(math.fsum(
                _seq(seg * seg) if use_numpy else [c * c for c in seg]))

        # Like flags and raw norms follow the batch items' new means.
        for i in batch_items:
            start, end = self._item_col(i)
            mean = self.item_means[i]
            if use_numpy:
                self.item_likes[start:end] = \
                    self.item_values[start:end] >= mean
            else:
                for p in range(start, end):
                    self.item_likes[p] = self.item_values[p] >= mean
            seg = self.item_values[start:end]
            self.item_raw_norms[i] = math.sqrt(math.fsum(
                _seq(seg * seg) if use_numpy else [v * v for v in seg]))

        # Eq-1 centering (value − item mean) for every rating of a
        # batch item, then the affected users' norms: the touched users
        # (row membership changed) plus every rater of a batch item.
        affected_users = set(touched_users)
        if use_numpy:
            in_batch = _np.zeros(len(self.items), dtype=bool)
            in_batch[batch_items] = True
            mask = in_batch[self.user_item_idx] if n_new else \
                _np.zeros(0, dtype=bool)
            self.user_item_centered[mask] = (
                self.user_values[mask]
                - self.item_means[self.user_item_idx[mask]])
        else:
            in_batch_list = [False] * len(self.items)
            for i in batch_items:
                in_batch_list[i] = True
            for p in range(n_new):
                idx = self.user_item_idx[p]
                if in_batch_list[idx]:
                    self.user_item_centered[p] = (
                        self.user_values[p] - self.item_means[idx])
        for i in batch_items:
            start, end = self._item_col(i)
            col_users = self.item_user_idx[start:end]
            affected_users.update(_seq(col_users))
        for u in sorted(affected_users):
            start, end = self._user_row(u)
            seg = self.user_item_centered[start:end]
            self.user_item_centered_norms[u] = math.sqrt(math.fsum(
                _seq(seg * seg) if use_numpy else [c * c for c in seg]))

        # fsum is exact whatever the order, so summing the patched value
        # column equals the rebuild's sum over the table bit for bit.
        # (An empty store keeps the base's scale-midpoint global mean,
        # copied before this runs.)
        if n_new:
            self.global_mean = math.fsum(_seq(self.user_values)) / n_new

    def delta_candidates(self, delta: "StoreDelta", with_significance: bool = False):
        """Ascending user indexes that can contribute to the pairs
        *delta* touched — users with ≥2 touched items in their profile,
        plus (with significance) raters of a batch item.

        One O(ratings) scan; the sharded delta computes this once and
        intersects per shard instead of re-scanning per shard.
        """
        if self._use_numpy:
            n_items = len(self.items)
            if self.n_ratings == 0 or not delta.touched_items:
                return _np.zeros(0, dtype=_np.int64)
            flags_it = _np.zeros(n_items, dtype=bool)
            flags_it[delta.touched_items] = True
            hits = _np.concatenate((
                [0], _np.cumsum(flags_it[self.user_item_idx], dtype=_np.int64)))
            it_count = hits[self.user_ptr[1:]] - hits[self.user_ptr[:-1]]
            candidate = it_count >= 2
            if with_significance:
                flags_ib = _np.zeros(n_items, dtype=bool)
                if delta.batch_items:
                    flags_ib[delta.batch_items] = True
                ib_hits = _np.concatenate((
                    [0], _np.cumsum(flags_ib[self.user_item_idx], dtype=_np.int64)))
                ib_count = (ib_hits[self.user_ptr[1:]] - ib_hits[self.user_ptr[:-1]])
                candidate |= (ib_count >= 1) \
                    & (_np.diff(self.user_ptr) >= 2)
            return _np.nonzero(candidate)[0]
        flags_it_list = [False] * len(self.items)
        for i in delta.touched_items:
            flags_it_list[i] = True
        flags_ib_list = None
        if with_significance:
            flags_ib_list = [False] * len(self.items)
            for i in delta.batch_items:
                flags_ib_list[i] = True
        ptr = self.user_ptr
        idx_all = self.user_item_idx
        candidates: list[int] = []
        for u in range(len(self.users)):
            start, end = ptr[u], ptr[u + 1]
            if end - start < 2:
                continue
            it_hits = 0
            ib_hits = 0
            for p in range(start, end):
                idx = idx_all[p]
                if flags_it_list[idx]:
                    it_hits += 1
                if flags_ib_list is not None and flags_ib_list[idx]:
                    ib_hits += 1
            if it_hits >= 2 or ib_hits >= 1:
                candidates.append(u)
        return candidates

    def delta_pair_accumulation(self, delta: "StoreDelta",
                                users: Sequence[int] | None = None,
                                with_significance: bool = False,
                                candidates=None) -> PairAccumulation:
        """Eq-6 re-accumulation restricted to the pairs *delta* touched.

        Called on the **appended** store. Recomputes, from scratch and
        in the canonical sweep order, every pair whose numerator, count
        or Definition-2 agreement the batch could have moved: pairs with
        both endpoints in ``delta.touched_items`` (a touched user's
        centered values feed them), plus — with significance — pairs
        with an endpoint in ``delta.batch_items`` (their item means
        moved, flipping like flags of *untouched* co-raters too).

        Contributing users are exactly the full sweep's for those pairs,
        visited in the same canonical order; a pair receives at most one
        contribution per user, so per-pair sums see the same addends in
        the same sequence and folding the result over the old
        accumulation (:meth:`apply_accumulation_delta`) reproduces a
        from-scratch sweep **bit for bit** — even though each user's
        contributions are generated from the *touched sub-profile* (the
        fan-out is quadratic in ``|X_u ∩ touched|``, not ``|X_u|``,
        which is what keeps a small batch's delta far below a full
        sweep). *users* restricts to one shard (ascending indexes):
        per-shard deltas merged in shard order equal the sharded rebuild
        the same way. *candidates* is an optional precomputed
        :meth:`delta_candidates` result — the sharded delta passes it
        so the O(ratings) candidate scan runs once per update, not once
        per shard.
        """
        n_items = len(self.items)
        if candidates is None:
            candidates = self.delta_candidates(delta, with_significance)
        if self._use_numpy:
            flags_it = _np.zeros(n_items, dtype=bool)
            if delta.touched_items:
                flags_it[delta.touched_items] = True
            flags_ib = None
            if with_significance:
                flags_ib = _np.zeros(n_items, dtype=bool)
                if delta.batch_items:
                    flags_ib[delta.batch_items] = True
            empty_int = _np.zeros(0, dtype=_np.int64)
            empty = PairAccumulation(
                empty_int, _np.zeros(0, dtype=_np.float64),
                empty_int.copy(),
                empty_int.copy() if with_significance else None)
            if self.n_ratings == 0 or not delta.touched_items:
                return empty
            candidates = _np.asarray(candidates, dtype=_np.int64)
            if users is not None:
                candidates = _np.intersect1d(
                    candidates, _np.asarray(users, dtype=_np.int64),
                    assume_unique=True)
            eligible = self.eligible_users(users=candidates)
            if len(eligible) == 0:
                return empty
            ptr = self.user_ptr
            idx_all = self.user_item_idx
            centered_all = self.user_centered
            likes_all = self.user_likes if with_significance else None
            key_parts = []
            value_parts = []
            agree_parts = []
            for u in eligible.tolist():
                start, end = int(ptr[u]), int(ptr[u + 1])
                idx = idx_all[start:end]
                if with_significance and flags_ib[idx].any():
                    # A batch item's mean moved, so *every* pair through
                    # it is affected — full fan-out, then the pair mask.
                    rows, cols = self._triu(end - start)
                    ids_a = idx[rows]
                    ids_b = idx[cols]
                    keep = (flags_it[ids_a] & flags_it[ids_b]) \
                        | flags_ib[ids_a] | flags_ib[ids_b]
                    ids_a, ids_b = ids_a[keep], ids_b[keep]
                    centered = centered_all[start:end]
                    values = (centered[rows] * centered[cols])[keep]
                    likes = likes_all[start:end]
                    agrees = (likes[rows] == likes[cols])[keep]
                else:
                    # Only both-touched pairs are affected: the fan-out
                    # is quadratic in the touched sub-profile.
                    sub = _np.nonzero(flags_it[idx])[0]
                    if len(sub) < 2:
                        continue
                    rows, cols = self._triu(len(sub))
                    ids_a = idx[sub][rows]
                    ids_b = idx[sub][cols]
                    centered = centered_all[start:end][sub]
                    values = centered[rows] * centered[cols]
                    agrees = None
                    if with_significance:
                        likes = likes_all[start:end][sub]
                        agrees = likes[rows] == likes[cols]
                key_parts.append(ids_a * n_items + ids_b)
                value_parts.append(values)
                if with_significance:
                    agree_parts.append(agrees)
            if not key_parts:
                return empty
            return self._reduce_contributions_numpy(
                _np.concatenate(key_parts),
                _np.concatenate(value_parts),
                _np.concatenate(agree_parts) if with_significance else None)
        flags_it_list = [False] * n_items
        for i in delta.touched_items:
            flags_it_list[i] = True
        flags_ib_list = None
        if with_significance:
            flags_ib_list = [False] * n_items
            for i in delta.batch_items:
                flags_ib_list[i] = True
        if users is not None:
            shard = set(users)
            candidates = [u for u in candidates if u in shard]
        eligible = self.eligible_users(users=candidates)
        return self._accumulate_python(
            eligible, with_significance,
            pair_flags=(flags_it_list, flags_ib_list))

    def apply_accumulation_delta(self, acc: PairAccumulation,
                                 delta_acc: PairAccumulation,
                                 delta: "StoreDelta") -> PairAccumulation:
        """Fold a :meth:`delta_pair_accumulation` result over the
        retained accumulation of the base store.

        Old pair keys are remapped through ``delta.item_map`` (strictly
        increasing, so sorted key order survives), every pair the delta
        recomputed is dropped from the old side, and the delta's entries
        take their place — the merged accumulation equals a from-scratch
        sweep over the appended store bit for bit. Called on the
        **appended** store.
        """
        with_significance = delta_acc.agree is not None
        if (acc.agree is not None) != with_significance:
            raise SimilarityError(
                "cannot fold a delta accumulation with significance "
                "counts into one without (or vice versa)")
        n_old = delta.n_old_items
        n_new = len(self.items)
        if self._use_numpy:
            flags_it = _np.zeros(n_new, dtype=bool)
            if delta.touched_items:
                flags_it[delta.touched_items] = True
            flags_ib = None
            if with_significance:
                flags_ib = _np.zeros(n_new, dtype=bool)
                if delta.batch_items:
                    flags_ib[delta.batch_items] = True
            if len(acc.keys):
                imap = _np.asarray(delta.item_map, dtype=_np.int64)
                left = imap[acc.keys // n_old]
                right = imap[acc.keys % n_old]
                keys = left * n_new + right
                affected = flags_it[left] & flags_it[right]
                if with_significance:
                    affected |= flags_ib[left] | flags_ib[right]
                keep = ~affected
                kept_keys = keys[keep]
                kept_sums = acc.sums[keep]
                kept_counts = acc.counts[keep]
                kept_agree = (acc.agree[keep] if with_significance else None)
            else:
                kept_keys = acc.keys
                kept_sums = acc.sums
                kept_counts = acc.counts
                kept_agree = acc.agree
            pos = _np.searchsorted(kept_keys, delta_acc.keys)
            return PairAccumulation(
                _np.insert(kept_keys, pos, delta_acc.keys),
                _np.insert(kept_sums, pos, delta_acc.sums),
                _np.insert(kept_counts, pos, delta_acc.counts),
                _np.insert(kept_agree, pos, delta_acc.agree)
                if with_significance else None)
        flags_it_list = [False] * n_new
        for i in delta.touched_items:
            flags_it_list[i] = True
        flags_ib_list = [False] * n_new
        if with_significance:
            for i in delta.batch_items:
                flags_ib_list[i] = True
        imap_list = delta.item_map
        sums: dict[int, float] = {}
        counts: dict[int, int] = {}
        agree: dict[int, int] | None = {} if with_significance else None
        acc_counts = acc.counts
        acc_agree = acc.agree
        for key, value in acc.sums.items():
            old_left, old_right = divmod(key, n_old)
            left = imap_list[old_left]
            right = imap_list[old_right]
            if (flags_it_list[left] and flags_it_list[right]) or \
                    flags_ib_list[left] or flags_ib_list[right]:
                continue
            new_key = left * n_new + right
            sums[new_key] = value
            counts[new_key] = acc_counts[key]
            if with_significance:
                hits = acc_agree.get(key)
                if hits is not None:
                    agree[new_key] = hits
        sums.update(delta_acc.sums)
        counts.update(delta_acc.counts)
        if with_significance:
            agree.update(delta_acc.agree)
        return PairAccumulation(None, sums, counts, agree)

    def assemble_row_refresh(self, acc: PairAccumulation,
                             delta: "StoreDelta",
                             extra_rows: Sequence[int] = (),
                             min_common_users: int = 1,
                             min_abs_similarity: float = 0.0,
                             with_index: bool = True):
        """Re-assemble only the adjacency rows an append could have
        moved.

        *acc* is the already-folded full accumulation of the appended
        store. The affected rows are the touched items (their norms —
        so every incident weight — moved), every current partner of a
        touched item, and *extra_rows* (the caller passes the touched
        items' *pre-update* partners, so rows that lost their last edge
        are refreshed to empty too).

        Returns ``(rows, index_update, affected)``: *rows* maps item
        name → complete new neighbor dict (possibly empty), *affected*
        is the ascending index list the rows cover, and *index_update*
        is the ``(sizes, neighbor ids, weights)`` flat-row bundle
        :meth:`NeighborIndex.updated` splices — per-row sizes aligned
        with *affected*, ids/weights concatenated in row order (``None``
        when the index was not requested). Row contents are
        bit-identical to what :meth:`assemble_from_partitions` would
        build for those items.
        """
        items = self.items
        if self._use_numpy:
            n_items = len(items)
            flags_it = _np.zeros(n_items, dtype=bool)
            if delta.touched_items:
                flags_it[delta.touched_items] = True
            # Affected rows first, from the raw pair keys (cheap key
            # arithmetic); the Eq-6 filter/normalise/clip tail then runs
            # only on the affected subset — element-wise, so the kept
            # weights are bit-identical to the full assembly's.
            in_r = flags_it.copy()
            if acc.n_pairs:
                left_all = acc.keys // n_items
                right_all = acc.keys % n_items
                touch = flags_it[left_all] | flags_it[right_all]
                in_r[left_all[touch]] = True
                in_r[right_all[touch]] = True
            if len(extra_rows):
                in_r[_np.asarray(extra_rows, dtype=_np.int64)] = True
            if acc.n_pairs:
                emask = in_r[left_all] | in_r[right_all]
                left = left_all[emask]
                right = right_all[emask]
                sums = acc.sums[emask]
                counts = acc.counts[emask]
                denominators = (self.item_centered_norms[left]
                                * self.item_centered_norms[right])
                keep = (counts >= min_common_users) & (sums != 0.0) \
                    & (denominators != 0.0)
                left, right = left[keep], right[keep]
                sims = _np.clip(sums[keep] / denominators[keep], -1.0, 1.0)
                if min_abs_similarity > 0.0:
                    keep = _np.abs(sims) >= min_abs_similarity
                    left, right, sims = left[keep], right[keep], sims[keep]
            else:
                left = _np.zeros(0, dtype=_np.int64)
                right = left.copy()
                sims = _np.zeros(0, dtype=_np.float64)
            fwd = in_r[left]
            rev = in_r[right]
            src = _np.concatenate([left[fwd], right[rev]])
            tgt = _np.concatenate([right[fwd], left[rev]])
            wts = _np.concatenate([sims[fwd], sims[rev]])
            order = _np.lexsort((tgt, -wts, src))
            src, tgt, wts = src[order], tgt[order], wts[order]
            affected = _np.nonzero(in_r)[0]
            starts = _np.searchsorted(src, affected)
            ends = _np.searchsorted(src, affected + 1)
            if self._item_names_obj is None:
                self._item_names_obj = _np.asarray(items, dtype=object)
            rows: dict[str, dict[str, float]] = {}
            tgt_names = self._item_names_obj[tgt].tolist() if len(tgt) \
                else []
            wts_list = wts.tolist()
            for k, i in enumerate(affected.tolist()):
                a, b = int(starts[k]), int(ends[k])
                rows[items[i]] = dict(zip(tgt_names[a:b], wts_list[a:b]))
            index_update = None
            if with_index:
                # tgt/wts are already the affected rows' rank-ordered
                # contents concatenated in row order — hand them over
                # wholesale, no per-row slicing.
                index_update = (ends - starts, tgt, wts)
            return rows, index_update, affected.tolist()
        flags_it_list = [False] * len(items)
        for i in delta.touched_items:
            flags_it_list[i] = True
        # Key order is irrelevant here — only the per-row rank sort
        # below is observable — so iterate the accumulation unsorted
        # instead of paying _iter_index_pairs_python's global sort.
        norms = self.item_centered_norms
        n_items = len(items)
        counts_map = acc.counts
        pairs = []
        for key, numerator in acc.sums.items():
            if counts_map[key] < min_common_users or numerator == 0.0:
                continue
            left, right = divmod(key, n_items)
            denominator = norms[left] * norms[right]
            if denominator == 0.0:
                continue
            sim = _clip1(numerator / denominator)
            if abs(sim) >= min_abs_similarity:
                pairs.append((left, right, sim))
        in_r = list(flags_it_list)
        for left, right, _ in pairs:
            if flags_it_list[left] or flags_it_list[right]:
                in_r[left] = True
                in_r[right] = True
        for i in extra_rows:
            in_r[i] = True
        row_lists: dict[int, list[tuple[int, float]]] = {
            i: [] for i in range(len(items)) if in_r[i]}
        for left, right, sim in pairs:
            if in_r[left]:
                row_lists[left].append((right, sim))
            if in_r[right]:
                row_lists[right].append((left, sim))
        rows = {}
        affected_list = sorted(row_lists)
        sizes: list[int] = []
        flat_ids: list[int] = []
        flat_wts: list[float] = []
        for i in affected_list:
            row = row_lists[i]
            row.sort(key=lambda edge: (-edge[1], edge[0]))
            rows[items[i]] = {items[t]: w for t, w in row}
            if with_index:
                sizes.append(len(row))
                flat_ids.extend(t for t, _ in row)
                flat_wts.extend(w for _, w in row)
        index_update = (sizes, flat_ids, flat_wts) if with_index else None
        return rows, index_update, affected_list

    def _pairs_from_accumulation_numpy(self, acc: PairAccumulation,
                                       min_common_users: int):
        """The filtered Eq-6 pairs of an accumulation as three aligned
        arrays ``(left item idx, right item idx, similarity)``, or None
        when no pair survives."""
        if len(acc.keys) == 0:
            return None
        n_items = len(self.items)
        uniq, sums, counts = acc.keys, acc.sums, acc.counts
        left = uniq // n_items
        right = uniq % n_items
        denominators = (self.item_centered_norms[left]
                        * self.item_centered_norms[right])
        keep = (counts >= min_common_users) & (sums != 0.0) \
            & (denominators != 0.0)
        similarities = _np.clip(sums[keep] / denominators[keep], -1.0, 1.0)
        return left[keep], right[keep], similarities

    def _iter_index_pairs_python(self, acc: PairAccumulation,
                                 min_common_users: int
                                 ) -> Iterator[tuple[int, int, float]]:
        """Yield the filtered ``(left idx, right idx, sim)`` pairs of a
        dict-backed accumulation, sorted by pair key."""
        norms = self.item_centered_norms
        n_items = len(self.items)
        sums, counts = acc.sums, acc.counts
        for key in sorted(sums):
            if counts[key] < min_common_users:
                continue
            numerator = sums[key]
            if numerator == 0.0:
                continue
            left, right = divmod(key, n_items)
            denominator = norms[left] * norms[right]
            if denominator == 0.0:
                continue
            yield left, right, _clip1(numerator / denominator)

    def _iter_pairs_from_accumulation_python(self, acc: PairAccumulation,
                                             min_common_users: int
                                             ) -> Iterator[tuple[str, str, float]]:
        """Yield the filtered ``(i, j, sim)`` pairs of a dict-backed
        accumulation, sorted by pair key."""
        items = self.items
        for left, right, sim in self._iter_index_pairs_python(acc, min_common_users):
            yield items[left], items[right], sim

    def significance_from_accumulation(
            self, acc: PairAccumulation
    ) -> tuple[dict[tuple[str, str], int], dict[tuple[str, str], int]]:
        """Bulk Definition-2 counts for every co-rated pair of *acc*.

        Returns ``(raw, common)``: the significance ``S_{i,j}`` and the
        co-rater count ``|Y_i ∩ Y_j|`` keyed by ``(item_i, item_j)`` with
        ``i < j``. Both are exact integers, so they are identical to the
        per-pair :meth:`significance` / :meth:`common_raters` lookups
        regardless of sharding.
        """
        if acc.agree is None:
            raise SimilarityError(
                "accumulation was built without significance counts "
                "(pass with_significance=True)")
        items = self.items
        n_items = len(items)
        raw: dict[tuple[str, str], int] = {}
        common: dict[tuple[str, str], int] = {}
        if self._use_numpy:
            lefts = (acc.keys // n_items).tolist()
            rights = (acc.keys % n_items).tolist()
            for l_idx, r_idx, agrees, cnt in zip(
                    lefts, rights, acc.agree.tolist(), acc.counts.tolist()):
                pair = (items[l_idx], items[r_idx])
                raw[pair] = agrees
                common[pair] = cnt
        else:
            for key in sorted(acc.sums):
                l_idx, r_idx = divmod(key, n_items)
                pair = (items[l_idx], items[r_idx])
                raw[pair] = acc.agree.get(key, 0)
                common[pair] = acc.counts[key]
        return raw, common

    def _pair_arrays_numpy(self, min_common_users: int, max_profile_size: int | None):
        """The unsharded filtered pair sweep (one accumulation over every
        eligible user, then the shared filter/clip tail)."""
        acc = self.pair_accumulation(max_profile_size=max_profile_size)
        return self._pairs_from_accumulation_numpy(acc, min_common_users)

    def _all_pairs_numpy(self, min_common_users: int,
                         max_profile_size: int | None
                         ) -> Iterator[tuple[str, str, float]]:
        arrays = self._pair_arrays_numpy(min_common_users, max_profile_size)
        if arrays is None:
            return
        left, right, similarities = arrays
        items = self.items
        for a, b, sim in zip(left.tolist(), right.tolist(), similarities.tolist()):
            yield items[a], items[b], sim

    def build_adjacency(
            self, min_common_users: int = 1,
            min_abs_similarity: float = 0.0,
            max_profile_size: int | None = None,
    ) -> dict[str, dict[str, float]]:
        """The full symmetric Eq-6 adjacency, assembled in bulk.

        Semantically ``{i: {j: sim}}`` over the pairs
        :meth:`all_pairs_adjusted_cosine` yields (every item present,
        isolated ones with an empty neighbor dict; edges with
        ``|sim| < min_abs_similarity`` dropped), but built without a
        per-edge Python loop: on the NumPy path the directed edge list is
        sorted once and each item's neighbor dict is one C-speed
        ``dict(zip(...))`` over a contiguous slice. This is what
        :func:`~repro.similarity.graph.build_similarity_graph` adopts
        wholesale — per-edge dict churn was the second-largest cost of
        graph construction after the pair sweep itself.
        """
        return self.adjacency_from_accumulation(
            self.pair_accumulation(max_profile_size=max_profile_size),
            min_common_users=min_common_users,
            min_abs_similarity=min_abs_similarity)

    def adjacency_from_accumulation(
            self, acc: PairAccumulation,
            min_common_users: int = 1,
            min_abs_similarity: float = 0.0,
    ) -> dict[str, dict[str, float]]:
        """Assemble the symmetric Eq-6 adjacency from a (merged)
        accumulation — the single-partition driver pass, kept as the
        reference tail of :meth:`assemble_from_partitions`."""
        return self.assemble_from_partitions(
            [acc], min_common_users=min_common_users,
            min_abs_similarity=min_abs_similarity).adjacency

    def neighbor_index(self, min_common_users: int = 1,
                       min_abs_similarity: float = 0.0,
                       max_profile_size: int | None = None,
                       k: int | None = None) -> "NeighborIndex":
        """Rank-ordered :class:`~repro.similarity.knn.NeighborIndex`
        from one unsharded Eq-6 sweep (no adjacency dicts built).

        This is the serve-side entry point
        :class:`~repro.cf.item_knn.ItemKNNRecommender` uses: rows hold
        every nonzero-similarity neighbor (or the top-*k* when given),
        ordered by descending similarity with the ascending-id
        tie-break, so predictions are O(k) row scans.
        """
        acc = self.pair_accumulation(max_profile_size=max_profile_size)
        return self.assemble_from_partitions(
            [acc], min_common_users=min_common_users,
            min_abs_similarity=min_abs_similarity,
            with_adjacency=False, with_index=True, index_k=k).index

    def split_accumulation(self, acc: PairAccumulation,
                           owners: Sequence[int],
                           n_partitions: int) -> list[PairAccumulation]:
        """Split an accumulation by the partition owning each pair's
        **left** item.

        *owners* maps item index → partition id (the engine hands in a
        :class:`~repro.engine.partitioner.HashPartitioner` assignment
        over the item ids, so every shard and every run agrees on the
        layout). Pair keys encode ``left * n_items + right``, so
        ``owners[key // n_items]`` routes a pair. Splitting only moves
        entries between containers — re-merging the parts per partition
        in the original part order reproduces the unsplit merge bit for
        bit, which is what keeps the partitioned assembly's similarities
        identical to the driver pass.
        """
        if n_partitions == 1:
            return [acc]
        n_items = len(self.items)
        if self._use_numpy:
            owner_arr = _np.asarray(owners, dtype=_np.int64)
            part_of = owner_arr[acc.keys // n_items] if len(acc.keys) \
                else _np.zeros(0, dtype=_np.int64)
            parts = []
            for p in range(n_partitions):
                mask = part_of == p
                parts.append(PairAccumulation(
                    acc.keys[mask], acc.sums[mask], acc.counts[mask],
                    None if acc.agree is None else acc.agree[mask]))
            return parts
        sums: list[dict[int, float]] = [{} for _ in range(n_partitions)]
        counts: list[dict[int, int]] = [{} for _ in range(n_partitions)]
        agree: list[dict[int, int]] | None = (
            None if acc.agree is None
            else [{} for _ in range(n_partitions)])
        acc_counts = acc.counts
        acc_agree = acc.agree
        for key, value in acc.sums.items():
            p = owners[key // n_items]
            sums[p][key] = value
            counts[p][key] = acc_counts[key]
            if agree is not None:
                hits = acc_agree.get(key)
                if hits is not None:
                    agree[p][key] = hits
        return [PairAccumulation(
            None, sums[p], counts[p],
            None if agree is None else agree[p])
            for p in range(n_partitions)]

    def assemble_from_partitions(
            self, parts: Sequence[PairAccumulation],
            owners: Sequence[int] | None = None,
            min_common_users: int = 1,
            min_abs_similarity: float = 0.0,
            with_adjacency: bool = True,
            with_index: bool = False,
            index_k: int | None = None,
    ) -> "AssemblyResult":
        """Assemble adjacency rows (and optionally a
        :class:`~repro.similarity.knn.NeighborIndex`) per item
        partition.

        *parts* holds one merged accumulation per partition, pairs
        routed by their left item (:meth:`split_accumulation`); *owners*
        is the item → partition assignment (``None`` for a single
        partition). Each partition turns its pairs into similarities
        locally, ships the reversed directed edges to the partition
        owning the right endpoint, and assembles the rows of *its own*
        items — nothing funnels through one driver-wide sort.

        Determinism: every (source, target) edge appears in exactly one
        partition and its weight comes from per-pair sums merged in
        shard order, so the assembled adjacency equals the driver-pass
        :meth:`adjacency_from_accumulation` output bit for bit at any
        partition count — partitioning moves *where* a row is built,
        never its contents. Index rows are ranked by (descending
        weight, ascending neighbor index); with *index_k* they are
        truncated to the top-k during partition-local assembly.
        """
        if len(parts) > 1:
            if owners is None:
                raise SimilarityError("owners is required for multi-partition assembly")
            if len(owners) != len(self.items):
                raise SimilarityError(
                    f"owners has {len(owners)} entries for "
                    f"{len(self.items)} items")
        if self._use_numpy:
            return self._assemble_numpy(
                parts, owners, min_common_users, min_abs_similarity,
                with_adjacency, with_index, index_k)
        return self._assemble_python(
            parts, owners, min_common_users, min_abs_similarity,
            with_adjacency, with_index, index_k)

    def _assemble_numpy(self, parts, owners, min_common_users,
                        min_abs_similarity, with_adjacency, with_index,
                        index_k) -> "AssemblyResult":
        from repro.similarity.knn import NeighborIndex

        n_partitions = len(parts)
        n_items = len(self.items)
        empty_int = _np.zeros(0, dtype=_np.int64)
        empty_float = _np.zeros(0, dtype=_np.float64)

        # Stage A: partition-local pair extraction — the Eq-6 filter /
        # normalise / clip tail runs on each partition's own pairs.
        partition_edges = []
        for acc in parts:
            arrays = self._pairs_from_accumulation_numpy(acc, min_common_users)
            if arrays is None:
                partition_edges.append((empty_int, empty_int, empty_float))
                continue
            left, right, sims = arrays
            if min_abs_similarity > 0.0:
                keep = _np.abs(sims) >= min_abs_similarity
                left, right, sims = left[keep], right[keep], sims[keep]
            partition_edges.append((left, right, sims))

        # Stage B: reversed-edge exchange. Forward (left → right) edges
        # already sit in the partition owning their source row; the
        # reversed (right → left) edges route to owners[right]. With one
        # partition everything stays local.
        inboxes: list[list[tuple]] = [[] for _ in range(n_partitions)]
        if n_partitions == 1:
            left, right, sims = partition_edges[0]
            inboxes[0].append((right, left, sims))
        else:
            owner_arr = _np.asarray(owners, dtype=_np.int64)
            for left, right, sims in partition_edges:
                if len(left) == 0:
                    continue
                dest = owner_arr[right]
                order = _np.argsort(dest, kind="stable")
                rev_src = right[order]
                rev_tgt = left[order]
                rev_wts = sims[order]
                bounds = _np.searchsorted(dest[order], _np.arange(n_partitions + 1))
                for p, (a, b) in enumerate(zip(bounds[:-1].tolist(),
                                               bounds[1:].tolist())):
                    if a != b:
                        inboxes[p].append((rev_src[a:b], rev_tgt[a:b], rev_wts[a:b]))

        # Stage C: per-partition row assembly. Each partition sorts only
        # its own directed edges; with an index requested the sort key
        # adds the serving rank (descending weight, ascending target) so
        # the top-k selection is a row-prefix slice, not a second sort.
        adjacency = ({item: {} for item in self.items} if with_adjacency else None)
        if self._item_names_obj is None:
            self._item_names_obj = _np.asarray(self.items, dtype=object)
        degrees = _np.zeros(n_items, dtype=_np.int64) if with_index else None
        fills = []
        item_range = _np.arange(n_items + 1)
        items = self.items
        for p in range(n_partitions):
            fwd_left, fwd_right, fwd_sims = partition_edges[p]
            src_parts = [fwd_left] + [m[0] for m in inboxes[p]]
            tgt_parts = [fwd_right] + [m[1] for m in inboxes[p]]
            wts_parts = [fwd_sims] + [m[2] for m in inboxes[p]]
            src = _np.concatenate(src_parts)
            if len(src) == 0:
                continue
            tgt = _np.concatenate(tgt_parts)
            wts = _np.concatenate(wts_parts)
            if with_index:
                order = _np.lexsort((tgt, -wts, src))
            else:
                order = _np.argsort(src, kind="stable")
            src = src[order]
            tgt = tgt[order]
            wts = wts[order]
            bounds = _np.searchsorted(src, item_range)
            if with_adjacency:
                target_names = self._item_names_obj[tgt].tolist()
                weight_list = wts.tolist()
                for k, (start, end) in enumerate(zip(bounds[:-1].tolist(),
                                                     bounds[1:].tolist())):
                    if start != end:
                        adjacency[items[k]] = dict(
                            zip(target_names[start:end], weight_list[start:end]))
            if with_index:
                sizes = _np.diff(bounds)
                if index_k is not None:
                    sizes = _np.minimum(sizes, index_k)
                degrees += sizes
                fills.append((src, tgt, wts, bounds, sizes))

        index = None
        if with_index:
            ptr = _np.zeros(n_items + 1, dtype=_np.int64)
            _np.cumsum(degrees, out=ptr[1:])
            total = int(ptr[-1])
            neighbor_ids = _np.empty(total, dtype=_np.int64)
            weights = _np.empty(total, dtype=_np.float64)
            for src, tgt, wts, bounds, sizes in fills:
                # Within-row rank of each directed edge; truncated rows
                # keep only ranks below their per-item size.
                offsets = _np.arange(len(src)) - bounds[src]
                keep = offsets < sizes[src]
                pos = ptr[src[keep]] + offsets[keep]
                neighbor_ids[pos] = tgt[keep]
                weights[pos] = wts[keep]
            index = NeighborIndex(items, self.item_index, ptr,
                                  neighbor_ids, weights, k=index_k)
        return AssemblyResult(adjacency=adjacency, index=index)

    def _assemble_python(self, parts, owners, min_common_users,
                         min_abs_similarity, with_adjacency, with_index,
                         index_k) -> "AssemblyResult":
        from repro.similarity.knn import NeighborIndex

        items = self.items
        adjacency = ({item: {} for item in items} if with_adjacency else None)
        rows: list[list[tuple[int, float]]] | None = (
            [[] for _ in items] if with_index else None)
        for acc in parts:
            for left, right, sim in self._iter_index_pairs_python(
                    acc, min_common_users):
                if abs(sim) < min_abs_similarity:
                    continue
                if with_adjacency:
                    adjacency[items[left]][items[right]] = sim
                    adjacency[items[right]][items[left]] = sim
                if with_index:
                    rows[left].append((right, sim))
                    rows[right].append((left, sim))
        index = None
        if with_index:
            ptr = [0]
            neighbor_ids: list[int] = []
            weights: list[float] = []
            for row in rows:
                # Serving rank: descending weight, ascending neighbor
                # index (== lexicographic id; interning is sorted).
                row.sort(key=lambda edge: (-edge[1], edge[0]))
                selected = row if index_k is None else row[:index_k]
                for neighbor, weight in selected:
                    neighbor_ids.append(neighbor)
                    weights.append(weight)
                ptr.append(len(neighbor_ids))
            index = NeighborIndex(items, self.item_index, ptr,
                                  neighbor_ids, weights, k=index_k)
        return AssemblyResult(adjacency=adjacency, index=index)

    def _all_pairs_python(self, min_common_users: int,
                          max_profile_size: int | None
                          ) -> Iterator[tuple[str, str, float]]:
        # Same accumulation order as the NumPy batches (length groups
        # ascending, user index ascending within a group) so the two
        # backends produce bit-identical numerator sums.
        yield from self._iter_pairs_from_accumulation_python(
            self.pair_accumulation(max_profile_size=max_profile_size),
            min_common_users)
