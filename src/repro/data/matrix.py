"""The interned, array-backed rating store behind the hot similarity paths.

:class:`~repro.data.ratings.RatingTable` is the semantic store: string ids,
``Rating`` objects, doubly-indexed dict-of-dicts. That representation is
right for the evaluation protocols (immutable derivation, per-rating
timesteps) but wrong for the similarity backbone: the Baseliner's Eq-6
accumulation and the Extender's significance sweeps spend their time
hashing string tuples and re-deriving user means from objects.

:class:`MatrixRatingStore` is the compact mirror the hot loops run over:

* user and item ids interned to dense integer indexes (sorted
  lexicographically, so integer order == string order and results stay
  deterministic);
* CSR-style per-user rows and per-item columns of ``(index, value)``
  pairs, each with the user-mean-centered value (the Eq-6 building block)
  precomputed alongside;
* per-user and per-item means, per-item centered/raw L2 norms, per-item
  like/dislike flags (Definition 2) and per-user item-centered norms
  (Eq 1), all computed once at construction.

The store has a NumPy fast path and a pure-Python fallback behind the
same API, selected at construction (``REPRO_PURE_PYTHON=1`` forces the
fallback — the CI matrix uses it). Means and norms are always computed
with ``math.fsum`` in pure Python so both backends share bit-identical
scalars; the pair accumulation orders of the two backends are aligned
(users ascending, one sequential add per co-rating) so the two paths
produce *identical* similarity graphs, not merely close ones.

Build one store per pipeline run via :meth:`RatingTable.matrix`, which
memoizes on the (immutable) table — every string-keyed similarity entry
point picks it up transparently.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Iterator, NamedTuple, Sequence

from repro.errors import SimilarityError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.data.ratings import RatingTable
    from repro.similarity.knn import NeighborIndex

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


def numpy_available() -> bool:
    """Whether the NumPy fast path can be used (installed and not
    disabled via the ``REPRO_PURE_PYTHON`` environment variable;
    ``"0"`` and the empty string count as unset)."""
    return _np is not None and os.environ.get(
        "REPRO_PURE_PYTHON", "") in ("", "0")


def _clip1(value: float) -> float:
    return max(-1.0, min(1.0, value))


def _intersect_sorted(a: Sequence[int], b: Sequence[int]
                      ) -> tuple[list[int], list[int]]:
    """Positions of the common values of two strictly-increasing int
    sequences (the pure-Python profile intersection)."""
    pos_a: list[int] = []
    pos_b: list[int] = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x = a[i]
        y = b[j]
        if x == y:
            pos_a.append(i)
            pos_b.append(j)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return pos_a, pos_b


class PairAccumulation:
    """Reduced Eq-6 pair accumulation over one user subset (one shard).

    Produced by :meth:`MatrixRatingStore.pair_accumulation` and merged by
    :meth:`MatrixRatingStore.merge_accumulations` — the unit of work the
    engine's sharded sweep ships between processes. Pairs are encoded as
    ``left * n_items + right`` integer keys with ``left < right``.

    On the NumPy backend ``keys`` is a strictly-increasing int64 array and
    ``sums`` / ``counts`` / ``agree`` are aligned value arrays. On the
    pure-Python backend ``keys`` is ``None`` and the other three are dicts
    over the same integer pair keys.

    Attributes:
        keys: unique pair keys (NumPy backend only).
        sums: Eq-6 numerator partial sums per pair.
        counts: co-rating contribution counts per pair (``|Y_i ∩ Y_j|``
            restricted to the accumulated users) — exact integers.
        agree: Definition-2 like/dislike agreement counts per pair, or
            ``None`` when significance was not requested.
    """

    __slots__ = ("keys", "sums", "counts", "agree")

    def __init__(self, keys, sums, counts, agree) -> None:
        self.keys = keys
        self.sums = sums
        self.counts = counts
        self.agree = agree

    @property
    def n_pairs(self) -> int:
        """Distinct co-rated pairs accumulated."""
        return len(self.sums) if self.keys is None else len(self.keys)


class AssemblyResult(NamedTuple):
    """Output of :meth:`MatrixRatingStore.assemble_from_partitions`.

    Attributes:
        adjacency: the symmetric string-keyed adjacency (``None`` when
            the caller asked for the index only).
        index: the rank-ordered
            :class:`~repro.similarity.knn.NeighborIndex` selected during
            assembly (``None`` unless requested).
    """

    adjacency: dict[str, dict[str, float]] | None
    index: "NeighborIndex | None"


class MatrixRatingStore:
    """Integer-interned, array-backed view of one :class:`RatingTable`.

    Construction is one O(N log N) pass; every similarity primitive is
    then a sparse merge or accumulation over dense arrays. Instances are
    immutable and safe to share across pipeline phases.
    """

    __slots__ = (
        "users", "items", "user_index", "item_index",
        "n_ratings", "global_mean", "user_means", "item_means",
        "user_ptr", "user_item_idx", "user_values", "user_centered",
        "user_item_centered", "user_item_centered_norms",
        "item_ptr", "item_user_idx", "item_values", "item_centered",
        "item_likes", "item_centered_norms", "item_raw_norms",
        "_use_numpy", "_triu_cache", "_item_names_obj", "_like_dicts",
        "_user_likes",
    )

    def __init__(self, table: "RatingTable",
                 use_numpy: bool | None = None) -> None:
        if use_numpy is None:
            use_numpy = numpy_available()
        elif use_numpy and _np is None:
            raise SimilarityError(
                "use_numpy=True requested but numpy is not installed")
        self._use_numpy = bool(use_numpy)
        self._triu_cache: dict[int, tuple] = {}
        self._item_names_obj = None
        self._like_dicts: list[dict[int, bool] | None] | None = None
        self._user_likes = None

        users = sorted(table.users)
        items = sorted(table.items)
        self.users = users
        self.items = items
        user_index = {user: k for k, user in enumerate(users)}
        item_index = {item: k for k, item in enumerate(items)}
        self.user_index = user_index
        self.item_index = item_index
        n = len(table)
        self.n_ratings = n
        self.global_mean = table.global_mean()

        # One pass over the Rating objects, then everything else is sorts
        # (np.lexsort on the fast path, list sorts on the fallback) and
        # vectorised arithmetic over flat columns. All sums of float sets
        # go through math.fsum, which is *exact* (single final rounding),
        # so means and norms are independent of accumulation order and
        # identical across backends; centering is one element-wise IEEE
        # subtraction either way.
        if self._use_numpy:
            rows = [(user_index[r.user], item_index[r.item], r.value)
                    for r in table]
            if rows:
                user_raw, item_raw, value_raw = zip(*rows)
            else:
                user_raw = item_raw = value_raw = ()
            user_arr = _np.asarray(user_raw, dtype=_np.int64)
            item_arr = _np.asarray(item_raw, dtype=_np.int64)
            value_arr = _np.asarray(value_raw, dtype=_np.float64)
            csr_order = _np.lexsort((item_arr, user_arr))
            user_csr = user_arr[csr_order]
            item_csr = item_arr[csr_order]
            value_csr = value_arr[csr_order]
            user_ptr_arr = _np.searchsorted(
                user_csr, _np.arange(len(users) + 1))
            user_ptr = user_ptr_arr.tolist()
            value_csr_list = value_csr.tolist()
            user_means = [
                math.fsum(value_csr_list[user_ptr[k]:user_ptr[k + 1]])
                / (user_ptr[k + 1] - user_ptr[k])
                for k in range(len(users))]
            csc_order = _np.lexsort((user_csr, item_csr))
            item_csc = item_csr[csc_order]
            item_values_arr = value_csr[csc_order]
            item_ptr_arr = _np.searchsorted(
                item_csc, _np.arange(len(items) + 1))
            item_ptr = item_ptr_arr.tolist()
            item_values_list = item_values_arr.tolist()
            item_means = [
                math.fsum(item_values_list[item_ptr[k]:item_ptr[k + 1]])
                / (item_ptr[k + 1] - item_ptr[k])
                for k in range(len(items))]
            user_means_arr = _np.asarray(user_means, dtype=_np.float64)
            item_means_arr = _np.asarray(item_means, dtype=_np.float64)
            user_centered_arr = value_csr - user_means_arr[user_csr]
            self.user_means = user_means_arr
            self.item_means = item_means_arr
            self.user_ptr = user_ptr_arr
            self.user_item_idx = item_csr
            self.user_values = value_csr
            self.user_centered = user_centered_arr
            self.user_item_centered = value_csr - item_means_arr[item_csr]
            self.item_ptr = item_ptr_arr
            self.item_user_idx = user_csr[csc_order]
            self.item_values = item_values_arr
            self.item_centered = user_centered_arr[csc_order]
            self.item_likes = item_values_arr >= item_means_arr[item_csc]
            user_item_centered_sq = (
                self.user_item_centered * self.user_item_centered).tolist()
            item_centered_sq = (
                self.item_centered * self.item_centered).tolist()
            item_raw_sq = (item_values_arr * item_values_arr).tolist()
        else:
            triples = sorted((user_index[r.user], item_index[r.item], r.value)
                             for r in table)
            if triples:
                user_col, item_col, value_col = map(list, zip(*triples))
            else:
                user_col, item_col, value_col = [], [], []
            user_ptr = [0] * (len(users) + 1)
            for u in user_col:
                user_ptr[u + 1] += 1
            for k in range(len(users)):
                user_ptr[k + 1] += user_ptr[k]
            user_means = [
                math.fsum(value_col[user_ptr[k]:user_ptr[k + 1]])
                / (user_ptr[k + 1] - user_ptr[k])
                for k in range(len(users))]
            perm = sorted(range(n), key=lambda k: (item_col[k], user_col[k]))
            item_ptr = [0] * (len(items) + 1)
            for k in perm:
                item_ptr[item_col[k] + 1] += 1
            for k in range(len(items)):
                item_ptr[k + 1] += item_ptr[k]
            item_values = [value_col[k] for k in perm]
            item_means = [
                math.fsum(item_values[item_ptr[k]:item_ptr[k + 1]])
                / (item_ptr[k + 1] - item_ptr[k])
                for k in range(len(items))]
            user_centered = [value_col[k] - user_means[user_col[k]]
                             for k in range(n)]
            self.user_means = user_means
            self.item_means = item_means
            self.user_ptr = user_ptr
            self.user_item_idx = item_col
            self.user_values = value_col
            self.user_centered = user_centered
            self.user_item_centered = [
                value_col[k] - item_means[item_col[k]] for k in range(n)]
            self.item_ptr = item_ptr
            self.item_user_idx = [user_col[k] for k in perm]
            self.item_values = item_values
            self.item_centered = [user_centered[k] for k in perm]
            self.item_likes = [
                item_values[k] >= item_means[item_col[perm[k]]]
                for k in range(n)]
            user_item_centered_sq = [c * c for c in self.user_item_centered]
            item_centered_sq = [c * c for c in self.item_centered]
            item_raw_sq = [v * v for v in item_values]

        user_item_centered_norms = [
            math.sqrt(math.fsum(
                user_item_centered_sq[user_ptr[k]:user_ptr[k + 1]]))
            for k in range(len(users))]
        item_centered_norms = [
            math.sqrt(math.fsum(
                item_centered_sq[item_ptr[k]:item_ptr[k + 1]]))
            for k in range(len(items))]
        item_raw_norms = [
            math.sqrt(math.fsum(item_raw_sq[item_ptr[k]:item_ptr[k + 1]]))
            for k in range(len(items))]
        if self._use_numpy:
            self.user_item_centered_norms = _np.asarray(
                user_item_centered_norms, dtype=_np.float64)
            self.item_centered_norms = _np.asarray(
                item_centered_norms, dtype=_np.float64)
            self.item_raw_norms = _np.asarray(
                item_raw_norms, dtype=_np.float64)
        else:
            self.user_item_centered_norms = user_item_centered_norms
            self.item_centered_norms = item_centered_norms
            self.item_raw_norms = item_raw_norms

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def uses_numpy(self) -> bool:
        """Whether this store runs on the NumPy fast path."""
        return self._use_numpy

    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def n_items(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backend = "numpy" if self._use_numpy else "python"
        return (f"MatrixRatingStore(users={self.n_users}, "
                f"items={self.n_items}, ratings={self.n_ratings}, "
                f"backend={backend})")

    # ------------------------------------------------------------------
    # Column / row slices
    # ------------------------------------------------------------------

    def _item_col(self, idx: int) -> tuple[int, int]:
        return int(self.item_ptr[idx]), int(self.item_ptr[idx + 1])

    def _user_row(self, idx: int) -> tuple[int, int]:
        return int(self.user_ptr[idx]), int(self.user_ptr[idx + 1])

    def item_raters(self, idx: int) -> int:
        """``|Y_i|`` for an item *index*."""
        start, end = self._item_col(idx)
        return end - start

    # ------------------------------------------------------------------
    # Pairwise metrics (string-keyed adapters live in repro.similarity)
    # ------------------------------------------------------------------

    def _common_dot(self, index_column, value_column,
                    slice_a: tuple[int, int],
                    slice_b: tuple[int, int]) -> float:
        """Dot product of two *value_column* slices over the intersection
        of the corresponding (strictly increasing) *index_column* slices.

        The one intersection kernel every pairwise metric shares —
        ``intersect1d`` on the NumPy path, a two-pointer merge on the
        fallback.
        """
        start_a, end_a = slice_a
        start_b, end_b = slice_b
        if self._use_numpy:
            _, pos_a, pos_b = _np.intersect1d(
                index_column[start_a:end_a], index_column[start_b:end_b],
                assume_unique=True, return_indices=True)
            if len(pos_a) == 0:
                return 0.0
            return float(_np.dot(value_column[start_a:end_a][pos_a],
                                 value_column[start_b:end_b][pos_b]))
        pos_a, pos_b = _intersect_sorted(index_column[start_a:end_a],
                                         index_column[start_b:end_b])
        values_a = value_column[start_a:end_a]
        values_b = value_column[start_b:end_b]
        total = 0.0
        for x, y in zip(pos_a, pos_b):
            total += values_a[x] * values_b[y]
        return total

    def _common_values(self, index_column, value_column,
                       slice_a: tuple[int, int],
                       slice_b: tuple[int, int]
                       ) -> tuple[list[float], list[float]]:
        """Aligned value pairs over the intersection, as plain lists."""
        start_a, end_a = slice_a
        start_b, end_b = slice_b
        if self._use_numpy:
            _, pos_a, pos_b = _np.intersect1d(
                index_column[start_a:end_a], index_column[start_b:end_b],
                assume_unique=True, return_indices=True)
            return (value_column[start_a:end_a][pos_a].tolist(),
                    value_column[start_b:end_b][pos_b].tolist())
        pos_a, pos_b = _intersect_sorted(index_column[start_a:end_a],
                                         index_column[start_b:end_b])
        values_a = value_column[start_a:end_a]
        values_b = value_column[start_b:end_b]
        return ([values_a[x] for x in pos_a], [values_b[y] for y in pos_b])

    def adjusted_cosine(self, item_i: str, item_j: str) -> float:
        """Eq 6 over the precomputed centered columns and norms."""
        i = self.item_index.get(item_i)
        j = self.item_index.get(item_j)
        if i is None or j is None:
            return 0.0
        if i == j:
            return 0.0 if self.item_centered_norms[i] == 0.0 else 1.0
        numerator = self._common_dot(
            self.item_user_idx, self.item_centered,
            self._item_col(i), self._item_col(j))
        if numerator == 0.0:
            return 0.0
        denominator = (self.item_centered_norms[i]
                       * self.item_centered_norms[j])
        if denominator == 0.0:
            return 0.0
        return _clip1(numerator / denominator)

    def cosine(self, item_i: str, item_j: str) -> float:
        """Plain cosine over the raw columns, norms over full rater sets."""
        i = self.item_index.get(item_i)
        j = self.item_index.get(item_j)
        if i is None or j is None:
            return 0.0
        numerator = self._common_dot(
            self.item_user_idx, self.item_values,
            self._item_col(i), self._item_col(j))
        if numerator == 0.0:
            return 0.0
        denominator = self.item_raw_norms[i] * self.item_raw_norms[j]
        if denominator == 0.0:
            return 0.0
        return _clip1(numerator / denominator)

    def pearson_items(self, item_i: str, item_j: str) -> float:
        """Item–item Pearson over co-raters (centered on co-rater means)."""
        i = self.item_index.get(item_i)
        j = self.item_index.get(item_j)
        if i is None or j is None:
            return 0.0
        values_i, values_j = self._common_values(
            self.item_user_idx, self.item_values,
            self._item_col(i), self._item_col(j))
        if len(values_i) < 2:
            return 0.0
        mean_i = math.fsum(values_i) / len(values_i)
        mean_j = math.fsum(values_j) / len(values_j)
        numerator = math.fsum(
            (vi - mean_i) * (vj - mean_j)
            for vi, vj in zip(values_i, values_j))
        var_i = math.fsum((vi - mean_i) ** 2 for vi in values_i)
        var_j = math.fsum((vj - mean_j) ** 2 for vj in values_j)
        if var_i == 0.0 or var_j == 0.0:
            return 0.0
        return _clip1(numerator / math.sqrt(var_i * var_j))

    def pearson_users(self, user_a: str, user_b: str) -> float:
        """Eq 1: item-mean-centered numerator, full-profile norms."""
        a = self.user_index.get(user_a)
        b = self.user_index.get(user_b)
        if a is None or b is None:
            return 0.0
        numerator = self._common_dot(
            self.user_item_idx, self.user_item_centered,
            self._user_row(a), self._user_row(b))
        if numerator == 0.0:
            return 0.0
        denominator = (self.user_item_centered_norms[a]
                       * self.user_item_centered_norms[b])
        if denominator == 0.0:
            return 0.0
        return _clip1(numerator / denominator)

    def _like_dict(self, idx: int) -> dict[int, bool]:
        """Lazy per-item ``user index → likes`` dict (cached).

        Typical item profiles have tens-to-hundreds of raters, where a
        small-dict probe loop beats array set-intersection constants by a
        wide margin — this is the Definition-2 hot path the Extender's
        significance sweeps hit, so it gets the dict treatment on both
        backends (the result is an integer count; no float concerns).
        """
        if self._like_dicts is None:
            self._like_dicts = [None] * len(self.items)
        cached = self._like_dicts[idx]
        if cached is None:
            start, end = self._item_col(idx)
            users = self.item_user_idx[start:end]
            likes = self.item_likes[start:end]
            if self._use_numpy:
                users = users.tolist()
                likes = likes.tolist()
            cached = dict(zip(users, likes))
            self._like_dicts[idx] = cached
        return cached

    def significance(self, item_i: str, item_j: str) -> int:
        """Definition 2: probe the smaller like-dict against the larger."""
        i = self.item_index.get(item_i)
        j = self.item_index.get(item_j)
        if i is None or j is None:
            return 0
        likes_i = self._like_dict(i)
        likes_j = self._like_dict(j)
        if len(likes_j) < len(likes_i):
            likes_i, likes_j = likes_j, likes_i
        lookup = likes_j.get
        count = 0
        for user, like in likes_i.items():
            other = lookup(user)
            if other is not None and other == like:
                count += 1
        return count

    def common_raters(self, item_i: str, item_j: str) -> int:
        """``|Y_i ∩ Y_j|`` via the same smaller-into-larger probe."""
        i = self.item_index.get(item_i)
        j = self.item_index.get(item_j)
        if i is None or j is None:
            return 0
        likes_i = self._like_dict(i)
        likes_j = self._like_dict(j)
        if len(likes_j) < len(likes_i):
            likes_i, likes_j = likes_j, likes_i
        return sum(1 for user in likes_i if user in likes_j)

    def normalized_significance(self, item_i: str, item_j: str) -> float:
        """Definition 4: ``S_{i,j} / |Y_i ∪ Y_j|`` without materialising
        the union — ``|Y_i| + |Y_j| − |Y_i ∩ Y_j|``."""
        i = self.item_index.get(item_i)
        j = self.item_index.get(item_j)
        raters_i = self.item_raters(i) if i is not None else 0
        raters_j = self.item_raters(j) if j is not None else 0
        if i == j and i is not None:
            # Degenerate self-query: union == each profile.
            return self.significance(item_i, item_j) / raters_i
        union = raters_i + raters_j - self.common_raters(item_i, item_j)
        if union == 0:
            raise SimilarityError(
                f"normalized significance undefined: neither {item_i!r} "
                f"nor {item_j!r} has raters")
        return self.significance(item_i, item_j) / union

    # ------------------------------------------------------------------
    # All-pairs adjusted cosine (the Baseliner's Eq-6 sweep)
    # ------------------------------------------------------------------

    def _triu(self, n: int):
        """Cached upper-triangle index pair for a profile of length *n*
        (profile lengths repeat heavily, so the cache removes most of the
        per-user index-generation cost)."""
        cached = self._triu_cache.get(n)
        if cached is None:
            cached = _np.triu_indices(n, 1)
            self._triu_cache[n] = cached
        return cached

    def all_pairs_adjusted_cosine(
            self, min_common_users: int = 1,
            max_profile_size: int | None = None,
    ) -> Iterator[tuple[str, str, float]]:
        """Yield ``(i, j, sim)`` for every co-rated item pair (Eq 6).

        Both backends accumulate the numerators in the same canonical
        order (profile-length groups ascending, user index ascending
        within a group, one sequential add per co-rating), so they
        produce bit-identical sums and therefore identical graphs. Pairs
        come out sorted by (i, j) with ``i < j`` (interning is
        lexicographic, so integer order is string order).

        Peak memory on the NumPy path is one ``(key, value)`` pair per
        co-rating contribution (``Σ_u |X_u|²`` entries); cap skewed
        profiles with *max_profile_size* as the paper's Spark job does.
        """
        if self._use_numpy:
            yield from self._all_pairs_numpy(min_common_users,
                                             max_profile_size)
        else:
            yield from self._all_pairs_python(min_common_users,
                                              max_profile_size)

    @property
    def user_likes(self):
        """Per-rating like/dislike flags in CSR (user-row) order.

        The same Definition-2 comparison as :attr:`item_likes` (value at
        or above the item's mean), but aligned with the per-user rows the
        pair sweep batches over — what lets the sharded sweep fold the
        significance counts into the Eq-6 pass. Built lazily and cached.
        """
        if self._user_likes is None:
            if self._use_numpy:
                self._user_likes = (
                    self.user_values >= self.item_means[self.user_item_idx])
            else:
                self._user_likes = [
                    self.user_values[k]
                    >= self.item_means[self.user_item_idx[k]]
                    for k in range(self.n_ratings)]
        return self._user_likes

    def eligible_users(self, max_profile_size: int | None = None,
                       users: Sequence[int] | None = None):
        """User indexes that contribute Eq-6 pairs, in canonical sweep
        order: profile-length groups ascending, user index ascending
        within a group.

        *users* restricts to a subset (a shard; must be ascending) —
        the order of the restricted sweep is the canonical order filtered
        to the subset, so every shard accumulates exactly as the full
        sweep would over those users.
        """
        if self._use_numpy:
            lengths = _np.diff(self.user_ptr)
            if users is None:
                mask = lengths >= 2
                if max_profile_size is not None:
                    mask &= lengths <= max_profile_size
                eligible = _np.nonzero(mask)[0]
            else:
                candidates = _np.asarray(users, dtype=_np.int64)
                sub = lengths[candidates] if len(candidates) else candidates
                mask = sub >= 2
                if max_profile_size is not None:
                    mask &= sub <= max_profile_size
                eligible = candidates[mask]
            return eligible[_np.argsort(lengths[eligible], kind="stable")]
        ptr = self.user_ptr
        candidates = range(len(self.users)) if users is None else users
        eligible = [
            u for u in candidates
            if ptr[u + 1] - ptr[u] >= 2
            and (max_profile_size is None
                 or ptr[u + 1] - ptr[u] <= max_profile_size)]
        eligible.sort(key=lambda u: (ptr[u + 1] - ptr[u], u))
        return eligible

    def _contribution_arrays_numpy(self, eligible, with_significance: bool):
        """The batched Eq-6 fan-out over *eligible* (canonical order) as
        aligned ``(pair key, numerator contribution[, like agreement])``
        arrays.

        Users are batched by profile length so each batch is one 2-D
        gather + one broadcasted multiply instead of a per-user Python
        iteration. The contribution order (length groups ascending,
        users ascending within a group, triu pair order within a user)
        is mirrored exactly by the pure-Python fallback, and bincount
        adds sequentially in input order — hence bit-identical sums and
        identical output graphs across backends.
        """
        n_items = len(self.items)
        lengths = _np.diff(self.user_ptr)
        group_lengths = lengths[eligible]
        starts = self.user_ptr[eligible]
        likes_all = self.user_likes if with_significance else None
        key_parts = []
        value_parts = []
        agree_parts = []
        distinct, group_bounds = _np.unique(group_lengths, return_index=True)
        group_bounds = list(group_bounds) + [len(eligible)]
        for g, length in enumerate(distinct.tolist()):
            batch_starts = starts[group_bounds[g]:group_bounds[g + 1]]
            offsets = batch_starts[:, None] + _np.arange(length)
            idx = self.user_item_idx[offsets]
            centered = self.user_centered[offsets]
            rows, cols = self._triu(length)
            key_parts.append((idx[:, rows] * n_items + idx[:, cols]).ravel())
            value_parts.append((centered[:, rows] * centered[:, cols]).ravel())
            if with_significance:
                likes = likes_all[offsets]
                agree_parts.append((likes[:, rows] == likes[:, cols]).ravel())
        keys = _np.concatenate(key_parts)
        values = _np.concatenate(value_parts)
        agree = _np.concatenate(agree_parts) if with_significance else None
        return keys, values, agree

    def _reduce_contributions_numpy(self, keys, values,
                                    agree) -> PairAccumulation:
        """Group the contribution arrays by pair key.

        Two accumulation strategies with identical results (bincount
        adds sequentially in input order either way): a dense m²-sized
        accumulator when the item space is small relative to the
        contribution count (no sort at all), else sort-based grouping
        via np.unique. The 2²⁴ ceiling caps the dense accumulator at
        ~256 MB for the two arrays.
        """
        n_items = len(self.items)
        if n_items * n_items <= max(1 << 20, min(4 * len(keys), 1 << 24)):
            space = n_items * n_items
            dense_counts = _np.bincount(keys, minlength=space)
            dense_sums = _np.bincount(keys, weights=values, minlength=space)
            uniq = _np.nonzero(dense_counts)[0]
            counts = dense_counts[uniq]
            sums = dense_sums[uniq]
            agree_counts = None
            if agree is not None:
                agree_counts = _np.bincount(
                    keys[agree], minlength=space)[uniq]
        else:
            uniq, inverse, counts = _np.unique(
                keys, return_inverse=True, return_counts=True)
            sums = _np.bincount(inverse, weights=values, minlength=len(uniq))
            agree_counts = None
            if agree is not None:
                agree_counts = _np.bincount(
                    inverse[agree], minlength=len(uniq))
        return PairAccumulation(uniq, sums, counts, agree_counts)

    def _accumulate_python(self, eligible,
                           with_significance: bool) -> PairAccumulation:
        """Dict-based per-shard accumulation (pure-Python backend), in
        the same canonical order as the NumPy batches."""
        n_items = len(self.items)
        sums: dict[int, float] = {}
        counts: dict[int, int] = {}
        agree: dict[int, int] | None = {} if with_significance else None
        ptr = self.user_ptr
        idx_all = self.user_item_idx
        centered_all = self.user_centered
        likes_all = self.user_likes if with_significance else None
        for u in eligible:
            start, end = ptr[u], ptr[u + 1]
            length = end - start
            idx = idx_all[start:end]
            centered = centered_all[start:end]
            if with_significance:
                likes = likes_all[start:end]
                for a in range(length):
                    base = idx[a] * n_items
                    centered_a = centered[a]
                    like_a = likes[a]
                    for b in range(a + 1, length):
                        key = base + idx[b]
                        value = centered_a * centered[b]
                        if key in sums:
                            sums[key] += value
                            counts[key] += 1
                        else:
                            sums[key] = value
                            counts[key] = 1
                        if like_a == likes[b]:
                            agree[key] = agree.get(key, 0) + 1
            else:
                for a in range(length):
                    base = idx[a] * n_items
                    centered_a = centered[a]
                    for b in range(a + 1, length):
                        key = base + idx[b]
                        value = centered_a * centered[b]
                        if key in sums:
                            sums[key] += value
                            counts[key] += 1
                        else:
                            sums[key] = value
                            counts[key] = 1
        return PairAccumulation(None, sums, counts, agree)

    def pair_accumulation(self, users: Sequence[int] | None = None,
                          max_profile_size: int | None = None,
                          with_significance: bool = False
                          ) -> PairAccumulation:
        """Reduced Eq-6 accumulation over *users* (one shard of the pair
        sweep; ``None`` means every user).

        With ``with_significance`` the same pass also counts Definition-2
        like/dislike agreements per pair. Those counts equal the true
        ``S_{i,j}`` only when no profile filter drops co-raters — i.e.
        when *max_profile_size* is ``None`` (a user rating both i and j
        always has a profile of length ≥ 2, so the implicit minimum never
        excludes anyone).
        """
        eligible = self.eligible_users(max_profile_size, users)
        if not self._use_numpy:
            return self._accumulate_python(eligible, with_significance)
        if len(eligible) == 0:
            empty_int = _np.zeros(0, dtype=_np.int64)
            return PairAccumulation(
                empty_int, _np.zeros(0, dtype=_np.float64), empty_int.copy(),
                empty_int.copy() if with_significance else None)
        keys, values, agree = self._contribution_arrays_numpy(
            eligible, with_significance)
        return self._reduce_contributions_numpy(keys, values, agree)

    def merge_accumulations(
            self, parts: Sequence[PairAccumulation]) -> PairAccumulation:
        """Merge per-shard accumulations, in the given (shard index)
        order.

        The integer counts merge exactly (addition of non-negative ints
        is associative). The float numerator partials are added per pair
        sequentially in part order, so for a fixed shard layout the
        merged sums are deterministic and independent of *how* the shards
        were executed (serial or process pool) — and a single-part merge
        returns the part untouched, which is what makes the 1-shard sweep
        bit-identical to the unsharded store path.
        """
        if len(parts) == 1:
            return parts[0]
        with_significance = any(part.agree is not None for part in parts)
        if with_significance and not all(
                part.agree is not None for part in parts):
            raise SimilarityError(
                "cannot merge accumulations with and without "
                "significance counts")
        if not self._use_numpy:
            sums: dict[int, float] = {}
            counts: dict[int, int] = {}
            agree: dict[int, int] | None = {} if with_significance else None
            for part in parts:
                part_counts = part.counts
                part_agree = part.agree
                for key, value in part.sums.items():
                    if key in sums:
                        sums[key] += value
                        counts[key] += part_counts[key]
                    else:
                        sums[key] = value
                        counts[key] = part_counts[key]
                if with_significance:
                    for key, value in part_agree.items():
                        agree[key] = agree.get(key, 0) + value
            return PairAccumulation(None, sums, counts, agree)
        if not parts:
            return self.pair_accumulation(
                users=(), with_significance=with_significance)
        keys_cat = _np.concatenate([part.keys for part in parts])
        sums_cat = _np.concatenate([part.sums for part in parts])
        counts_cat = _np.concatenate([part.counts for part in parts])
        uniq, inverse = _np.unique(keys_cat, return_inverse=True)
        sums = _np.bincount(inverse, weights=sums_cat, minlength=len(uniq))
        # Integer partials ride through bincount's float64 weights (exact
        # below 2^53, far beyond any co-rater count) — an order of
        # magnitude faster than the unbuffered np.add.at on this
        # driver-side merge tail.
        counts = _np.bincount(
            inverse, weights=counts_cat,
            minlength=len(uniq)).astype(_np.int64)
        agree_counts = None
        if with_significance:
            agree_cat = _np.concatenate([part.agree for part in parts])
            agree_counts = _np.bincount(
                inverse, weights=agree_cat,
                minlength=len(uniq)).astype(_np.int64)
        return PairAccumulation(uniq, sums, counts, agree_counts)

    def _pairs_from_accumulation_numpy(self, acc: PairAccumulation,
                                       min_common_users: int):
        """The filtered Eq-6 pairs of an accumulation as three aligned
        arrays ``(left item idx, right item idx, similarity)``, or None
        when no pair survives."""
        if len(acc.keys) == 0:
            return None
        n_items = len(self.items)
        uniq, sums, counts = acc.keys, acc.sums, acc.counts
        left = uniq // n_items
        right = uniq % n_items
        denominators = (self.item_centered_norms[left]
                        * self.item_centered_norms[right])
        keep = (counts >= min_common_users) & (sums != 0.0) \
            & (denominators != 0.0)
        similarities = _np.clip(sums[keep] / denominators[keep], -1.0, 1.0)
        return left[keep], right[keep], similarities

    def _iter_index_pairs_python(self, acc: PairAccumulation,
                                 min_common_users: int
                                 ) -> Iterator[tuple[int, int, float]]:
        """Yield the filtered ``(left idx, right idx, sim)`` pairs of a
        dict-backed accumulation, sorted by pair key."""
        norms = self.item_centered_norms
        n_items = len(self.items)
        sums, counts = acc.sums, acc.counts
        for key in sorted(sums):
            if counts[key] < min_common_users:
                continue
            numerator = sums[key]
            if numerator == 0.0:
                continue
            left, right = divmod(key, n_items)
            denominator = norms[left] * norms[right]
            if denominator == 0.0:
                continue
            yield left, right, _clip1(numerator / denominator)

    def _iter_pairs_from_accumulation_python(self, acc: PairAccumulation,
                                             min_common_users: int
                                             ) -> Iterator[
                                                 tuple[str, str, float]]:
        """Yield the filtered ``(i, j, sim)`` pairs of a dict-backed
        accumulation, sorted by pair key."""
        items = self.items
        for left, right, sim in self._iter_index_pairs_python(
                acc, min_common_users):
            yield items[left], items[right], sim

    def significance_from_accumulation(
            self, acc: PairAccumulation
    ) -> tuple[dict[tuple[str, str], int], dict[tuple[str, str], int]]:
        """Bulk Definition-2 counts for every co-rated pair of *acc*.

        Returns ``(raw, common)``: the significance ``S_{i,j}`` and the
        co-rater count ``|Y_i ∩ Y_j|`` keyed by ``(item_i, item_j)`` with
        ``i < j``. Both are exact integers, so they are identical to the
        per-pair :meth:`significance` / :meth:`common_raters` lookups
        regardless of sharding.
        """
        if acc.agree is None:
            raise SimilarityError(
                "accumulation was built without significance counts "
                "(pass with_significance=True)")
        items = self.items
        n_items = len(items)
        raw: dict[tuple[str, str], int] = {}
        common: dict[tuple[str, str], int] = {}
        if self._use_numpy:
            lefts = (acc.keys // n_items).tolist()
            rights = (acc.keys % n_items).tolist()
            for l_idx, r_idx, agrees, cnt in zip(
                    lefts, rights, acc.agree.tolist(), acc.counts.tolist()):
                pair = (items[l_idx], items[r_idx])
                raw[pair] = agrees
                common[pair] = cnt
        else:
            for key in sorted(acc.sums):
                l_idx, r_idx = divmod(key, n_items)
                pair = (items[l_idx], items[r_idx])
                raw[pair] = acc.agree.get(key, 0)
                common[pair] = acc.counts[key]
        return raw, common

    def _pair_arrays_numpy(self, min_common_users: int,
                           max_profile_size: int | None):
        """The unsharded filtered pair sweep (one accumulation over every
        eligible user, then the shared filter/clip tail)."""
        acc = self.pair_accumulation(max_profile_size=max_profile_size)
        return self._pairs_from_accumulation_numpy(acc, min_common_users)

    def _all_pairs_numpy(self, min_common_users: int,
                         max_profile_size: int | None
                         ) -> Iterator[tuple[str, str, float]]:
        arrays = self._pair_arrays_numpy(min_common_users, max_profile_size)
        if arrays is None:
            return
        left, right, similarities = arrays
        items = self.items
        for a, b, sim in zip(left.tolist(), right.tolist(),
                             similarities.tolist()):
            yield items[a], items[b], sim

    def build_adjacency(
            self, min_common_users: int = 1,
            min_abs_similarity: float = 0.0,
            max_profile_size: int | None = None,
    ) -> dict[str, dict[str, float]]:
        """The full symmetric Eq-6 adjacency, assembled in bulk.

        Semantically ``{i: {j: sim}}`` over the pairs
        :meth:`all_pairs_adjusted_cosine` yields (every item present,
        isolated ones with an empty neighbor dict; edges with
        ``|sim| < min_abs_similarity`` dropped), but built without a
        per-edge Python loop: on the NumPy path the directed edge list is
        sorted once and each item's neighbor dict is one C-speed
        ``dict(zip(...))`` over a contiguous slice. This is what
        :func:`~repro.similarity.graph.build_similarity_graph` adopts
        wholesale — per-edge dict churn was the second-largest cost of
        graph construction after the pair sweep itself.
        """
        return self.adjacency_from_accumulation(
            self.pair_accumulation(max_profile_size=max_profile_size),
            min_common_users=min_common_users,
            min_abs_similarity=min_abs_similarity)

    def adjacency_from_accumulation(
            self, acc: PairAccumulation,
            min_common_users: int = 1,
            min_abs_similarity: float = 0.0,
    ) -> dict[str, dict[str, float]]:
        """Assemble the symmetric Eq-6 adjacency from a (merged)
        accumulation — the single-partition driver pass, kept as the
        reference tail of :meth:`assemble_from_partitions`."""
        return self.assemble_from_partitions(
            [acc], min_common_users=min_common_users,
            min_abs_similarity=min_abs_similarity).adjacency

    def neighbor_index(self, min_common_users: int = 1,
                       min_abs_similarity: float = 0.0,
                       max_profile_size: int | None = None,
                       k: int | None = None) -> "NeighborIndex":
        """Rank-ordered :class:`~repro.similarity.knn.NeighborIndex`
        from one unsharded Eq-6 sweep (no adjacency dicts built).

        This is the serve-side entry point
        :class:`~repro.cf.item_knn.ItemKNNRecommender` uses: rows hold
        every nonzero-similarity neighbor (or the top-*k* when given),
        ordered by descending similarity with the ascending-id
        tie-break, so predictions are O(k) row scans.
        """
        acc = self.pair_accumulation(max_profile_size=max_profile_size)
        return self.assemble_from_partitions(
            [acc], min_common_users=min_common_users,
            min_abs_similarity=min_abs_similarity,
            with_adjacency=False, with_index=True, index_k=k).index

    def split_accumulation(self, acc: PairAccumulation,
                           owners: Sequence[int],
                           n_partitions: int) -> list[PairAccumulation]:
        """Split an accumulation by the partition owning each pair's
        **left** item.

        *owners* maps item index → partition id (the engine hands in a
        :class:`~repro.engine.partitioner.HashPartitioner` assignment
        over the item ids, so every shard and every run agrees on the
        layout). Pair keys encode ``left * n_items + right``, so
        ``owners[key // n_items]`` routes a pair. Splitting only moves
        entries between containers — re-merging the parts per partition
        in the original part order reproduces the unsplit merge bit for
        bit, which is what keeps the partitioned assembly's similarities
        identical to the driver pass.
        """
        if n_partitions == 1:
            return [acc]
        n_items = len(self.items)
        if self._use_numpy:
            owner_arr = _np.asarray(owners, dtype=_np.int64)
            part_of = owner_arr[acc.keys // n_items] if len(acc.keys) \
                else _np.zeros(0, dtype=_np.int64)
            parts = []
            for p in range(n_partitions):
                mask = part_of == p
                parts.append(PairAccumulation(
                    acc.keys[mask], acc.sums[mask], acc.counts[mask],
                    None if acc.agree is None else acc.agree[mask]))
            return parts
        sums: list[dict[int, float]] = [{} for _ in range(n_partitions)]
        counts: list[dict[int, int]] = [{} for _ in range(n_partitions)]
        agree: list[dict[int, int]] | None = (
            None if acc.agree is None
            else [{} for _ in range(n_partitions)])
        acc_counts = acc.counts
        acc_agree = acc.agree
        for key, value in acc.sums.items():
            p = owners[key // n_items]
            sums[p][key] = value
            counts[p][key] = acc_counts[key]
            if agree is not None:
                hits = acc_agree.get(key)
                if hits is not None:
                    agree[p][key] = hits
        return [PairAccumulation(
            None, sums[p], counts[p],
            None if agree is None else agree[p])
            for p in range(n_partitions)]

    def assemble_from_partitions(
            self, parts: Sequence[PairAccumulation],
            owners: Sequence[int] | None = None,
            min_common_users: int = 1,
            min_abs_similarity: float = 0.0,
            with_adjacency: bool = True,
            with_index: bool = False,
            index_k: int | None = None,
    ) -> "AssemblyResult":
        """Assemble adjacency rows (and optionally a
        :class:`~repro.similarity.knn.NeighborIndex`) per item
        partition.

        *parts* holds one merged accumulation per partition, pairs
        routed by their left item (:meth:`split_accumulation`); *owners*
        is the item → partition assignment (``None`` for a single
        partition). Each partition turns its pairs into similarities
        locally, ships the reversed directed edges to the partition
        owning the right endpoint, and assembles the rows of *its own*
        items — nothing funnels through one driver-wide sort.

        Determinism: every (source, target) edge appears in exactly one
        partition and its weight comes from per-pair sums merged in
        shard order, so the assembled adjacency equals the driver-pass
        :meth:`adjacency_from_accumulation` output bit for bit at any
        partition count — partitioning moves *where* a row is built,
        never its contents. Index rows are ranked by (descending
        weight, ascending neighbor index); with *index_k* they are
        truncated to the top-k during partition-local assembly.
        """
        if len(parts) > 1:
            if owners is None:
                raise SimilarityError(
                    "owners is required for multi-partition assembly")
            if len(owners) != len(self.items):
                raise SimilarityError(
                    f"owners has {len(owners)} entries for "
                    f"{len(self.items)} items")
        if self._use_numpy:
            return self._assemble_numpy(
                parts, owners, min_common_users, min_abs_similarity,
                with_adjacency, with_index, index_k)
        return self._assemble_python(
            parts, owners, min_common_users, min_abs_similarity,
            with_adjacency, with_index, index_k)

    def _assemble_numpy(self, parts, owners, min_common_users,
                        min_abs_similarity, with_adjacency, with_index,
                        index_k) -> "AssemblyResult":
        from repro.similarity.knn import NeighborIndex

        n_partitions = len(parts)
        n_items = len(self.items)
        empty_int = _np.zeros(0, dtype=_np.int64)
        empty_float = _np.zeros(0, dtype=_np.float64)

        # Stage A: partition-local pair extraction — the Eq-6 filter /
        # normalise / clip tail runs on each partition's own pairs.
        partition_edges = []
        for acc in parts:
            arrays = self._pairs_from_accumulation_numpy(
                acc, min_common_users)
            if arrays is None:
                partition_edges.append((empty_int, empty_int, empty_float))
                continue
            left, right, sims = arrays
            if min_abs_similarity > 0.0:
                keep = _np.abs(sims) >= min_abs_similarity
                left, right, sims = left[keep], right[keep], sims[keep]
            partition_edges.append((left, right, sims))

        # Stage B: reversed-edge exchange. Forward (left → right) edges
        # already sit in the partition owning their source row; the
        # reversed (right → left) edges route to owners[right]. With one
        # partition everything stays local.
        inboxes: list[list[tuple]] = [[] for _ in range(n_partitions)]
        if n_partitions == 1:
            left, right, sims = partition_edges[0]
            inboxes[0].append((right, left, sims))
        else:
            owner_arr = _np.asarray(owners, dtype=_np.int64)
            for left, right, sims in partition_edges:
                if len(left) == 0:
                    continue
                dest = owner_arr[right]
                order = _np.argsort(dest, kind="stable")
                rev_src = right[order]
                rev_tgt = left[order]
                rev_wts = sims[order]
                bounds = _np.searchsorted(
                    dest[order], _np.arange(n_partitions + 1))
                for p, (a, b) in enumerate(zip(bounds[:-1].tolist(),
                                               bounds[1:].tolist())):
                    if a != b:
                        inboxes[p].append(
                            (rev_src[a:b], rev_tgt[a:b], rev_wts[a:b]))

        # Stage C: per-partition row assembly. Each partition sorts only
        # its own directed edges; with an index requested the sort key
        # adds the serving rank (descending weight, ascending target) so
        # the top-k selection is a row-prefix slice, not a second sort.
        adjacency = ({item: {} for item in self.items}
                     if with_adjacency else None)
        if self._item_names_obj is None:
            self._item_names_obj = _np.asarray(self.items, dtype=object)
        degrees = _np.zeros(n_items, dtype=_np.int64) if with_index else None
        fills = []
        item_range = _np.arange(n_items + 1)
        items = self.items
        for p in range(n_partitions):
            fwd_left, fwd_right, fwd_sims = partition_edges[p]
            src_parts = [fwd_left] + [m[0] for m in inboxes[p]]
            tgt_parts = [fwd_right] + [m[1] for m in inboxes[p]]
            wts_parts = [fwd_sims] + [m[2] for m in inboxes[p]]
            src = _np.concatenate(src_parts)
            if len(src) == 0:
                continue
            tgt = _np.concatenate(tgt_parts)
            wts = _np.concatenate(wts_parts)
            if with_index:
                order = _np.lexsort((tgt, -wts, src))
            else:
                order = _np.argsort(src, kind="stable")
            src = src[order]
            tgt = tgt[order]
            wts = wts[order]
            bounds = _np.searchsorted(src, item_range)
            if with_adjacency:
                target_names = self._item_names_obj[tgt].tolist()
                weight_list = wts.tolist()
                for k, (start, end) in enumerate(zip(bounds[:-1].tolist(),
                                                     bounds[1:].tolist())):
                    if start != end:
                        adjacency[items[k]] = dict(
                            zip(target_names[start:end],
                                weight_list[start:end]))
            if with_index:
                sizes = _np.diff(bounds)
                if index_k is not None:
                    sizes = _np.minimum(sizes, index_k)
                degrees += sizes
                fills.append((src, tgt, wts, bounds, sizes))

        index = None
        if with_index:
            ptr = _np.zeros(n_items + 1, dtype=_np.int64)
            _np.cumsum(degrees, out=ptr[1:])
            total = int(ptr[-1])
            neighbor_ids = _np.empty(total, dtype=_np.int64)
            weights = _np.empty(total, dtype=_np.float64)
            for src, tgt, wts, bounds, sizes in fills:
                # Within-row rank of each directed edge; truncated rows
                # keep only ranks below their per-item size.
                offsets = _np.arange(len(src)) - bounds[src]
                keep = offsets < sizes[src]
                pos = ptr[src[keep]] + offsets[keep]
                neighbor_ids[pos] = tgt[keep]
                weights[pos] = wts[keep]
            index = NeighborIndex(items, self.item_index, ptr,
                                  neighbor_ids, weights, k=index_k)
        return AssemblyResult(adjacency=adjacency, index=index)

    def _assemble_python(self, parts, owners, min_common_users,
                         min_abs_similarity, with_adjacency, with_index,
                         index_k) -> "AssemblyResult":
        from repro.similarity.knn import NeighborIndex

        items = self.items
        adjacency = ({item: {} for item in items}
                     if with_adjacency else None)
        rows: list[list[tuple[int, float]]] | None = (
            [[] for _ in items] if with_index else None)
        for acc in parts:
            for left, right, sim in self._iter_index_pairs_python(
                    acc, min_common_users):
                if abs(sim) < min_abs_similarity:
                    continue
                if with_adjacency:
                    adjacency[items[left]][items[right]] = sim
                    adjacency[items[right]][items[left]] = sim
                if with_index:
                    rows[left].append((right, sim))
                    rows[right].append((left, sim))
        index = None
        if with_index:
            ptr = [0]
            neighbor_ids: list[int] = []
            weights: list[float] = []
            for row in rows:
                # Serving rank: descending weight, ascending neighbor
                # index (== lexicographic id; interning is sorted).
                row.sort(key=lambda edge: (-edge[1], edge[0]))
                selected = row if index_k is None else row[:index_k]
                for neighbor, weight in selected:
                    neighbor_ids.append(neighbor)
                    weights.append(weight)
                ptr.append(len(neighbor_ids))
            index = NeighborIndex(items, self.item_index, ptr,
                                  neighbor_ids, weights, k=index_k)
        return AssemblyResult(adjacency=adjacency, index=index)

    def _all_pairs_python(self, min_common_users: int,
                          max_profile_size: int | None
                          ) -> Iterator[tuple[str, str, float]]:
        # Same accumulation order as the NumPy batches (length groups
        # ascending, user index ascending within a group) so the two
        # backends produce bit-identical numerator sums.
        yield from self._iter_pairs_from_accumulation_python(
            self.pair_accumulation(max_profile_size=max_profile_size),
            min_common_users)
