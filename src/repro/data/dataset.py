"""Datasets and the two-domain container for the heterogeneous problem.

A :class:`Dataset` is a named single-domain rating table — "movies",
"books", "ml-20m". A :class:`CrossDomainDataset` is Problem 1 of the
paper: a source domain ``D_S`` and a target domain ``D_T`` whose item sets
are disjoint but whose user sets may overlap. The overlapping users — the
paper calls them *straddlers* — are the only conduit of cross-domain
signal, so the container surfaces them directly.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.data.ratings import Rating, RatingTable
from repro.errors import DataError, DomainError


class Dataset:
    """A named single-domain rating table with optional item metadata.

    Args:
        name: domain name (e.g. ``"movies"``); also used as the domain
            label in :class:`CrossDomainDataset`.
        ratings: the rating table (or an iterable of ratings).
        item_titles: optional item id → human title mapping (used by the
            examples to show "Interstellar"-style output).
        item_genres: optional item id → tuple of genre labels (used by the
            Table 2 genre partitioner).
    """

    __slots__ = ("name", "ratings", "item_titles", "item_genres")

    def __init__(self, name: str,
                 ratings: RatingTable | Iterable[Rating],
                 item_titles: Mapping[str, str] | None = None,
                 item_genres: Mapping[str, tuple[str, ...]] | None = None) -> None:
        if not name:
            raise DataError("dataset name must be non-empty")
        if not isinstance(ratings, RatingTable):
            ratings = RatingTable(ratings)
        self.name = name
        self.ratings = ratings
        self.item_titles = dict(item_titles or {})
        self.item_genres = dict(item_genres or {})

    @property
    def users(self) -> frozenset[str]:
        """Users with at least one rating in this domain."""
        return self.ratings.users

    @property
    def items(self) -> frozenset[str]:
        """Items with at least one rating in this domain."""
        return self.ratings.items

    def __len__(self) -> int:
        return len(self.ratings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Dataset({self.name!r}, users={len(self.users)}, "
                f"items={len(self.items)}, ratings={len(self.ratings)})")

    def title_of(self, item: str) -> str:
        """Human title for *item* (falls back to the raw id)."""
        return self.item_titles.get(item, item)

    def with_ratings(self, ratings: RatingTable) -> "Dataset":
        """Return a copy of this dataset with a different rating table
        (metadata is shared — it describes the same catalogue)."""
        return Dataset(self.name, ratings,
                       item_titles=self.item_titles,
                       item_genres=self.item_genres)


class CrossDomainDataset:
    """The heterogeneous recommendation input (Problem 1, §2.3).

    Invariants enforced at construction:

    * the two domains have distinct names,
    * their item sets are disjoint (``I_S ∩ I_T = ∅``; the paper assumes
      this — an Amazon movie and an Amazon book never share an id).

    The user sets may (and for the problem to be solvable, must) overlap.
    """

    __slots__ = ("source", "target", "_domain_of")

    def __init__(self, source: Dataset, target: Dataset) -> None:
        if source.name == target.name:
            raise DomainError(
                f"source and target domains must differ, both are {source.name!r}")
        common_items = source.items & target.items
        if common_items:
            sample = sorted(common_items)[:3]
            raise DomainError(
                f"item sets must be disjoint; shared items include {sample}")
        self.source = source
        self.target = target
        domain_of = {item: source.name for item in source.items}
        domain_of.update({item: target.name for item in target.items})
        self._domain_of = domain_of

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CrossDomainDataset(source={self.source!r}, "
                f"target={self.target!r}, overlap={len(self.overlap_users)})")

    @property
    def overlap_users(self) -> frozenset[str]:
        """``U_S ∩ U_T`` — the straddlers connecting the domains."""
        return self.source.users & self.target.users

    @property
    def domain_names(self) -> tuple[str, str]:
        """(source name, target name)."""
        return (self.source.name, self.target.name)

    def domain_of(self, item: str) -> str:
        """Domain name of *item*; raises DomainError for unknown items."""
        try:
            return self._domain_of[item]
        except KeyError:
            raise DomainError(f"unknown item {item!r}") from None

    def domain_map(self) -> Mapping[str, str]:
        """Item id → domain name for every item in either domain."""
        return self._domain_of

    def dataset(self, domain: str) -> Dataset:
        """Return the dataset with the given domain name."""
        if domain == self.source.name:
            return self.source
        if domain == self.target.name:
            return self.target
        raise DomainError(f"unknown domain {domain!r}; have {self.domain_names}")

    def merged(self) -> RatingTable:
        """The single aggregated domain the Baseliner (§5.1) works on:
        the union of both rating tables."""
        return self.source.ratings.merged_with(self.target.ratings)

    def reversed(self) -> "CrossDomainDataset":
        """Swap source and target (the paper evaluates both directions:
        movie→book and book→movie)."""
        return CrossDomainDataset(self.target, self.source)

    def with_target_ratings(self, ratings: RatingTable) -> "CrossDomainDataset":
        """Return a copy with the target domain's ratings replaced (the
        split protocols hide test users' target profiles this way)."""
        return CrossDomainDataset(self.source, self.target.with_ratings(ratings))

    def with_source_ratings(self, ratings: RatingTable) -> "CrossDomainDataset":
        """Return a copy with the source domain's ratings replaced."""
        return CrossDomainDataset(self.source.with_ratings(ratings), self.target)
