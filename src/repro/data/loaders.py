"""CSV persistence for datasets.

The synthetic generators make the library self-contained, but anyone
holding a real Amazon/MovieLens dump can load it through these functions:
the on-disk format is a plain ``user,item,rating,timestep`` CSV per
domain plus optional ``item,title`` and ``item,genres`` side files
(genres ``|``-separated, matching the MovieLens convention).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.dataset import CrossDomainDataset, Dataset
from repro.data.ratings import Rating, RatingTable
from repro.errors import DataError

_RATINGS_HEADER = ("user", "item", "rating", "timestep")


def write_ratings_csv(table: RatingTable, path: str | Path) -> None:
    """Write *table* to *path* as a ``user,item,rating,timestep`` CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_RATINGS_HEADER)
        for rating in sorted(table, key=lambda r: (r.user, r.timestep, r.item)):
            writer.writerow([rating.user, rating.item,
                             f"{rating.value:g}", rating.timestep])


def read_ratings_csv(path: str | Path,
                     scale: tuple[float, float] = (1.0, 5.0)) -> RatingTable:
    """Read a ratings CSV written by :func:`write_ratings_csv` (or any CSV
    with the same ``user,item,rating[,timestep]`` header)."""
    path = Path(path)
    ratings: list[Rating] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not {"user", "item", "rating"} <= set(
                reader.fieldnames):
            raise DataError(
                f"{path}: expected header with user,item,rating columns, "
                f"got {reader.fieldnames}")
        for row_number, row in enumerate(reader, start=2):
            try:
                ratings.append(Rating(
                    user=row["user"], item=row["item"],
                    value=float(row["rating"]),
                    timestep=int(row.get("timestep") or 0)))
            except (TypeError, ValueError) as exc:
                raise DataError(f"{path}:{row_number}: bad row {row!r}") from exc
    return RatingTable(ratings, scale=scale)


def write_dataset(dataset: Dataset, directory: str | Path) -> None:
    """Write a dataset to *directory* (created if missing): ``ratings.csv``
    plus ``titles.csv`` / ``genres.csv`` when metadata is present."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_ratings_csv(dataset.ratings, directory / "ratings.csv")
    if dataset.item_titles:
        with (directory / "titles.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(("item", "title"))
            for item, title in sorted(dataset.item_titles.items()):
                writer.writerow([item, title])
    if dataset.item_genres:
        with (directory / "genres.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(("item", "genres"))
            for item, genres in sorted(dataset.item_genres.items()):
                writer.writerow([item, "|".join(genres)])


def read_dataset(directory: str | Path, name: str,
                 scale: tuple[float, float] = (1.0, 5.0)) -> Dataset:
    """Read a dataset written by :func:`write_dataset`."""
    directory = Path(directory)
    ratings = read_ratings_csv(directory / "ratings.csv", scale=scale)
    titles: dict[str, str] = {}
    genres: dict[str, tuple[str, ...]] = {}
    titles_path = directory / "titles.csv"
    if titles_path.exists():
        with titles_path.open(newline="") as handle:
            for row in csv.DictReader(handle):
                titles[row["item"]] = row["title"]
    genres_path = directory / "genres.csv"
    if genres_path.exists():
        with genres_path.open(newline="") as handle:
            for row in csv.DictReader(handle):
                genres[row["item"]] = tuple(g for g in row["genres"].split("|") if g)
    return Dataset(name, ratings, item_titles=titles, item_genres=genres)


def write_cross_domain(data: CrossDomainDataset, directory: str | Path) -> None:
    """Write both domains under ``directory/<domain name>/``."""
    directory = Path(directory)
    write_dataset(data.source, directory / data.source.name)
    write_dataset(data.target, directory / data.target.name)


def read_cross_domain(directory: str | Path, source_name: str,
                      target_name: str,
                      scale: tuple[float, float] = (1.0, 5.0)) -> CrossDomainDataset:
    """Read a pair of domains written by :func:`write_cross_domain`."""
    directory = Path(directory)
    return CrossDomainDataset(
        read_dataset(directory / source_name, source_name, scale=scale),
        read_dataset(directory / target_name, target_name, scale=scale))
