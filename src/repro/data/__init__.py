"""Data substrate: rating stores, datasets, synthetic traces, splits.

The paper evaluates on Amazon (movies + books) and MovieLens traces. This
package provides the in-memory stores those traces are loaded into
(:class:`~repro.data.ratings.RatingTable`,
:class:`~repro.data.dataset.Dataset`,
:class:`~repro.data.dataset.CrossDomainDataset`), seeded synthetic
generators that stand in for the proprietary trace snapshots
(:mod:`repro.data.synthetic`), CSV loaders for real dumps
(:mod:`repro.data.loaders`), the genre-based sub-domain partitioner used
by Table 2 (:mod:`repro.data.genres`) and the evaluation split protocols
from §6.1 (:mod:`repro.data.splits`).
"""

from repro.data.dataset import CrossDomainDataset, Dataset
from repro.data.matrix import MatrixRatingStore, numpy_available
from repro.data.ratings import Rating, RatingTable
from repro.data.splits import (
    TrainTestSplit,
    cold_start_split,
    overlap_fraction_split,
    sparsity_split,
)
from repro.data.synthetic import SyntheticConfig, amazon_like, movielens_like

__all__ = [
    "CrossDomainDataset",
    "Dataset",
    "MatrixRatingStore",
    "Rating",
    "RatingTable",
    "numpy_available",
    "SyntheticConfig",
    "TrainTestSplit",
    "amazon_like",
    "cold_start_split",
    "movielens_like",
    "overlap_fraction_split",
    "sparsity_split",
]
