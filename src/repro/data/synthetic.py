"""Seeded synthetic traces standing in for the paper's Amazon / MovieLens data.

The paper evaluates on proprietary snapshots of Amazon movie + book
ratings (with 78K overlapping users) and on ML-20M. We cannot ship those,
so this module generates traces with the *properties the algorithms
exploit*:

* **Shared cross-domain taste.** Every user has a latent taste vector;
  overlapping users keep (a rotation of) the same vector in both domains,
  controlled by ``transfer_strength``. This is exactly the signal X-Map's
  meta-paths harvest: straddlers whose likes correlate across domains.
* **Popularity skew.** Item exposure follows a Zipf-like law, so the
  similarity graph is sparse with a dense core — which is what makes the
  BB/NB/NN layer structure non-trivial.
* **Temporal drift.** A user's taste vector drifts slowly over their
  rating sequence, so recent ratings are more informative — the behaviour
  Eq. 7's exponential decay is designed to exploit (Figure 5).
* **Genre structure.** MovieLens-like items carry 1–3 genre labels drawn
  from latent-space centroids, so the genre-based sub-domain partition of
  Table 2 produces genuinely coherent sub-domains.

Everything is driven by ``numpy.random.default_rng(seed)`` — the same
config always yields the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.data.dataset import CrossDomainDataset, Dataset
from repro.data.ratings import Rating, RatingTable
from repro.errors import ConfigError

#: The 19 ML-20M genre labels of Table 2 (plus "Other").
MOVIELENS_GENRES = (
    "Drama", "Comedy", "Thriller", "Romance", "Action", "Crime", "Horror",
    "Documentary", "Adventure", "Sci-Fi", "Mystery", "Fantasy", "War",
    "Children", "Musical", "Animation", "Western", "Film-Noir", "Other",
)

#: Seed titles so the examples can talk about real(ish) catalogues. The
#: first movie is Interstellar and the first book The Forever War, echoing
#: the paper's motivating example.
_MOVIE_TITLES = (
    "Interstellar", "Inception", "The Martian", "Arrival", "Gravity",
    "Blade Runner 2049", "Contact", "Solaris", "Moon", "Sunshine",
    "Angels & Demons", "Shutter Island", "Gone Girl", "Prisoners", "Se7en",
)
_BOOK_TITLES = (
    "The Forever War", "Ender's Game", "Rendezvous with Rama", "Hyperion",
    "The Martian (novel)", "Ringworld", "Contact (novel)", "Solaris (novel)",
    "The Three-Body Problem", "A Fire Upon the Deep",
    "The Da Vinci Code", "Shutter Island: A Novel", "Gone Girl (novel)",
    "The Girl with the Dragon Tattoo", "In Cold Blood",
)


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the latent-factor trace generator.

    The defaults produce a trace that is small enough for the test suite
    yet exhibits every behaviour listed in the module docstring. The
    benchmark harness scales the counts up.
    """

    n_users_source: int = 350
    n_users_target: int = 350
    n_overlap: int = 70
    n_items_source: int = 420
    n_items_target: int = 380
    ratings_per_user: float = 15.0
    min_ratings_per_user: int = 4
    latent_dim: int = 8
    #: 1.0 → overlapping users have identical taste in both domains;
    #: 0.0 → their target-domain taste is independent noise.
    transfer_strength: float = 0.9
    #: std-dev of the Gaussian rating noise before rounding.
    noise: float = 0.55
    #: std-dev of the per-user rating bias b_u (generous vs harsh
    #: raters). This is the strongest cross-domain-transferable signal:
    #: a user's bias travels intact with her AlterEgo ratings, so it is
    #: what lets personalised CF beat the unpersonalised ItemAverage.
    user_bias: float = 0.8
    #: Zipf-like exponent of item popularity (0 → uniform exposure). The
    #: skewed head concentrates co-ratings on popular items — reliable
    #: similarities with low DP sensitivity — while the tail populates
    #: the NB/NN layers, like the real Amazon catalogue.
    popularity_skew: float = 1.4
    #: per-step taste drift magnitude (drives the Figure 5 temporal effect).
    taste_drift: float = 0.02
    #: per-step drift of the user's rating bias (users grow more or less
    #: generous over time — the rating noise the paper's [4] documents).
    #: Like the taste drift it continues across domains, so a
    #: straddler's recent source ratings predict her target-period
    #: rating level best; this is the dominant channel behind the
    #: Figure 5 temporal dip.
    bias_drift: float = 0.02
    #: logical-time units between consecutive ratings of one user. The
    #: paper's timesteps are wall-clock-derived, so consecutive ratings
    #: are many logical units apart; a stride of 10 places the optimal
    #: Eq 7 decay α in the same [0, 0.2] window Figure 5 sweeps.
    timestep_stride: int = 10
    #: scale of the user·item latent interaction term.
    signal_scale: float = 1.6
    seed: int = 7

    def validated(self) -> "SyntheticConfig":
        """Raise :class:`~repro.errors.ConfigError` on nonsensical values."""
        if self.n_overlap > min(self.n_users_source, self.n_users_target):
            raise ConfigError(
                f"n_overlap={self.n_overlap} exceeds a domain's user count")
        if min(self.n_users_source, self.n_users_target,
               self.n_items_source, self.n_items_target) <= 0:
            raise ConfigError("user and item counts must be positive")
        if not 0.0 <= self.transfer_strength <= 1.0:
            raise ConfigError(
                f"transfer_strength must be in [0, 1], got {self.transfer_strength}")
        if self.ratings_per_user < self.min_ratings_per_user:
            raise ConfigError("ratings_per_user below min_ratings_per_user")
        if self.latent_dim <= 0:
            raise ConfigError("latent_dim must be positive")
        return self


@dataclass
class _LatentDomain:
    """Internal: one domain's latent item model."""

    name: str
    item_ids: list[str]
    factors: np.ndarray          # (n_items, d)
    biases: np.ndarray           # (n_items,)
    popularity: np.ndarray       # (n_items,) — sampling weights, sum 1
    titles: dict[str, str] = field(default_factory=dict)
    genres: dict[str, tuple[str, ...]] = field(default_factory=dict)


def _make_domain(name: str, prefix: str, n_items: int, config: SyntheticConfig,
                 rng: np.random.Generator,
                 titles: tuple[str, ...] = ()) -> _LatentDomain:
    item_ids = [f"{prefix}{k:05d}" for k in range(n_items)]
    factors = rng.normal(0.0, 1.0, size=(n_items, config.latent_dim))
    factors /= np.linalg.norm(factors, axis=1, keepdims=True)
    biases = rng.normal(0.0, 0.35, size=n_items)
    ranks = np.arange(1, n_items + 1, dtype=float)
    weights = ranks ** (-config.popularity_skew)
    rng.shuffle(weights)
    popularity = weights / weights.sum()
    title_map = {item_ids[k]: titles[k] for k in range(min(len(titles), n_items))}
    return _LatentDomain(name=name, item_ids=item_ids, factors=factors,
                         biases=biases, popularity=popularity, titles=title_map)


def _sample_user_ratings(user: str, taste: np.ndarray, bias: float,
                         domain: _LatentDomain, config: SyntheticConfig,
                         rng: np.random.Generator,
                         drift_direction: np.ndarray | None = None,
                         bias_direction: float | None = None,
                         ) -> tuple[list[Rating], np.ndarray, float]:
    """Draw one user's rating stream in one domain.

    The user rates a popularity-biased sample of items in sequence; their
    taste vector drifts a little at each step along *drift_direction*
    (drawn fresh when not supplied). Returns the ratings and the taste
    vector reached at the end of the stream — a straddler's target-domain
    stream continues from where her source-domain trajectory ended, which
    is what makes her *recent* source ratings the better predictors of
    her target taste (the Figure 5 temporal signal).
    """
    n_items = len(domain.item_ids)
    count = int(rng.poisson(config.ratings_per_user))
    count = max(config.min_ratings_per_user, min(count, n_items))
    chosen = rng.choice(n_items, size=count, replace=False, p=domain.popularity)
    if drift_direction is None:
        drift_direction = rng.normal(0.0, 1.0, size=config.latent_dim)
        norm = np.linalg.norm(drift_direction)
        if norm > 0:
            drift_direction = drift_direction / norm
    if bias_direction is None:
        bias_direction = 1.0 if rng.random() < 0.5 else -1.0
    ratings = []
    current = taste.astype(float).copy()
    current_bias = bias
    for step, idx in enumerate(chosen):
        raw = (3.0 + current_bias + domain.biases[idx]
               + config.signal_scale * float(current @ domain.factors[idx])
               + rng.normal(0.0, config.noise))
        value = float(min(5.0, max(1.0, round(raw))))
        ratings.append(Rating(user, domain.item_ids[idx], value,
                              timestep=step * config.timestep_stride))
        current = current + config.taste_drift * drift_direction
        current_bias += config.bias_drift * bias_direction
    return ratings, current, current_bias


def amazon_like(config: SyntheticConfig | None = None) -> CrossDomainDataset:
    """Generate an Amazon-style two-domain trace (movies + books).

    Users ``s####`` rate only movies, ``t####`` only books, and ``o####``
    are the straddlers rating in both domains with correlated taste.

    Returns a :class:`~repro.data.dataset.CrossDomainDataset` whose source
    is the ``movies`` domain and target the ``books`` domain (call
    :meth:`~repro.data.dataset.CrossDomainDataset.reversed` for the other
    direction, as the paper's figures do).
    """
    config = (config or SyntheticConfig()).validated()
    rng = np.random.default_rng(config.seed)
    movies = _make_domain("movies", "m", config.n_items_source, config,
                          rng, titles=_MOVIE_TITLES)
    books = _make_domain("books", "b", config.n_items_target, config,
                         rng, titles=_BOOK_TITLES)

    source_ratings: list[Rating] = []
    target_ratings: list[Rating] = []

    def draw_taste() -> tuple[np.ndarray, float]:
        taste = rng.normal(0.0, 1.0, size=config.latent_dim)
        taste /= np.linalg.norm(taste)
        return taste, float(rng.normal(0.0, config.user_bias))

    for k in range(config.n_overlap):
        user = f"o{k:05d}"
        taste, bias = draw_taste()
        drift = rng.normal(0.0, 1.0, size=config.latent_dim)
        drift /= np.linalg.norm(drift)
        bias_dir = 1.0 if rng.random() < 0.5 else -1.0
        rated, final_taste, final_bias = _sample_user_ratings(
            user, taste, bias, movies, config, rng,
            drift_direction=drift, bias_direction=bias_dir)
        source_ratings.extend(rated)
        # The straddler's book stream starts from the taste and rating
        # level her movie trajectory ended at (recency signal), with the
        # taste diluted by transfer_strength (cross-domain fidelity).
        fresh = rng.normal(0.0, 1.0, size=config.latent_dim)
        fresh /= np.linalg.norm(fresh)
        end = final_taste / max(np.linalg.norm(final_taste), 1e-12)
        mixed = (config.transfer_strength * end
                 + (1 - config.transfer_strength) * fresh)
        norm = np.linalg.norm(mixed)
        if norm > 0:
            mixed = mixed / norm
        rated, _, _ = _sample_user_ratings(
            user, mixed, final_bias, books, config, rng,
            drift_direction=drift, bias_direction=bias_dir)
        target_ratings.extend(rated)

    for k in range(config.n_users_source - config.n_overlap):
        user = f"s{k:05d}"
        taste, bias = draw_taste()
        rated, _, _ = _sample_user_ratings(user, taste, bias, movies, config, rng)
        source_ratings.extend(rated)

    for k in range(config.n_users_target - config.n_overlap):
        user = f"t{k:05d}"
        taste, bias = draw_taste()
        rated, _, _ = _sample_user_ratings(user, taste, bias, books, config, rng)
        target_ratings.extend(rated)

    source = Dataset("movies", RatingTable(source_ratings), item_titles=movies.titles)
    target = Dataset("books", RatingTable(target_ratings), item_titles=books.titles)
    return CrossDomainDataset(source, target)


def movielens_like(n_users: int = 400, n_items: int = 260,
                   ratings_per_user: float = 30.0, seed: int = 13,
                   n_genres: int = 19) -> Dataset:
    """Generate an ML-20M-style single-domain trace with genre labels.

    Genres are assigned from latent-space centroids: each item carries its
    1–3 nearest genre centroids, so items sharing genres genuinely share
    latent structure. Genre frequencies are skewed (Drama ≫ Film-Noir),
    mirroring Table 2's movie counts.
    """
    if n_genres > len(MOVIELENS_GENRES):
        raise ConfigError(f"n_genres must be ≤ {len(MOVIELENS_GENRES)}, got {n_genres}")
    config = SyntheticConfig(
        n_users_source=n_users, n_users_target=n_users, n_overlap=0,
        n_items_source=n_items, n_items_target=1,
        ratings_per_user=ratings_per_user, seed=seed).validated()
    rng = np.random.default_rng(seed)
    domain = _make_domain("ml", "ml", n_items, config, rng)

    genre_names = MOVIELENS_GENRES[:n_genres]
    centroids = rng.normal(0.0, 1.0, size=(n_genres, config.latent_dim))
    centroids /= np.linalg.norm(centroids, axis=1, keepdims=True)
    # Skew genre pull so frequencies are uneven like the real catalogue.
    genre_pull = np.linspace(1.6, 0.4, n_genres)
    for idx, item in enumerate(domain.item_ids):
        affinity = (centroids @ domain.factors[idx]) * genre_pull
        order = np.argsort(-affinity)
        n_labels = 1 + int(rng.integers(0, 3))
        domain.genres[item] = tuple(genre_names[g] for g in order[:n_labels])

    ratings: list[Rating] = []
    for k in range(n_users):
        user = f"u{k:05d}"
        taste = rng.normal(0.0, 1.0, size=config.latent_dim)
        taste /= np.linalg.norm(taste)
        bias = float(rng.normal(0.0, config.user_bias))
        rated, _, _ = _sample_user_ratings(user, taste, bias, domain, config, rng)
        ratings.extend(rated)
    return Dataset("ml", RatingTable(ratings), item_genres=domain.genres)


def interstellar_scenario() -> CrossDomainDataset:
    """The hand-built five-user scenario of Figure 1(a).

    Alice and Dave rated only movies, Emma only books, while Bob and
    Cecilia straddle both domains. Interstellar and The Forever War share
    no common rater, yet the meta-path Interstellar —Bob→ Inception
    —Cecilia→ The Forever War connects them. Used by tests and the
    quickstart example.
    """
    # Cecilia is the single straddler: she rated Inception and two books,
    # so Inception is the lone movie-side bridge item and the meta-path
    # Interstellar —Bob→ Inception —Cecilia→ The Forever War is exactly
    # the one the paper's introduction walks through.
    movies = Dataset("movies", RatingTable([
        Rating("alice", "interstellar", 5.0, 0),
        Rating("alice", "gravity", 4.0, 1),
        Rating("bob", "interstellar", 5.0, 0),
        Rating("bob", "inception", 5.0, 1),
        Rating("bob", "gravity", 2.0, 2),
        Rating("cecilia", "inception", 5.0, 0),
        Rating("dave", "gravity", 2.0, 0),
        Rating("dave", "inception", 4.0, 1),
    ]), item_titles={"interstellar": "Interstellar",
                     "inception": "Inception",
                     "gravity": "Gravity"})
    books = Dataset("books", RatingTable([
        Rating("cecilia", "forever-war", 5.0, 1),
        Rating("cecilia", "hyperion", 4.0, 2),
        Rating("emma", "forever-war", 5.0, 0),
        Rating("emma", "enders-game", 4.0, 1),
        Rating("emma", "hyperion", 5.0, 2),
    ]), item_titles={"forever-war": "The Forever War",
                     "enders-game": "Ender's Game",
                     "hyperion": "Hyperion"})
    return CrossDomainDataset(movies, books)


def scaled(config: SyntheticConfig, factor: float) -> SyntheticConfig:
    """Scale a config's user/item counts by *factor* (benchmark sweeps)."""
    if factor <= 0:
        raise ConfigError(f"scale factor must be positive, got {factor}")
    return replace(
        config,
        n_users_source=max(1, int(config.n_users_source * factor)),
        n_users_target=max(1, int(config.n_users_target * factor)),
        n_overlap=max(0, int(config.n_overlap * factor)),
        n_items_source=max(1, int(config.n_items_source * factor)),
        n_items_target=max(1, int(config.n_items_target * factor)),
    )
