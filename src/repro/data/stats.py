"""Descriptive statistics for rating tables and cross-domain datasets.

Used by the experiment reports to print the §6.1-style dataset overview
(number of ratings/users/items, overlap size, density) alongside every
result table, so a reader can judge what scale a number was measured at.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.data.dataset import CrossDomainDataset
from repro.data.ratings import RatingTable


@dataclass(frozen=True)
class TableStats:
    """Summary of one rating table."""

    n_users: int
    n_items: int
    n_ratings: int
    density: float
    mean_rating: float
    mean_ratings_per_user: float
    mean_ratings_per_item: float

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.n_ratings} ratings, {self.n_users} users, "
                f"{self.n_items} items, density {self.density:.4%}, "
                f"mean rating {self.mean_rating:.2f}")


def summarize(table: RatingTable) -> TableStats:
    """Compute :class:`TableStats` for *table*."""
    n_users = len(table.users)
    n_items = len(table.items)
    n_ratings = len(table)
    cells = n_users * n_items
    return TableStats(
        n_users=n_users,
        n_items=n_items,
        n_ratings=n_ratings,
        density=(n_ratings / cells) if cells else 0.0,
        mean_rating=table.global_mean() if n_ratings else math.nan,
        mean_ratings_per_user=(n_ratings / n_users) if n_users else 0.0,
        mean_ratings_per_item=(n_ratings / n_items) if n_items else 0.0,
    )


@dataclass(frozen=True)
class CrossDomainStats:
    """Summary of a two-domain dataset, §6.1-style."""

    source: TableStats
    target: TableStats
    n_overlap_users: int

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        return "\n".join([
            f"source: {self.source.describe()}",
            f"target: {self.target.describe()}",
            f"overlapping users: {self.n_overlap_users}",
        ])


def summarize_cross_domain(data: CrossDomainDataset) -> CrossDomainStats:
    """Compute :class:`CrossDomainStats` for *data*."""
    return CrossDomainStats(
        source=summarize(data.source.ratings),
        target=summarize(data.target.ratings),
        n_overlap_users=len(data.overlap_users),
    )
