"""Rating records and the indexed rating store.

The whole library works on explicit feedback: a user assigned a numeric
value to an item at a logical timestep (§2.1, Table 1 of the paper). The
:class:`RatingTable` is the single source of truth for that data. It keeps
two redundant indexes — by user (``X_u``, the user profile) and by item
(``Y_i``, the item profile) — because the paper's algorithms constantly
switch between the two views: user-based CF iterates over ``X_u``,
item-based CF and the similarity graph iterate over ``Y_i``.

Tables are immutable after construction. Derived tables (filtering users,
merging domains, hiding test ratings) are produced by the ``with_*`` /
``without_*`` methods, which return new tables. This keeps the evaluation
protocols side-effect free: hiding a test user's ratings can never corrupt
the training data another experiment is using.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping

from repro.errors import DataError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.data.matrix import MatrixRatingStore

#: Default rating scale used by the Amazon and MovieLens traces (§6.1).
DEFAULT_SCALE = (1.0, 5.0)


@dataclass(frozen=True, slots=True)
class Rating:
    """A single explicit-feedback event.

    Attributes:
        user: user identifier (``u`` in the paper's notation).
        item: item identifier (``i``).
        value: the rating ``r_{u,i}``.
        timestep: logical time of the event (footnote 7 of the paper); used
            by the temporal weighting of Eq. 7. Defaults to 0 for data
            without timestamps.
    """

    user: str
    item: str
    value: float
    timestep: int = 0

    def moved_to(self, item: str) -> "Rating":
        """Return the same rating attached to a different item.

        This is the primitive behind AlterEgo construction (§4.3): the
        rating and its timestep travel, only the item id changes.
        """
        return Rating(self.user, item, self.value, self.timestep)


class RatingTable:
    """Immutable, doubly-indexed store of ratings.

    Args:
        ratings: the rating events. A (user, item) pair may appear at most
            once; duplicates raise :class:`~repro.errors.DataError`.
        scale: inclusive ``(min, max)`` rating bounds; out-of-range values
            raise :class:`~repro.errors.DataError`.
    """

    __slots__ = ("_by_user", "_by_item", "_scale", "_n", "_user_mean_cache",
                 "_item_mean_cache", "_global_mean_cache", "_matrix_cache",
                 "_matrix_delta_base")

    def __init__(self, ratings: Iterable[Rating] = (),
                 scale: tuple[float, float] = DEFAULT_SCALE) -> None:
        lo, hi = scale
        if not lo < hi:
            raise DataError(f"invalid rating scale {scale!r}: min must be < max")
        by_user: dict[str, dict[str, Rating]] = {}
        by_item: dict[str, dict[str, Rating]] = {}
        n = 0
        for r in ratings:
            if not lo <= r.value <= hi:
                raise DataError(
                    f"rating {r.value} by {r.user!r} for {r.item!r} "
                    f"outside scale [{lo}, {hi}]")
            profile = by_user.setdefault(r.user, {})
            if r.item in profile:
                raise DataError(
                    f"duplicate rating for (user={r.user!r}, item={r.item!r})")
            profile[r.item] = r
            by_item.setdefault(r.item, {})[r.user] = r
            n += 1
        self._by_user = by_user
        self._by_item = by_item
        self._scale = (float(lo), float(hi))
        self._n = n
        self._user_mean_cache: dict[str, float] = {}
        self._item_mean_cache: dict[str, float] = {}
        self._global_mean_cache: float | None = None
        self._matrix_cache = None
        self._matrix_delta_base = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def scale(self) -> tuple[float, float]:
        """Inclusive (min, max) rating bounds."""
        return self._scale

    @property
    def users(self) -> frozenset[str]:
        """The set ``U`` of users with at least one rating."""
        return frozenset(self._by_user)

    @property
    def items(self) -> frozenset[str]:
        """The set ``I`` of items with at least one rating."""
        return frozenset(self._by_item)

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Rating]:
        for profile in self._by_user.values():
            yield from profile.values()

    def __contains__(self, user_item: tuple[str, str]) -> bool:
        user, item = user_item
        return item in self._by_user.get(user, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RatingTable(users={len(self._by_user)}, "
                f"items={len(self._by_item)}, ratings={self._n})")

    def get(self, user: str, item: str) -> Rating | None:
        """Return the rating of *item* by *user*, or None."""
        return self._by_user.get(user, {}).get(item)

    def value(self, user: str, item: str) -> float:
        """Return ``r_{u,i}``; raises DataError if absent."""
        rating = self.get(user, item)
        if rating is None:
            raise DataError(f"no rating for (user={user!r}, item={item!r})")
        return rating.value

    def user_profile(self, user: str) -> Mapping[str, Rating]:
        """``X_u``: items rated by *user*, as an item → Rating mapping.

        Unknown users yield an empty mapping (a user the recommender has
        never seen simply has no history).
        """
        return self._by_user.get(user, {})

    def item_profile(self, item: str) -> Mapping[str, Rating]:
        """``Y_i``: users who rated *item*, as a user → Rating mapping."""
        return self._by_item.get(item, {})

    def user_items(self, user: str) -> frozenset[str]:
        """The item ids in ``X_u``."""
        return frozenset(self._by_user.get(user, ()))

    def item_users(self, item: str) -> frozenset[str]:
        """The user ids in ``Y_i``."""
        return frozenset(self._by_item.get(item, ()))

    # ------------------------------------------------------------------
    # Means (cached — they are read inside similarity inner loops)
    # ------------------------------------------------------------------

    def user_mean(self, user: str) -> float:
        """``r̄_u``: mean rating of *user* (global mean if unknown user)."""
        cached = self._user_mean_cache.get(user)
        if cached is not None:
            return cached
        profile = self._by_user.get(user)
        if not profile:
            return self.global_mean()
        mean = math.fsum(r.value for r in profile.values()) / len(profile)
        self._user_mean_cache[user] = mean
        return mean

    def item_mean(self, item: str) -> float:
        """``r̄_i``: mean rating of *item* (global mean if unknown item).

        Footnote 3 of the paper completes the sparse matrix with item
        averages, which is why the unknown-item fallback is the global
        mean rather than an error.
        """
        cached = self._item_mean_cache.get(item)
        if cached is not None:
            return cached
        profile = self._by_item.get(item)
        if not profile:
            return self.global_mean()
        mean = math.fsum(r.value for r in profile.values()) / len(profile)
        self._item_mean_cache[item] = mean
        return mean

    def global_mean(self) -> float:
        """Mean over all ratings (midpoint of the scale if empty)."""
        if self._global_mean_cache is None:
            if self._n == 0:
                lo, hi = self._scale
                self._global_mean_cache = (lo + hi) / 2.0
            else:
                total = math.fsum(r.value for r in self)
                self._global_mean_cache = total / self._n
        return self._global_mean_cache

    # ------------------------------------------------------------------
    # Indexed view (the similarity layer's hot-path representation)
    # ------------------------------------------------------------------

    def matrix(self) -> "MatrixRatingStore":
        """The interned, array-backed view of this table (memoized).

        Built lazily on first use and shared by every similarity entry
        point, so one pipeline run derives the per-user/per-item arrays,
        means and norms exactly once. Tables are immutable, which is what
        makes the memoization sound.

        A table derived through :meth:`with_ratings` / :meth:`merged_with`
        from a table whose store was already built carries a **delta
        handoff**: the first :meth:`matrix` call appends the batch to the
        parent's memoized store
        (:meth:`~repro.data.matrix.MatrixRatingStore.append_ratings` —
        bit-identical to a fresh build, property-tested) instead of
        re-interning and re-summing the whole table. This is what keeps
        online AlterEgo appends from paying a full store rebuild.
        """
        if self._matrix_cache is None:
            handoff = self._matrix_delta_base
            self._matrix_delta_base = None
            if handoff is not None:
                base_store, batch = handoff
                self._matrix_cache = base_store.append_ratings(batch)[0]
            else:
                from repro.data.matrix import MatrixRatingStore
                self._matrix_cache = MatrixRatingStore(self)
        return self._matrix_cache

    # ------------------------------------------------------------------
    # Derivation (immutable-style updates)
    # ------------------------------------------------------------------

    #: A derived table hands its parent's memoized store off for an
    #: incremental append only when the batch is small relative to the
    #: table — appending a comparable-size batch touches most rows and
    #: a fresh build is the faster (and equal) path.
    _DELTA_HANDOFF_RATIO = 4

    def _arm_delta_handoff(self, derived: "RatingTable",
                           batch: tuple[Rating, ...]) -> "RatingTable":
        """Attach the (store, batch) delta handoff to a derived table
        when this table's store is built and the batch is small."""
        if (self._matrix_cache is not None
                and len(batch) * self._DELTA_HANDOFF_RATIO <= self._n):
            derived._matrix_delta_base = (self._matrix_cache, batch)
        return derived

    def _append_derive(self, batch: tuple[Rating, ...]) -> "RatingTable":
        """Derive the appended table in O(batch), not O(table).

        Untouched per-user profiles and per-item columns are *shared*
        with this table (they are never mutated after construction —
        every derivation builds new dicts — so sharing is safe); only
        the profiles and columns the batch touches are copied. The
        result is indistinguishable from the O(N) merge-and-rebuild
        path: same entries, same override semantics, same validation.
        """
        lo, hi = self._scale
        by_user = dict(self._by_user)
        by_item = dict(self._by_item)
        touched_profiles: dict[str, dict[str, Rating]] = {}
        touched_columns: dict[str, dict[str, Rating]] = {}
        n = self._n
        for r in batch:
            if not lo <= r.value <= hi:
                raise DataError(
                    f"rating {r.value} by {r.user!r} for {r.item!r} "
                    f"outside scale [{lo}, {hi}]")
            profile = touched_profiles.get(r.user)
            if profile is None:
                profile = dict(by_user.get(r.user, ()))
                touched_profiles[r.user] = profile
                by_user[r.user] = profile
            column = touched_columns.get(r.item)
            if column is None:
                column = dict(by_item.get(r.item, ()))
                touched_columns[r.item] = column
                by_item[r.item] = column
            if r.item not in profile:
                n += 1
            profile[r.item] = r
            column[r.user] = r
        table = RatingTable.__new__(RatingTable)
        table._by_user = by_user
        table._by_item = by_item
        table._scale = self._scale
        table._n = n
        table._user_mean_cache = {}
        table._item_mean_cache = {}
        table._global_mean_cache = None
        table._matrix_cache = None
        table._matrix_delta_base = None
        return table

    def with_ratings(self, ratings: Iterable[Rating]) -> "RatingTable":
        """Return a new table with *ratings* added (or overriding existing
        (user, item) entries — used when appending an AlterEgo to a real
        target profile, footnote 6).

        Small batches derive in O(batch): untouched profiles are shared
        with this table instead of re-merged, and if this table's
        :meth:`matrix` store is already built the derived table inherits
        it through the incremental append path instead of rebuilding —
        the two halves of what keeps an online append from paying
        table-sized work.
        """
        batch = tuple(ratings)
        if len(batch) * self._DELTA_HANDOFF_RATIO <= self._n:
            return self._arm_delta_handoff(self._append_derive(batch), batch)
        merged: dict[tuple[str, str], Rating] = {(r.user, r.item): r for r in self}
        for r in batch:
            merged[(r.user, r.item)] = r
        # No handoff here: this branch is exactly the batches too large
        # for the ratio guard, where a fresh store build wins anyway.
        return RatingTable(merged.values(), scale=self._scale)

    def without_users(self, users: Iterable[str]) -> "RatingTable":
        """Return a new table with every rating by *users* removed."""
        gone = set(users)
        return RatingTable((r for r in self if r.user not in gone), scale=self._scale)

    def without_items(self, items: Iterable[str]) -> "RatingTable":
        """Return a new table with every rating of *items* removed."""
        gone = set(items)
        return RatingTable((r for r in self if r.item not in gone), scale=self._scale)

    def without_pairs(self, pairs: Iterable[tuple[str, str]]) -> "RatingTable":
        """Return a new table with the given (user, item) ratings removed.

        This is the primitive behind the evaluation protocol of §6.1:
        hiding (part of) a test user's target-domain profile.
        """
        gone = set(pairs)
        return RatingTable(
            (r for r in self if (r.user, r.item) not in gone),
            scale=self._scale)

    def filter(self, predicate: Callable[[Rating], bool]) -> "RatingTable":
        """Return a new table with only the ratings matching *predicate*."""
        return RatingTable((r for r in self if predicate(r)), scale=self._scale)

    def restricted_to_items(self, items: Iterable[str]) -> "RatingTable":
        """Return a new table keeping only ratings of *items*."""
        keep = set(items)
        return RatingTable((r for r in self if r.item in keep), scale=self._scale)

    def merged_with(self, other: "RatingTable") -> "RatingTable":
        """Union of two tables (used by the Baseliner, §5.1, to treat the
        source and target domains as a single aggregated domain).

        The tables must not disagree on any (user, item) pair. When this
        table's :meth:`matrix` store is built and *other* is small, the
        merged table inherits it through the incremental append path.
        """
        if other.scale != self._scale:
            raise DataError(
                f"cannot merge tables with scales {self._scale} and {other.scale}")
        combined: dict[tuple[str, str], Rating] = {(r.user, r.item): r for r in self}
        batch = tuple(other)
        for r in batch:
            key = (r.user, r.item)
            existing = combined.get(key)
            if existing is not None and existing != r:
                raise DataError(f"conflicting ratings for {key!r}: {existing} vs {r}")
            combined[key] = r
        return self._arm_delta_handoff(
            RatingTable(combined.values(), scale=self._scale), batch)

    def clip(self, value: float) -> float:
        """Clamp *value* into the rating scale (used on predictions)."""
        lo, hi = self._scale
        return min(hi, max(lo, value))
