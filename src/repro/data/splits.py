"""Evaluation split protocols from §6.1 of the paper.

The paper's scheme: partition the *overlapping* users (those who rated in
both domains) into training and test sets; for each test user, hide their
target-domain profile and predict it from their source-domain profile.

* Hiding the whole target profile evaluates **cold-start** (the user has
  never rated in the target domain) — :func:`cold_start_split`.
* Hiding all but a few target ratings evaluates **sparsity**
  (Figure 10) — :func:`sparsity_split`.
* Shrinking the set of training straddlers evaluates the **impact of
  overlap** (Figure 9) — :func:`overlap_fraction_split`.

All protocols are deterministic given their seed and never mutate the
input dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.dataset import CrossDomainDataset
from repro.data.ratings import Rating, RatingTable
from repro.errors import EvaluationError


@dataclass(frozen=True)
class TrainTestSplit:
    """A training dataset plus the ground truth that was hidden from it.

    Attributes:
        train: the cross-domain dataset the recommender may see.
        test_users: users whose target-domain ratings were (partly) hidden.
        hidden: the hidden target-domain ratings — the ground truth that
            predictions are scored against.
    """

    train: CrossDomainDataset
    test_users: tuple[str, ...]
    hidden: RatingTable

    @property
    def n_hidden(self) -> int:
        """Number of hidden (user, item) ground-truth ratings."""
        return len(self.hidden)

    def hidden_pairs(self) -> list[tuple[str, str, float]]:
        """The ground truth as (user, item, true rating) triples."""
        return [(r.user, r.item, r.value) for r in self.hidden]


def _eligible_users(data: CrossDomainDataset, min_source: int,
                    min_target: int) -> list[str]:
    """Overlap users with enough history on both sides, in sorted order
    (sorted so the seeded sampling is reproducible across runs)."""
    eligible = [
        user for user in sorted(data.overlap_users)
        if len(data.source.ratings.user_profile(user)) >= min_source
        and len(data.target.ratings.user_profile(user)) >= min_target
    ]
    if not eligible:
        raise EvaluationError(
            "no overlap users satisfy the eligibility thresholds "
            f"(min_source={min_source}, min_target={min_target})")
    return eligible


def _select_test_users(data: CrossDomainDataset, test_fraction: float,
                       min_source: int, min_target: int,
                       seed: int) -> list[str]:
    if not 0.0 < test_fraction < 1.0:
        raise EvaluationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    eligible = _eligible_users(data, min_source, min_target)
    n_test = max(1, int(round(len(eligible) * test_fraction)))
    if n_test >= len(eligible):
        raise EvaluationError(
            f"test_fraction={test_fraction} leaves no training straddlers")
    rng = random.Random(seed)
    return sorted(rng.sample(eligible, n_test))


def cold_start_split(data: CrossDomainDataset, test_fraction: float = 0.2,
                     min_source: int = 3, min_target: int = 3,
                     seed: int = 0) -> TrainTestSplit:
    """Hide the *entire* target-domain profile of each test user.

    This is the paper's primary protocol: "for the test users, we hide
    their profile in the target domain and use their profile in the source
    domain to predict" (§6.1).
    """
    test_users = _select_test_users(data, test_fraction, min_source, min_target, seed)
    test_set = set(test_users)
    hidden = [r for r in data.target.ratings if r.user in test_set]
    train_target = data.target.ratings.without_users(test_set)
    return TrainTestSplit(
        train=data.with_target_ratings(train_target),
        test_users=tuple(test_users),
        hidden=RatingTable(hidden, scale=data.target.ratings.scale),
    )


def sparsity_split(data: CrossDomainDataset, auxiliary_size: int,
                   test_fraction: float = 0.2, min_source: int = 10,
                   min_target: int = 10, seed: int = 0) -> TrainTestSplit:
    """Keep *auxiliary_size* target ratings per test user, hide the rest.

    Figure 10 varies ``auxiliary_size`` from 0 (cold-start) to 6 (low
    sparsity). Following footnote 13, only users with at least
    ``min_source``/``min_target`` = 10 ratings per domain are eligible.
    The kept ratings are the user's *earliest* ones — the realistic
    scenario of a user who recently joined the target application.
    """
    if auxiliary_size < 0:
        raise EvaluationError(f"auxiliary_size must be >= 0, got {auxiliary_size}")
    test_users = _select_test_users(data, test_fraction, min_source, min_target, seed)
    hidden: list[Rating] = []
    kept: list[Rating] = []
    for user in test_users:
        profile = sorted(data.target.ratings.user_profile(user).values(),
                         key=lambda r: (r.timestep, r.item))
        kept.extend(profile[:auxiliary_size])
        hidden.extend(profile[auxiliary_size:])
    if not hidden:
        raise EvaluationError("auxiliary_size leaves nothing hidden for any test user")
    hidden_pairs = {(r.user, r.item) for r in hidden}
    train_target = data.target.ratings.without_pairs(hidden_pairs)
    return TrainTestSplit(
        train=data.with_target_ratings(train_target),
        test_users=tuple(test_users),
        hidden=RatingTable(hidden, scale=data.target.ratings.scale),
    )


def overlap_fraction_split(data: CrossDomainDataset, fraction: float,
                           test_fraction: float = 0.2, min_source: int = 3,
                           min_target: int = 3, seed: int = 0) -> TrainTestSplit:
    """Cold-start split that keeps only a *fraction* of training straddlers.

    Figure 9 ("training set size denotes overlap size") measures accuracy
    as the number of users connecting the domains grows. The test set is
    chosen exactly as in :func:`cold_start_split` (same seed → same test
    users for every fraction, so the curves are comparable); then a
    ``fraction`` of the remaining straddlers keep their target ratings
    while the rest have them dropped, severing their bridge.
    """
    if not 0.0 < fraction <= 1.0:
        raise EvaluationError(f"fraction must be in (0, 1], got {fraction}")
    base = cold_start_split(data, test_fraction=test_fraction,
                            min_source=min_source, min_target=min_target,
                            seed=seed)
    straddlers = sorted(base.train.overlap_users)
    n_keep = max(1, int(round(len(straddlers) * fraction)))
    rng = random.Random(seed + 1)
    keep = set(rng.sample(straddlers, n_keep))
    drop = [u for u in straddlers if u not in keep]
    train_target = base.train.target.ratings.without_users(drop)
    return TrainTestSplit(
        train=base.train.with_target_ratings(train_target),
        test_users=base.test_users,
        hidden=base.hidden,
    )
