"""X-Map core: the paper's primary contribution.

* :mod:`repro.core.layers` — bridge items and the BB/NB/NN layer
  partition (§3.2),
* :mod:`repro.core.metapaths` — meta-path enumeration over the pruned
  layered adjacency (Definition 3),
* :mod:`repro.core.xsim` — path similarity, path certainty and the X-Sim
  metric (Definitions 5–6),
* :mod:`repro.core.baseliner` / :mod:`repro.core.extender` — the first
  two pipeline components of §5,
* :mod:`repro.core.alterego` — AlterEgo profile generation (§4.3),
* :mod:`repro.core.pipeline` — the NX-Map / X-Map recommender facades
  tying everything together (§4–5).
"""

from repro.core.alterego import AlterEgoGenerator, ReplacementPolicy
from repro.core.baseliner import Baseliner, BaselineSimilarities
from repro.core.extender import Extender, ExtenderConfig, XSimMap
from repro.core.layers import Layer, LayerPartition
from repro.core.metapaths import MetaPath
from repro.core.pipeline import NXMapRecommender, XMapConfig, XMapRecommender
from repro.core.xsim import SignificanceCache, aggregate_xsim

__all__ = [
    "AlterEgoGenerator",
    "Baseliner",
    "BaselineSimilarities",
    "Extender",
    "ExtenderConfig",
    "Layer",
    "LayerPartition",
    "MetaPath",
    "NXMapRecommender",
    "ReplacementPolicy",
    "SignificanceCache",
    "XMapConfig",
    "XMapRecommender",
    "XSimMap",
    "aggregate_xsim",
]
