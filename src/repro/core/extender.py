"""The Extender component (§5.2, Figure 4).

Takes the baseline graph, partitions it into the six layers, prunes each
item's connections to the top-k per adjacent layer, enumerates meta-paths
and aggregates them with Definition 6 into the cross-domain **X-Sim map**:
for every item ``t_i`` in the source domain, the set ``I(t_i)`` of target
items with a quantified (positive or negative) X-Sim value. That map is
what the Generator consumes to build AlterEgos, and its size is the
"meta-path-based" bar of Figure 1(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.layers import LayerPartition
from repro.core.metapaths import build_pruned_adjacency, enumerate_meta_paths
from repro.core.xsim import SignificanceCache, path_certainty, path_similarity
from repro.data.ratings import RatingTable
from repro.errors import ConfigError, SimilarityError
from repro.similarity.graph import ItemGraph

#: source item → (target item → X-Sim value)
XSimMap = dict[str, dict[str, float]]


@dataclass(frozen=True)
class ExtenderConfig:
    """Knobs of the layer-based pruning (§3.2).

    Attributes:
        k: per-item, per-adjacent-layer edge budget. The paper's "each
            item in layer l is connected to the top-k items from every
            neighboring layer".
        max_paths_per_item: cap on enumerated meta-paths per source item;
            exploration is strongest-edge-first, so the cap keeps the
            best paths. ``None`` removes the cap.
        weight_by_certainty: aggregate paths weighted by path certainty
            (Definition 5). Disabling gives every path equal weight —
            the ablation showing what the certainty factor buys.
        weight_by_significance: combine a path's edge similarities
            weighted by their significances (Definition 2's role in
            s_p). Disabling uses a plain mean over the hops.
    """

    k: int = 10
    max_paths_per_item: int | None = 5000
    weight_by_certainty: bool = True
    weight_by_significance: bool = True

    def validated(self) -> "ExtenderConfig":
        """Raise :class:`~repro.errors.ConfigError` on bad values."""
        if self.k <= 0:
            raise ConfigError(f"k must be positive, got {self.k}")
        if self.max_paths_per_item is not None and self.max_paths_per_item <= 0:
            raise ConfigError(
                f"max_paths_per_item must be positive or None, "
                f"got {self.max_paths_per_item}")
        return self


class Extender:
    """Computes the cross-domain X-Sim map from the baseline graph."""

    def __init__(self, config: ExtenderConfig | None = None) -> None:
        self.config = (config or ExtenderConfig()).validated()

    def extend(self, graph: ItemGraph, partition: LayerPartition,
               table: RatingTable, source_domain: str,
               significance: SignificanceCache | None = None) -> XSimMap:
        """Aggregate meta-path similarities for every source item.

        Args:
            graph: baseline graph ``G_ac`` from the Baseliner.
            partition: its six-layer partition.
            table: the aggregated rating table (significance lookups).
            source_domain: which of the partition's two domains is the
                mapping's source (the Generator maps source → target).
            significance: a prewarmed cache — the pipeline hands in one
                bulk-loaded from the sharded Baseliner sweep so dense
                graphs skip per-pair Definition-2 lookups. Defaults to a
                fresh lazy cache over *table*.

        Returns:
            The X-Sim map. Source items with no meta-path into the target
            domain are simply absent.
        """
        if significance is None:
            significance = SignificanceCache(table)
        adjacency = build_pruned_adjacency(graph, partition, self.config.k)
        xsim_map: XSimMap = {}
        source_items = sorted(
            item for item in graph.items
            if partition.domain_of(item) == source_domain)
        for item in source_items:
            # terminal target item → (Σ c_p, Σ c_p · s_p)
            accumulator: dict[str, tuple[float, float]] = {}
            paths = enumerate_meta_paths(
                item, partition, adjacency,
                significance_of=significance.significance,
                max_paths=self.config.max_paths_per_item)
            for path in paths:
                if self.config.weight_by_significance:
                    try:
                        similarity = path_similarity(path.edges)
                    except SimilarityError:
                        continue  # zero-significance path: no evidence
                else:
                    similarity = (sum(sim for sim, _ in path.edges) / len(path.edges))
                if self.config.weight_by_certainty:
                    hops = zip(path.items, path.items[1:])
                    certainty = path_certainty(
                        [significance.normalized(a, b) for a, b in hops])
                    if certainty <= 0.0:
                        continue
                else:
                    certainty = 1.0
                total_c, weighted = accumulator.get(path.terminal, (0.0, 0.0))
                accumulator[path.terminal] = (
                    total_c + certainty, weighted + certainty * similarity)
            values = {
                target: weighted / total_c
                for target, (total_c, weighted) in accumulator.items()
                if total_c > 0.0}
            if values:
                xsim_map[item] = values
        return xsim_map


def count_heterogeneous_pairs(xsim_map: Mapping[str, Mapping[str, float]]) -> int:
    """Number of (source, target) pairs with a quantified X-Sim — the
    "meta-path-based" bar of Figure 1(b)."""
    return sum(len(targets) for targets in xsim_map.values())
