"""The Baseliner component (§5.1, Figure 4).

First stage of the X-Map pipeline: treat source and target as a single
aggregated domain, compute the adjusted-cosine similarity between every
co-rated item pair, and classify each resulting edge as *homogeneous*
(both endpoints in the same domain) or *heterogeneous* (endpoints in
different domains — these exist exactly where a straddler rated on both
sides). The heterogeneous edge count is also the "standard" bar of
Figure 1(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.data.dataset import CrossDomainDataset
from repro.data.ratings import RatingTable
from repro.engine.sharded_sweep import (
    IncrementalSweep,
    IncrementalUpdateStats,
    resolve_n_shards,
    sharded_adjacency,
)
from repro.errors import ConfigError
from repro.similarity.graph import ItemGraph, build_similarity_graph
from repro.similarity.significance import SignificanceTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.ratings import Rating


@dataclass(frozen=True)
class BaselineSimilarities:
    """Output of the Baseliner.

    Attributes:
        graph: the baseline similarity graph ``G_ac`` over both domains.
        n_homogeneous: number of same-domain edges.
        n_heterogeneous: number of cross-domain edges (the user-overlap
            similarities of §5.1).
        significance: bulk Definition-2 counts for every co-rated pair,
            folded into the sweep when it ran sharded (the Extender's
            :class:`~repro.core.xsim.SignificanceCache` ingests them and
            skips per-pair lookups). ``None`` on the unsharded path.
        state: the retained
            :class:`~repro.engine.sharded_sweep.IncrementalSweep` when
            the Baseliner ran with ``keep_state=True`` — what
            :meth:`Baseliner.update` appends rating batches to without
            re-running the offline job. ``None`` otherwise.
    """

    graph: ItemGraph
    n_homogeneous: int
    n_heterogeneous: int
    significance: SignificanceTable | None = None
    state: IncrementalSweep | None = None

    @property
    def n_edges(self) -> int:
        """Total number of baseline similarity edges."""
        return self.n_homogeneous + self.n_heterogeneous

    def serving_registry(self, cf_k: int = 50, positive_only: bool = True):
        """A hot-swap :class:`~repro.serving.registry.ModelRegistry`
        over the retained sweep state (requires ``keep_state=True``).

        The registry's :meth:`~repro.serving.registry.ModelRegistry.update`
        appends rating batches through the same
        :class:`~repro.engine.sharded_sweep.IncrementalSweep` splice
        :meth:`Baseliner.update` uses and publishes each result as the
        next immutable version, so the merged-domain similarity model
        serves traffic while staying online-updatable. Note the shared
        writer: driving the sweep through the registry does not patch
        this object's edge census (serving does not read it) — keep
        using :meth:`Baseliner.update` when the census matters.
        """
        from repro.serving.registry import ModelRegistry

        if self.state is None:
            raise ConfigError(
                "serving_registry needs a baseline computed with "
                "keep_state=True (it publishes through the retained "
                "IncrementalSweep)")
        return ModelRegistry(sweep=self.state, cf_k=cf_k, positive_only=positive_only)


class Baseliner:
    """Computes the baseline similarities of §5.1.

    Args:
        min_common_users: minimum co-raters for an edge (1, as in the
            paper — any common user creates a connection).
        min_abs_similarity: optional magnitude floor for edges; 0 keeps
            every nonzero similarity.
        n_shards: partition the Eq-6 sweep into this many user shards on
            the dataflow engine (§5.1's shard-then-merge job); ``None``
            reads ``REPRO_SHARDS``, 1 is the single-process store path.
            The sharded sweep additionally bulk-computes the
            Definition-2 significance counts in the same pass.
        shard_processes: worker pool size for the sharded sweep;
            ``None`` reads ``REPRO_SHARD_PROCS``, 0/1 runs the shards on
            the serial executor (same output bit for bit).
        n_edge_partitions: item-partition count for the merge + assembly
            back half of the sharded sweep; ``None`` reads
            ``REPRO_EDGE_PARTITIONS`` and defaults to the shard count.
            Bit-identical output at any value.
        keep_state: retain the merged accumulation alongside the graph
            (:class:`~repro.engine.sharded_sweep.IncrementalSweep`), so
            :meth:`update` can append rating batches incrementally. The
            computed baseline is identical either way (bit for bit —
            assembly content is partition-independent); note the
            stateful build assembles in a single driver pass, so
            *n_edge_partitions* does not apply to it (the retained
            accumulation is partition-agnostic). The cost of the state
            is keeping the accumulation arrays alive.
    """

    def __init__(self, min_common_users: int = 1,
                 min_abs_similarity: float = 0.0,
                 n_shards: int | None = None,
                 shard_processes: int | None = None,
                 n_edge_partitions: int | None = None,
                 keep_state: bool = False) -> None:
        self.min_common_users = min_common_users
        self.min_abs_similarity = min_abs_similarity
        self.n_shards = n_shards
        self.shard_processes = shard_processes
        self.n_edge_partitions = n_edge_partitions
        self.keep_state = keep_state

    def compute(self, data: CrossDomainDataset,
                merged: RatingTable | None = None) -> BaselineSimilarities:
        """Build ``G_ac`` for *data* and split the edge census by kind.

        Args:
            data: the two-domain input.
            merged: the aggregated (source ∪ target) table, if the caller
                already built it. The pipeline passes the one table it
                derives per run so the Baseliner shares its interned
                :class:`~repro.data.matrix.MatrixRatingStore` with the
                Extender's significance sweeps instead of re-deriving
                every profile. Defaults to ``data.merged()``.
        """
        if merged is None:
            merged = data.merged()
        significance = None
        state = None
        if self.keep_state:
            state = IncrementalSweep(
                merged, n_shards=self.n_shards,
                processes=self.shard_processes,
                min_common_users=self.min_common_users,
                min_abs_similarity=self.min_abs_similarity,
                with_significance=resolve_n_shards(self.n_shards) > 1)
            graph = state.graph
            if state.significance is not None:
                significance = SignificanceTable(
                    raw=state.significance, common=state.common_raters)
        elif resolve_n_shards(self.n_shards) > 1:
            result = sharded_adjacency(
                merged, n_shards=self.n_shards,
                processes=self.shard_processes,
                min_common_users=self.min_common_users,
                min_abs_similarity=self.min_abs_similarity,
                with_significance=True,
                n_edge_partitions=self.n_edge_partitions,
                with_index=True)
            graph = ItemGraph.from_adjacency(result.adjacency, index=result.index)
            significance = SignificanceTable(
                raw=result.significance, common=result.common_raters)
        else:
            graph = build_similarity_graph(
                merged,
                min_common_users=self.min_common_users,
                min_abs_similarity=self.min_abs_similarity,
                n_shards=1,
                n_edge_partitions=self.n_edge_partitions)
        domain_of = data.domain_map()
        n_homogeneous = 0
        n_heterogeneous = 0
        for item_i, item_j, _ in graph.edges():
            if domain_of[item_i] == domain_of[item_j]:
                n_homogeneous += 1
            else:
                n_heterogeneous += 1
        return BaselineSimilarities(
            graph=graph,
            n_homogeneous=n_homogeneous,
            n_heterogeneous=n_heterogeneous,
            significance=significance,
            state=state)

    def update(self, baseline: BaselineSimilarities,
               batch: "Iterable[Rating]",
               domain_of: Mapping[str, str],
               ) -> tuple[BaselineSimilarities, IncrementalUpdateStats]:
        """Append a rating *batch* to a ``keep_state=True`` baseline.

        The retained :class:`~repro.engine.sharded_sweep.IncrementalSweep`
        patches the store, accumulation, graph and serving index in
        place of a rebuild; the edge census is adjusted from the exact
        added/removed edge sets the update reports. *batch* must be
        **real** merged-domain ratings (a new edge can appear between
        two pre-existing items, so pass a domain map covering the whole
        updated item universe — the updated dataset's
        :meth:`~repro.data.dataset.CrossDomainDataset.domain_map` —
        not just the batch's new items). Note the in-place semantics:
        the sweep state mutates before the census is patched, so do not
        retry a failed update with the same batch.

        Returns the refreshed :class:`BaselineSimilarities` (the graph
        object is the same, mutated in place) and the update's stats.
        """
        state = baseline.state
        if state is None:
            raise ConfigError(
                "Baseliner.update needs a baseline computed with "
                "keep_state=True (it carries the retained accumulation)")
        stats = state.update(batch)
        n_homogeneous = baseline.n_homogeneous
        n_heterogeneous = baseline.n_heterogeneous
        for item_i, item_j in stats.edges_added:
            if domain_of[item_i] == domain_of[item_j]:
                n_homogeneous += 1
            else:
                n_heterogeneous += 1
        for item_i, item_j in stats.edges_removed:
            if domain_of[item_i] == domain_of[item_j]:
                n_homogeneous -= 1
            else:
                n_heterogeneous -= 1
        significance = baseline.significance
        if state.significance is not None:
            significance = SignificanceTable(
                raw=state.significance, common=state.common_raters)
        return BaselineSimilarities(
            graph=state.graph,
            n_homogeneous=n_homogeneous,
            n_heterogeneous=n_heterogeneous,
            significance=significance,
            state=state), stats
