"""The Baseliner component (§5.1, Figure 4).

First stage of the X-Map pipeline: treat source and target as a single
aggregated domain, compute the adjusted-cosine similarity between every
co-rated item pair, and classify each resulting edge as *homogeneous*
(both endpoints in the same domain) or *heterogeneous* (endpoints in
different domains — these exist exactly where a straddler rated on both
sides). The heterogeneous edge count is also the "standard" bar of
Figure 1(b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import CrossDomainDataset
from repro.data.ratings import RatingTable
from repro.engine.sharded_sweep import resolve_n_shards, sharded_adjacency
from repro.similarity.graph import ItemGraph, build_similarity_graph
from repro.similarity.significance import SignificanceTable


@dataclass(frozen=True)
class BaselineSimilarities:
    """Output of the Baseliner.

    Attributes:
        graph: the baseline similarity graph ``G_ac`` over both domains.
        n_homogeneous: number of same-domain edges.
        n_heterogeneous: number of cross-domain edges (the user-overlap
            similarities of §5.1).
        significance: bulk Definition-2 counts for every co-rated pair,
            folded into the sweep when it ran sharded (the Extender's
            :class:`~repro.core.xsim.SignificanceCache` ingests them and
            skips per-pair lookups). ``None`` on the unsharded path.
    """

    graph: ItemGraph
    n_homogeneous: int
    n_heterogeneous: int
    significance: SignificanceTable | None = None

    @property
    def n_edges(self) -> int:
        """Total number of baseline similarity edges."""
        return self.n_homogeneous + self.n_heterogeneous


class Baseliner:
    """Computes the baseline similarities of §5.1.

    Args:
        min_common_users: minimum co-raters for an edge (1, as in the
            paper — any common user creates a connection).
        min_abs_similarity: optional magnitude floor for edges; 0 keeps
            every nonzero similarity.
        n_shards: partition the Eq-6 sweep into this many user shards on
            the dataflow engine (§5.1's shard-then-merge job); ``None``
            reads ``REPRO_SHARDS``, 1 is the single-process store path.
            The sharded sweep additionally bulk-computes the
            Definition-2 significance counts in the same pass.
        shard_processes: worker pool size for the sharded sweep;
            ``None`` reads ``REPRO_SHARD_PROCS``, 0/1 runs the shards on
            the serial executor (same output bit for bit).
        n_edge_partitions: item-partition count for the merge + assembly
            back half of the sharded sweep; ``None`` reads
            ``REPRO_EDGE_PARTITIONS`` and defaults to the shard count.
            Bit-identical output at any value.
    """

    def __init__(self, min_common_users: int = 1,
                 min_abs_similarity: float = 0.0,
                 n_shards: int | None = None,
                 shard_processes: int | None = None,
                 n_edge_partitions: int | None = None) -> None:
        self.min_common_users = min_common_users
        self.min_abs_similarity = min_abs_similarity
        self.n_shards = n_shards
        self.shard_processes = shard_processes
        self.n_edge_partitions = n_edge_partitions

    def compute(self, data: CrossDomainDataset,
                merged: RatingTable | None = None) -> BaselineSimilarities:
        """Build ``G_ac`` for *data* and split the edge census by kind.

        Args:
            data: the two-domain input.
            merged: the aggregated (source ∪ target) table, if the caller
                already built it. The pipeline passes the one table it
                derives per run so the Baseliner shares its interned
                :class:`~repro.data.matrix.MatrixRatingStore` with the
                Extender's significance sweeps instead of re-deriving
                every profile. Defaults to ``data.merged()``.
        """
        if merged is None:
            merged = data.merged()
        significance = None
        if resolve_n_shards(self.n_shards) > 1:
            result = sharded_adjacency(
                merged, n_shards=self.n_shards,
                processes=self.shard_processes,
                min_common_users=self.min_common_users,
                min_abs_similarity=self.min_abs_similarity,
                with_significance=True,
                n_edge_partitions=self.n_edge_partitions,
                with_index=True)
            graph = ItemGraph.from_adjacency(result.adjacency,
                                             index=result.index)
            significance = SignificanceTable(
                raw=result.significance, common=result.common_raters)
        else:
            graph = build_similarity_graph(
                merged,
                min_common_users=self.min_common_users,
                min_abs_similarity=self.min_abs_similarity,
                n_shards=1,
                n_edge_partitions=self.n_edge_partitions)
        domain_of = data.domain_map()
        n_homogeneous = 0
        n_heterogeneous = 0
        for item_i, item_j, _ in graph.edges():
            if domain_of[item_i] == domain_of[item_j]:
                n_homogeneous += 1
            else:
                n_heterogeneous += 1
        return BaselineSimilarities(
            graph=graph,
            n_homogeneous=n_homogeneous,
            n_heterogeneous=n_heterogeneous,
            significance=significance)
