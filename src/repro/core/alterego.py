"""AlterEgo generation — the Generator component (§4.3, §5.3, Figure 3).

An **AlterEgo** is an artificial profile for a user in a domain where she
has little or no activity: every item she rated in the source domain is
replaced by target-domain items, carrying the rating value and timestep
along. Following the paper's footnote 10 ("we could also choose a set of
replacements for any item, using X-Sim, in the target domain to have
more diversity"), each source item maps to its top ``n_replacements``
X-Sim candidates; the diversity is not cosmetic — richer AlterEgos give
the downstream CF far more anchor points, and the accuracy experiments
(Figure 8) measurably depend on it.

Replacement policies:

* **non-private (NX-Map)** — the top-R target items by X-Sim,
  deterministically; mapped ratings are merged weighted by X-Sim (a
  stronger link transfers the rating with more force);
* **private (X-Map)** — R draws without replacement from the PRS
  exponential mechanism (Algorithm 3), each spending ε/R so the whole
  selection stays ε-DP per Theorem 1 + sequential composition; merged
  unweighted, because the exact X-Sim values must not leak into the
  published profile.

When several source items map to the same target item the mapped ratings
merge (weighted mean, latest timestep). If the user already has real
target-domain ratings they take precedence over mapped ones (footnote 6:
the mapped profile is *appended to* the original profile).
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping

import numpy as np

from repro.core.extender import XSimMap
from repro.data.ratings import Rating, RatingTable
from repro.errors import ConfigError
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.mechanisms import exponential_sample_without_replacement
from repro.privacy.sensitivity import XSIM_GLOBAL_SENSITIVITY
from repro.similarity.knn import top_k

#: Default replacement-set size (footnote 10 diversity).
DEFAULT_N_REPLACEMENTS = 12


class ReplacementPolicy(enum.Enum):
    """How the Generator picks each item's replacement set."""

    NON_PRIVATE = "non-private"
    PRIVATE = "private"


class AlterEgoGenerator:
    """Maps source items to target replacement sets and builds AlterEgos.

    Args:
        xsim_map: the Extender's output (source item → target candidates
            with X-Sim values).
        policy: deterministic top-R (NX-Map) or PRS draws (X-Map).
        epsilon: the PRS privacy parameter; required iff private. The
            budget covers the whole replacement set (ε/R per draw).
        seed: generator seed for the private draws.
        accountant: optional ledger; the private policy records its ε
            there once (the per-item draws protect the same profiles in
            parallel, so one entry documents the guarantee).
        n_replacements: replacement-set size R (1 recovers the basic
            single-replacement scheme of §4.3).
    """

    def __init__(self, xsim_map: XSimMap,
                 policy: ReplacementPolicy = ReplacementPolicy.NON_PRIVATE,
                 epsilon: float | None = None, seed: int = 0,
                 accountant: PrivacyAccountant | None = None,
                 n_replacements: int = DEFAULT_N_REPLACEMENTS) -> None:
        if policy is ReplacementPolicy.PRIVATE:
            if epsilon is None or epsilon <= 0:
                raise ConfigError(f"private policy requires epsilon > 0, got {epsilon}")
        elif epsilon is not None:
            raise ConfigError("epsilon is only meaningful for the private policy")
        if n_replacements <= 0:
            raise ConfigError(f"n_replacements must be positive, got {n_replacements}")
        self.xsim_map = xsim_map
        self.policy = policy
        self.epsilon = epsilon
        self.n_replacements = n_replacements
        self._rng = np.random.default_rng(seed)
        self._replacements: dict[str, list[tuple[str, float]]] = {}
        if policy is ReplacementPolicy.PRIVATE and accountant is not None:
            accountant.spend("PRS (AlterEgo generation)", float(epsilon))

    def replacements_for(self, source_item: str) -> list[tuple[str, float]]:
        """The (replacement, merge weight) set for one source item.

        Non-private: top-R candidates by X-Sim, restricted to positive
        values (a negatively-similar item would transfer the rating to
        something the user probably feels the opposite about), weighted
        by their X-Sim. Private: R unweighted PRS draws over the full
        candidate set. Memoised — the Generator's "item mapping" step
        assigns each item one replacement set (§5.3).
        """
        cached = self._replacements.get(source_item)
        if cached is not None:
            return cached
        candidates = self.xsim_map.get(source_item)
        if not candidates:
            return []
        if self.policy is ReplacementPolicy.NON_PRIVATE:
            chosen = top_k(candidates, self.n_replacements, minimum=1e-12)
        else:
            epsilon_per_draw = float(self.epsilon) / self.n_replacements
            drawn = exponential_sample_without_replacement(
                candidates, rounds=self.n_replacements,
                epsilon_per_round=epsilon_per_draw,
                sensitivity=XSIM_GLOBAL_SENSITIVITY, rng=self._rng)
            chosen = [(item, 1.0) for item in drawn]
        self._replacements[source_item] = chosen
        return chosen

    def replacement_for(self, source_item: str) -> str | None:
        """The single primary replacement (head of the set), or ``None``
        when the source item has no usable X-Sim candidate."""
        chosen = self.replacements_for(source_item)
        return chosen[0][0] if chosen else None

    def item_mapping(self, items: Iterable[str] | None = None) -> dict[str, str]:
        """Materialise the source → primary-replacement mapping.

        Args:
            items: restrict to these source items (default: every item in
                the X-Sim map).
        """
        targets = sorted(items) if items is not None else sorted(self.xsim_map)
        mapping = {}
        for item in targets:
            replacement = self.replacement_for(item)
            if replacement is not None:
                mapping[item] = replacement
        return mapping

    def alterego_profile(self, user: str,
                         source_profile: Mapping[str, Rating]) -> list[Rating]:
        """Build one user's AlterEgo ratings from her source profile.

        Each source rating fans out to its replacement set; collisions
        merge by weighted mean with the latest timestep, deterministically
        over sorted items.
        """
        builder = self.incremental(user)
        for source_item in sorted(source_profile):
            builder.add(source_profile[source_item])
        return builder.profile()

    def incremental(self, user: str) -> "IncrementalAlterEgo":
        """An incremental builder for *user* (§4.3: "AlterEgo profiles
        could be incrementally updated to avoid re-computations").

        Fold new source ratings in one at a time as they arrive; the
        merge state is O(profile) and each update touches only the new
        rating's replacement set. Folding a whole profile reproduces
        :meth:`alterego_profile` exactly (order-independent)."""
        return IncrementalAlterEgo(self, user)

    def _fold(self, state: dict[str, tuple[float, float, int]], rating: Rating) -> None:
        """Fold one source rating into a merge-state dict
        (target item → (Σ w·value, Σ w, max timestep))."""
        for replacement, weight in self.replacements_for(rating.item):
            if weight <= 0.0:
                continue
            total, weight_sum, timestep = state.get(replacement, (0.0, 0.0, 0))
            state[replacement] = (
                total + weight * rating.value,
                weight_sum + weight,
                max(timestep, rating.timestep))

    def alterego_table(self, users: Iterable[str], source_table: RatingTable,
                       target_table: RatingTable) -> RatingTable:
        """The augmented target table: real target ratings plus the
        AlterEgos of *users* (real ratings win on conflicts, footnote 6).

        Mapped values are clipped into the target scale (no re-rounding —
        the weighted mean is a legitimate estimate).
        """
        additions: list[Rating] = []
        for user in sorted(set(users)):
            existing = target_table.user_items(user)
            for rating in self.alterego_profile(user, source_table.user_profile(user)):
                if rating.item in existing:
                    continue
                clipped = target_table.clip(rating.value)
                if clipped != rating.value:
                    rating = Rating(rating.user, rating.item, clipped, rating.timestep)
                additions.append(rating)
        return target_table.with_ratings(additions)


class IncrementalAlterEgo:
    """Streaming AlterEgo builder (one user).

    Keeps the weighted-merge state so that a newly arrived source rating
    updates the AlterEgo in O(R) instead of re-walking the whole source
    profile — the paper's §4.3 incremental-update remark made concrete.
    The produced profile is identical to the batch
    :meth:`AlterEgoGenerator.alterego_profile`, whatever the arrival
    order.
    """

    def __init__(self, generator: AlterEgoGenerator, user: str) -> None:
        self._generator = generator
        self.user = user
        self._state: dict[str, tuple[float, float, int]] = {}
        self._seen: set[str] = set()

    def add(self, rating: Rating) -> None:
        """Fold one new source rating into the AlterEgo.

        Re-adding the same source item raises
        :class:`~repro.errors.ConfigError` — a user rates an item once,
        and silently double-counting a replacement would corrupt the
        weighted means.
        """
        if rating.item in self._seen:
            raise ConfigError(
                f"source item {rating.item!r} already folded into "
                f"{self.user!r}'s AlterEgo")
        self._seen.add(rating.item)
        self._generator._fold(self._state, rating)

    def profile(self) -> list[Rating]:
        """The current AlterEgo ratings (sorted by target item)."""
        return [
            Rating(self.user, item, total / weight_sum, timestep)
            for item, (total, weight_sum, timestep)
            in sorted(self._state.items())
            if weight_sum > 0.0]

    def current(self, item: str) -> Rating | None:
        """The current mapped rating for one target *item* (``None``
        when nothing maps there yet) — what the online updater reads
        after a fold instead of rebuilding the whole profile."""
        state = self._state.get(item)
        if state is None:
            return None
        total, weight_sum, timestep = state
        if weight_sum <= 0.0:
            return None
        return Rating(self.user, item, total / weight_sum, timestep)

    def __len__(self) -> int:
        return len(self._state)


class OnlineAlterEgoUpdater:
    """Streams newly arrived source ratings into the augmented target
    table — the serving-side half of §4.3's incremental-update remark.

    The offline pipeline builds the augmented table once
    (:meth:`AlterEgoGenerator.alterego_table`). When a user then rates
    a new source item online, this updater folds the rating into her
    :class:`IncrementalAlterEgo` (seeded lazily from her source profile
    as of construction), tracks which mapped target ratings changed,
    and applies them as one small batch:
    :meth:`flush` derives the augmented table through
    :meth:`~repro.data.ratings.RatingTable.with_ratings`, whose delta
    handoff appends to the table's memoized
    :class:`~repro.data.matrix.MatrixRatingStore` instead of rebuilding
    it. The flushed batch refreshes the *CF serving table only* —
    mapped AlterEgo ratings never enter the Baseliner's graph (``G_ac``
    is computed over real source ∪ target data); to keep an incremental
    baseline in step, hand the **observed source ratings** to
    :meth:`~repro.core.baseliner.Baseliner.update` instead.

    Invariants (tested in ``tests/test_incremental.py``): after any
    observe/flush sequence, the augmented table equals the batch
    :meth:`~AlterEgoGenerator.alterego_table` run over the extended
    source profiles — real target-domain ratings keep precedence
    (footnote 6), mapped values are clipped into the target scale, and
    re-observing a source item a user already rated raises.

    Args:
        generator: the fitted Generator (its memoised replacement sets
            make online folds O(R)).
        source_table: the users' source-domain profiles as of fit time.
        target_table: the *real* target-domain table (precedence set).
        augmented: the current augmented table (defaults to
            *target_table*; pass the pipeline's ``augmented_target`` to
            continue from a fitted pipeline).
    """

    def __init__(self, generator: AlterEgoGenerator,
                 source_table: RatingTable,
                 target_table: RatingTable,
                 augmented: RatingTable | None = None) -> None:
        self.generator = generator
        self._source = source_table
        self._target = target_table
        self._augmented = augmented if augmented is not None else target_table
        self._builders: dict[str, IncrementalAlterEgo] = {}
        self._dirty: dict[str, set[str]] = {}

    @property
    def augmented(self) -> RatingTable:
        """The augmented target table as of the last :meth:`flush`."""
        return self._augmented

    def _builder(self, user: str) -> IncrementalAlterEgo:
        builder = self._builders.get(user)
        if builder is None:
            builder = self.generator.incremental(user)
            profile = self._source.user_profile(user)
            for item in sorted(profile):
                builder.add(profile[item])
            self._builders[user] = builder
        return builder

    def observe(self, rating: Rating) -> list[str]:
        """Fold one newly arrived source rating into its user's
        AlterEgo; returns the target items whose mapped value moved
        (empty when the source item has no usable replacement)."""
        self._builder(rating.user).add(rating)
        changed = [item for item, weight
                   in self.generator.replacements_for(rating.item)
                   if weight > 0.0]
        if changed:
            self._dirty.setdefault(rating.user, set()).update(changed)
        return changed

    def pending(self) -> int:
        """Dirty (user, target item) entries awaiting a flush."""
        return sum(len(items) for items in self._dirty.values())

    def flush(self) -> tuple[RatingTable, list[Rating]]:
        """Apply the pending AlterEgo changes as one rating batch.

        Returns ``(augmented, batch)``: the new augmented table (derived
        with the store delta handoff) and the exact mapped ratings
        appended / overridden — what a CF recommender over the
        augmented table should be refreshed with. These are synthetic
        target-domain ratings: do **not** feed them to
        :meth:`~repro.core.baseliner.Baseliner.update` (the baseline
        graph is computed over real data; it takes the observed source
        ratings instead).
        """
        batch: list[Rating] = []
        for user in sorted(self._dirty):
            real_items = self._target.user_items(user)
            builder = self._builders[user]
            for item in sorted(self._dirty[user]):
                if item in real_items:
                    continue  # footnote 6: real ratings win
                mapped = builder.current(item)
                if mapped is None:
                    continue
                value = self._target.clip(mapped.value)
                batch.append(Rating(user, item, value, mapped.timestep))
        self._dirty.clear()
        if batch:
            self._augmented = self._augmented.with_ratings(batch)
        return self._augmented, batch
