"""Meta-path enumeration over the pruned layer chain (Definition 3).

A meta-path takes *at most one item from each of the six layers* and only
crosses between adjacent layers:

    NN_S — NB_S — BB_S — BB_T — NB_T — NN_T

so a path starts at the query item's layer on the source side, climbs to
the source BB layer, crosses the single inter-domain hop, and descends on
the target side; every target-side vertex it reaches closes one meta-path.
The adjacency between consecutive layers is the *pruned* one — the top-k
baseline-similarity edges per item per neighboring layer (§3.2, §5.2) —
which is what keeps enumeration tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.core.layers import LAYER_CHAIN, Layer, LayerPartition
from repro.errors import GraphError
from repro.similarity.graph import ItemGraph

#: adjacency key: (domain, layer) of the *neighboring* layer an edge
#: list points into.
LayerKey = tuple[str, Layer]

#: item → (neighboring layer key → [(neighbor, baseline sim), …])
PrunedAdjacency = Mapping[str, Mapping[LayerKey, list[tuple[str, float]]]]


@dataclass(frozen=True)
class MetaPath:
    """One enumerated meta-path with its constituent hops.

    Attributes:
        items: the vertex sequence, source item first.
        edges: per-hop (baseline similarity, significance) pairs, aligned
            with consecutive item pairs.
    """

    items: tuple[str, ...]
    edges: tuple[tuple[float, int], ...]

    @property
    def source(self) -> str:
        """First vertex (the source-domain item)."""
        return self.items[0]

    @property
    def terminal(self) -> str:
        """Last vertex (a target-domain item)."""
        return self.items[-1]

    def __len__(self) -> int:
        return len(self.items)


def layer_sequence(start_layer: Layer, source_domain: str,
                   target_domain: str) -> list[LayerKey]:
    """The layer keys a path visits after leaving *start_layer*.

    E.g. starting at NB_S: [BB_S, BB_T, NB_T, NN_T]. Starting at BB_S:
    [BB_T, NB_T, NN_T].
    """
    climb_from = LAYER_CHAIN.index(start_layer)
    climbing = [(source_domain, layer) for layer in LAYER_CHAIN[climb_from + 1:]]
    descending = [(target_domain, layer) for layer in reversed(LAYER_CHAIN)]
    return climbing + descending


def build_pruned_adjacency(graph: ItemGraph, partition: LayerPartition,
                           k: int) -> dict[str, dict[LayerKey, list[tuple[str, float]]]]:
    """Top-k edges per item into each *adjacent* layer (§3.2).

    Adjacent layer pairs: (NN, NB) and (NB, BB) within a domain, plus
    (BB, BB) across domains. Edges inside one layer are never kept —
    Definition 3 admits at most one item per layer.
    """
    if k <= 0:
        raise GraphError(f"pruning k must be positive, got {k}")
    adjacency: dict[str, dict[LayerKey, list[tuple[str, float]]]] = {}
    for item in graph.items:
        domain = partition.domain_of(item)
        layer = partition.layer_of(item)
        other = partition.other_domain(domain)
        if layer is Layer.NN:
            neighbor_keys = [(domain, Layer.NB)]
        elif layer is Layer.NB:
            neighbor_keys = [(domain, Layer.NN), (domain, Layer.BB)]
        else:  # BB
            neighbor_keys = [(domain, Layer.NB), (other, Layer.BB)]
        per_layer: dict[LayerKey, list[tuple[str, float]]] = {}
        for key in neighbor_keys:
            members = partition.members(*key)
            ranked = graph.top_neighbors(item, k, among=members)
            if ranked:
                per_layer[key] = ranked
        adjacency[item] = per_layer
    return adjacency


def enumerate_meta_paths(
        item: str,
        partition: LayerPartition,
        adjacency: PrunedAdjacency,
        significance_of: Callable[[str, str], int],
        max_paths: int | None = None,
) -> Iterator[MetaPath]:
    """Yield every meta-path from *item* into the other domain.

    A path is emitted each time the walk reaches a target-side vertex
    (so one DFS yields paths of every terminal layer). *significance_of*
    supplies ``S`` for each hop — normally a
    :class:`~repro.core.xsim.SignificanceCache` method.

    Args:
        max_paths: stop after yielding this many paths (a safety valve
            for dense graphs; ``None`` = unbounded). Paths are explored
            best-neighbor-first, so truncation keeps the strongest ones.
    """
    source_domain = partition.domain_of(item)
    target_domain = partition.other_domain(source_domain)
    sequence = layer_sequence(partition.layer_of(item), source_domain, target_domain)
    emitted = 0

    def walk(current: str, depth: int,
             items: tuple[str, ...],
             edges: tuple[tuple[float, int], ...]) -> Iterator[MetaPath]:
        nonlocal emitted
        if depth == len(sequence):
            return
        key = sequence[depth]
        for neighbor, sim in adjacency.get(current, {}).get(key, []):
            if max_paths is not None and emitted >= max_paths:
                return
            hop = (sim, significance_of(current, neighbor))
            new_items = items + (neighbor,)
            new_edges = edges + (hop,)
            if key[0] == target_domain:
                emitted += 1
                yield MetaPath(new_items, new_edges)
            yield from walk(neighbor, depth + 1, new_items, new_edges)

    yield from walk(item, 0, (item,), ())
