"""The X-Sim metric — Definitions 2–6 of the paper.

Given a meta-path ``p = i_1 ↔ i_2 ↔ … ↔ i_k`` whose edges carry baseline
similarities ``s_ac`` and significances ``S``:

* **path similarity** (s_p): the significance-weighted mean of the edge
  similarities — edges backed by many agreeing co-raters dominate;
* **path certainty** (c_p): the product of the *normalized* significances
  Ŝ ∈ [0, 1] — every extra hop multiplies by a factor ≤ 1, which is how
  path length is penalised without an explicit length term;
* **X-Sim(i, j)**: the certainty-weighted mean of the path similarities
  over all meta-paths between i and j.

A path whose total significance is zero carries no agreement evidence at
all; its s_p is undefined (0/0) and its certainty is 0, so such paths are
dropped rather than fabricated — this follows the formulas literally.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.data.ratings import RatingTable
from repro.errors import SimilarityError
from repro.similarity.significance import SignificanceTable


class SignificanceCache:
    """Memoised significance lookups over one rating table.

    Significance is evaluated once per graph edge but read once per
    *meta-path through* that edge, so caching is what keeps the extender
    at O(km) instead of O(km · path count). Misses go straight to the
    table's interned :class:`~repro.data.matrix.MatrixRatingStore`
    (one sorted-column merge over precomputed like/dislike flags) rather
    than re-intersecting ``Rating`` dicts pair by pair.

    A :class:`~repro.similarity.significance.SignificanceTable` from the
    sharded Baseliner sweep can be ingested up front (*preload*): every
    co-rated pair's raw and normalized significance is then served from
    the bulk counts and the per-pair store path only ever runs for
    degenerate queries (self-pairs, items with no co-raters). The
    preloaded values are exact integers and integer ratios, so lookups
    are bit-identical with and without the preload.
    """

    def __init__(self, table: RatingTable,
                 preload: SignificanceTable | None = None) -> None:
        self._store = table.matrix()
        self._raw: dict[tuple[str, str], int] = {}
        self._normalized: dict[tuple[str, str], float] = {}
        if preload is not None:
            self._ingest(preload)

    def _ingest(self, preload: SignificanceTable) -> None:
        """Bulk-load Definition-2 counts for every co-rated pair.

        Normalized significance is derived exactly as the store does it
        (``S / (|Y_i| + |Y_j| − |Y_i ∩ Y_j|)``), from the same integers,
        so the division yields the same float the lazy path would.
        """
        store = self._store
        item_index = store.item_index
        self._raw.update(preload.raw)
        normalized = self._normalized
        raw = preload.raw
        for (item_i, item_j), common in preload.common.items():
            union = (store.item_raters(item_index[item_i])
                     + store.item_raters(item_index[item_j]) - common)
            normalized[(item_i, item_j)] = raw[(item_i, item_j)] / union

    @staticmethod
    def _key(item_i: str, item_j: str) -> tuple[str, str]:
        return (item_i, item_j) if item_i <= item_j else (item_j, item_i)

    def significance(self, item_i: str, item_j: str) -> int:
        """Cached ``S_{i,j}`` (Definition 2)."""
        key = self._key(item_i, item_j)
        cached = self._raw.get(key)
        if cached is None:
            cached = self._store.significance(item_i, item_j)
            self._raw[key] = cached
        return cached

    def normalized(self, item_i: str, item_j: str) -> float:
        """Cached ``Ŝ_{i,j}`` (Definition 4)."""
        key = self._key(item_i, item_j)
        cached = self._normalized.get(key)
        if cached is None:
            cached = self._store.normalized_significance(item_i, item_j)
            self._normalized[key] = cached
        return cached


def path_similarity(edges: Sequence[tuple[float, int]]) -> float:
    """``s_p`` over (edge similarity, edge significance) hops.

    ``s_p = Σ S_t·s_t / Σ S_t``. Raises
    :class:`~repro.errors.SimilarityError` when the total significance is
    zero (callers drop such paths — see module docstring).
    """
    if not edges:
        raise SimilarityError("a meta-path needs at least one edge")
    total_significance = sum(sig for _, sig in edges)
    if total_significance == 0:
        raise SimilarityError("path similarity undefined: total significance is zero")
    weighted = sum(sim * sig for sim, sig in edges)
    return weighted / total_significance


def path_certainty(normalized_significances: Sequence[float]) -> float:
    """``c_p = Π Ŝ_t`` (Definition 5).

    Each factor lies in [0, 1], so longer paths can only lose certainty —
    the paper's implicit path-length penalty.
    """
    if not normalized_significances:
        raise SimilarityError("a meta-path needs at least one edge")
    certainty = 1.0
    for value in normalized_significances:
        certainty *= value
    return certainty


def aggregate_xsim(paths: Iterable[tuple[float, float]]) -> float | None:
    """``X-Sim = Σ c_p·s_p / Σ c_p`` over (s_p, c_p) pairs (Definition 6).

    Returns ``None`` when no path carries positive certainty — the pair
    then simply has no X-Sim value, mirroring the paper's "set of items
    with *some quantified* X-Sim values".
    """
    pairs = list(paths)
    max_certainty = max((c for _, c in pairs), default=0.0)
    if max_certainty <= 0.0:
        return None
    # Normalising by the largest certainty leaves the weighted mean
    # unchanged but keeps the weights in [0, 1]: with raw subnormal
    # certainties (long paths multiply many Ŝ ≤ 1 factors) the products
    # c_p·s_p can underflow to 0 while Σ c_p stays positive, collapsing
    # the mean to 0 instead of the convex combination it should be.
    total_certainty = 0.0
    weighted = 0.0
    for similarity, certainty in pairs:
        weight = certainty / max_certainty
        total_certainty += weight
        weighted += weight * similarity
    return weighted / total_certainty
