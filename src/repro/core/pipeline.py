"""The NX-Map / X-Map recommender facades (§4–§5, Figure 4).

These classes wire the four pipeline components together:

    Baseliner → Extender → Generator → Recommender

``fit(data)`` runs the offline phases (the paper runs them periodically,
§5.4); afterwards the object satisfies the
:class:`~repro.cf.predictor.Recommender` protocol over the *target*
domain — predictions and Top-N for any user with a source-domain profile,
whether or not she ever rated a target item.

Variants (matching the paper's naming):

* ``NXMapRecommender(mode="item")`` — NX-Map-ib (with optional Eq 7 α),
* ``NXMapRecommender(mode="user")`` — NX-Map-ub,
* ``XMapRecommender(mode="item")``  — X-Map-ib (PRS + PNSA + PNCF),
* ``XMapRecommender(mode="user")``  — X-Map-ub.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.cf.item_knn import ItemKNNRecommender
from repro.cf.predictor import Recommender
from repro.cf.temporal import TemporalItemKNNRecommender
from repro.cf.user_knn import UserKNNRecommender
from repro.core.alterego import AlterEgoGenerator, ReplacementPolicy
from repro.core.baseliner import Baseliner, BaselineSimilarities
from repro.core.extender import Extender, ExtenderConfig, XSimMap
from repro.core.layers import LayerPartition
from repro.core.xsim import SignificanceCache
from repro.data.dataset import CrossDomainDataset
from repro.data.ratings import RatingTable
from repro.errors import ConfigError, ReproError
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.pncf import (
    PrivateItemKNNRecommender,
    PrivateUserKNNRecommender,
)

_MODES = ("item", "user", "mf")


@dataclass(frozen=True)
class XMapConfig:
    """All tunables of the pipeline, with the paper's defaults.

    Attributes:
        mode: ``"item"`` (Algorithm 2 in the target domain), ``"user"``
            (Algorithm 1), or ``"mf"`` — matrix factorisation over the
            AlterEgo-augmented target table, the paper's §4.4 remark
            that "any homogeneous recommendation algorithm, like Matrix
            Factorization techniques, can be applied in the target
            domain" (their GitHub demonstrates it with Spark MLlib; we
            use the from-scratch ALS). ``"mf"`` is non-private only.
        prune_k: the Extender's per-layer top-k (§3.2; the paper uses 50).
        max_paths_per_item: meta-path enumeration cap per source item.
        n_replacements: AlterEgo replacement-set size (footnote 10;
            1 recovers the single-replacement scheme).
        cf_k: the recommendation neighborhood size (paper: 50, §6.4).
        alpha: Eq 7 temporal decay — item mode only (the paper applies
            temporal relevance to the item-based variant, §4.4).
        epsilon: PRS budget ε (X-Map only; paper selects 0.3 for ib,
            0.6 for ub, §6.3).
        epsilon_prime: recommendation budget ε′ (X-Map only; paper:
            0.8 for ib, 0.3 for ub).
        rho: PNSA failure probability.
        min_common_users: Baseliner edge threshold.
        n_shards: shard count for the Baseliner's Eq-6 sweep on the
            dataflow engine (``None`` reads ``REPRO_SHARDS``; 1 is the
            single-process store path). Sharded runs also bulk-compute
            the Definition-2 counts the Extender consumes.
        shard_processes: worker pool size for the sharded sweep
            (``None`` reads ``REPRO_SHARD_PROCS``; 0/1 = serial
            executor, same output bit for bit).
        n_edge_partitions: item-partition count for the sweep's merge +
            adjacency-assembly back half (``None`` reads
            ``REPRO_EDGE_PARTITIONS`` and defaults to the shard count;
            1 = single driver pass). Any value yields the same graph
            bit for bit — the knob trades driver-tail latency for
            partition-local assembly.
        incremental: keep the Baseliner's sweep state
            (:class:`~repro.engine.sharded_sweep.IncrementalSweep`)
            attached to the fitted pipeline's ``baseline.state``, so
            online rating batches can be appended via
            :meth:`~repro.core.baseliner.Baseliner.update` without
            re-running the offline sweep. The fitted pipeline is
            otherwise identical.
        seed: randomness seed for the private mechanisms.
    """

    mode: str = "item"
    prune_k: int = 50
    max_paths_per_item: int | None = 5000
    n_replacements: int = 12
    cf_k: int = 50
    alpha: float = 0.0
    epsilon: float = 0.3
    epsilon_prime: float = 0.8
    rho: float = 0.1
    min_common_users: int = 1
    n_shards: int | None = None
    shard_processes: int | None = None
    n_edge_partitions: int | None = None
    incremental: bool = False
    seed: int = 0

    def validated(self) -> "XMapConfig":
        """Raise :class:`~repro.errors.ConfigError` on bad values."""
        if self.mode not in _MODES:
            raise ConfigError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.cf_k <= 0:
            raise ConfigError(f"cf_k must be positive, got {self.cf_k}")
        if self.alpha < 0:
            raise ConfigError(f"alpha must be >= 0, got {self.alpha}")
        if self.alpha > 0 and self.mode != "item":
            raise ConfigError(
                "temporal decay (alpha > 0) applies to the item-based "
                "variant only (§4.4)")
        if self.n_replacements <= 0:
            raise ConfigError(
                f"n_replacements must be positive, got {self.n_replacements}")
        if self.n_shards is not None and self.n_shards < 1:
            raise ConfigError(
                f"n_shards must be >= 1 (or None to read REPRO_SHARDS), "
                f"got {self.n_shards}")
        if self.shard_processes is not None and self.shard_processes < 0:
            raise ConfigError(
                f"shard_processes must be >= 0 (or None to read "
                f"REPRO_SHARD_PROCS), got {self.shard_processes}")
        if self.n_edge_partitions is not None and self.n_edge_partitions < 1:
            raise ConfigError(
                f"n_edge_partitions must be >= 1 (or None to read "
                f"REPRO_EDGE_PARTITIONS), got {self.n_edge_partitions}")
        ExtenderConfig(k=self.prune_k,
                       max_paths_per_item=self.max_paths_per_item).validated()
        return self

    def with_overrides(self, **kwargs) -> "XMapConfig":
        """Functional update helper for parameter sweeps."""
        return replace(self, **kwargs).validated()


class _PipelineBase:
    """Shared offline pipeline; subclasses choose generator + recommender."""

    #: paper-style display name prefix, set by subclasses.
    family = "?"

    def __init__(self, config: XMapConfig | None = None) -> None:
        self.config = (config or XMapConfig()).validated()
        self._fitted = False
        self.baseline: BaselineSimilarities | None = None
        self.partition: LayerPartition | None = None
        self.xsim_map: XSimMap | None = None
        self.generator: AlterEgoGenerator | None = None
        self.augmented_target: RatingTable | None = None
        self._recommender: Recommender | None = None

    # -- subclass hooks --------------------------------------------------

    def _make_generator(self, xsim_map: XSimMap) -> AlterEgoGenerator:
        raise NotImplementedError

    def _make_recommender(self, table: RatingTable) -> Recommender:
        raise NotImplementedError

    # -- pipeline ---------------------------------------------------------

    @property
    def variant_name(self) -> str:
        """Paper-style name, e.g. ``X-Map-ib``."""
        suffix = {"item": "ib", "user": "ub", "mf": "mf"}[self.config.mode]
        return f"{self.family}-{suffix}"

    def fit(self, data: CrossDomainDataset,
            users: Iterable[str] | None = None) -> "_PipelineBase":
        """Run the offline phases on *data*.

        Args:
            data: the two-domain training data.
            users: which users to build AlterEgos for (default: every
                user with a source-domain profile — the paper generates
                AlterEgos for all of them so any can be served online).
        """
        self.data = data
        # One aggregated table (and therefore one interned
        # MatrixRatingStore, built lazily on first similarity call) is
        # shared by the Baseliner's Eq-6 sweep and the Extender's
        # significance lookups — data.merged() builds a fresh table per
        # call, which would re-derive every profile per phase.
        merged = data.merged()
        baseliner = Baseliner(
            min_common_users=self.config.min_common_users,
            n_shards=self.config.n_shards,
            shard_processes=self.config.shard_processes,
            n_edge_partitions=self.config.n_edge_partitions,
            keep_state=self.config.incremental)
        self.baseline = baseliner.compute(data, merged=merged)
        self.partition = LayerPartition.from_graph(
            self.baseline.graph, data.domain_map())
        extender = Extender(ExtenderConfig(
            k=self.config.prune_k,
            max_paths_per_item=self.config.max_paths_per_item))
        # A sharded Baseliner run folded the Definition-2 counts into its
        # sweep; hand them to the Extender as a prewarmed cache so dense
        # graphs never pay per-pair significance lookups.
        significance = None
        if self.baseline.significance is not None:
            significance = SignificanceCache(merged, preload=self.baseline.significance)
        self.xsim_map = extender.extend(
            self.baseline.graph, self.partition, merged,
            source_domain=data.source.name,
            significance=significance)
        self.generator = self._make_generator(self.xsim_map)
        alterego_users = (sorted(set(users)) if users is not None
                          else sorted(data.source.users))
        self.augmented_target = self.generator.alterego_table(
            alterego_users, data.source.ratings, data.target.ratings)
        self._recommender = self._make_recommender(self.augmented_target)
        self._fitted = True
        return self

    def _require_fitted(self) -> Recommender:
        if not self._fitted or self._recommender is None:
            raise ReproError(
                f"{type(self).__name__} is not fitted; call fit(data) first")
        return self._recommender

    def predict(self, user: str, item: str) -> float:
        """Predicted target-domain rating (Recommender protocol)."""
        return self._require_fitted().predict(user, item)

    def recommend(self, user: str, n: int = 10) -> list[tuple[str, float]]:
        """Top-N target-domain items (Recommender protocol)."""
        return self._require_fitted().recommend(user, n)

    def item_mapping(self) -> dict[str, str]:
        """The Generator's source → replacement item mapping."""
        if self.generator is None:
            raise ReproError("call fit(data) before reading the item mapping")
        return self.generator.item_mapping()

    def snapshot(self, version: int = 0):
        """Freeze the fitted model into a
        :class:`~repro.serving.snapshot.ModelSnapshot`.

        Captures the serving store and index, the Baseliner's bulk
        significance (when the sharded sweep produced one) and the
        Generator's replacement sets; ``snapshot().save(directory)``
        then persists everything a restarted server needs — loading it
        serves predictions bit-identical to this fitted pipeline
        without re-running any offline phase. Deterministic item-mode
        pipelines only (see
        :meth:`~repro.serving.snapshot.ModelSnapshot.from_pipeline`).
        """
        from repro.serving.snapshot import ModelSnapshot

        return ModelSnapshot.from_pipeline(self, version=version)


class NXMapRecommender(_PipelineBase):
    """The non-private pipeline (NX-Map, §4).

    Deterministic argmax replacements; plain Algorithm 1/2 in the target
    domain (with Eq 7 decay in item mode when ``alpha > 0``).
    """

    family = "NX-Map"

    def _make_generator(self, xsim_map: XSimMap) -> AlterEgoGenerator:
        return AlterEgoGenerator(
            xsim_map, policy=ReplacementPolicy.NON_PRIVATE,
            n_replacements=self.config.n_replacements)

    def _make_recommender(self, table: RatingTable) -> Recommender:
        if self.config.mode == "user":
            return UserKNNRecommender(table, k=self.config.cf_k)
        if self.config.mode == "mf":
            from repro.competitors.als import ALSConfig, ALSRecommender
            return ALSRecommender(table, ALSConfig(seed=self.config.seed))
        if self.config.alpha > 0.0:
            return TemporalItemKNNRecommender(
                table, k=self.config.cf_k, alpha=self.config.alpha)
        return ItemKNNRecommender(table, k=self.config.cf_k)


class XMapRecommender(_PipelineBase):
    """The differentially private pipeline (X-Map, §4).

    PRS replacements (ε-DP AlterEgos) plus PNSA + PNCF recommendation
    (ε′-DP), with the spends recorded in :attr:`accountant`.
    """

    family = "X-Map"

    def __init__(self, config: XMapConfig | None = None) -> None:
        super().__init__(config)
        self.accountant = PrivacyAccountant()

    def _make_generator(self, xsim_map: XSimMap) -> AlterEgoGenerator:
        return AlterEgoGenerator(
            xsim_map, policy=ReplacementPolicy.PRIVATE,
            epsilon=self.config.epsilon, seed=self.config.seed,
            accountant=self.accountant,
            n_replacements=self.config.n_replacements)

    def _make_recommender(self, table: RatingTable) -> Recommender:
        if self.config.mode == "mf":
            raise ConfigError(
                "mode='mf' is non-private only (NXMapRecommender); the "
                "private recommendation phase is defined for the kNN "
                "schemes of Algorithms 4-5")
        self.accountant.spend(
            "PNSA (neighbor selection)", self.config.epsilon_prime / 2.0)
        self.accountant.spend(
            "PNCF (prediction noise)", self.config.epsilon_prime / 2.0)
        if self.config.mode == "user":
            return PrivateUserKNNRecommender(
                table, k=self.config.cf_k,
                epsilon_prime=self.config.epsilon_prime,
                rho=self.config.rho, seed=self.config.seed)
        return PrivateItemKNNRecommender(
            table, k=self.config.cf_k,
            epsilon_prime=self.config.epsilon_prime,
            rho=self.config.rho, alpha=self.config.alpha,
            seed=self.config.seed)
