"""Bridge items and the layer partition of §3.2 (Figure 2).

X-Map's scalability trick: instead of considering all O(m²) item pairs,
partition each domain's items into three layers around the *bridge
items* — the items whose baseline-similarity edges cross into the other
domain (they exist because some straddler rated on both sides):

* **BB** — the bridge items themselves (connected to the other domain's
  bridge items),
* **NB** — non-bridge items with an edge to a bridge item of their own
  domain,
* **NN** — non-bridge items with no edge to any bridge item.

Meta-paths may then only cross between adjacent layers
(NN—NB—BB ⇌ BB—NB—NN), which bounds the search to O(km) with top-k
pruning per layer.
"""

from __future__ import annotations

import enum
from typing import Mapping

from repro.errors import GraphError
from repro.similarity.graph import ItemGraph


class Layer(enum.Enum):
    """The three per-domain layers of §3.2."""

    BB = "BB"
    NB = "NB"
    NN = "NN"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The within-domain layer chain: a meta-path climbs NN → NB → BB before
#: crossing to the other domain's BB layer, and descends symmetrically.
LAYER_CHAIN = (Layer.NN, Layer.NB, Layer.BB)


class LayerPartition:
    """The six-layer partition of a two-domain similarity graph.

    Build with :meth:`from_graph`; query with :meth:`layer_of` and
    :meth:`members`.
    """

    def __init__(self, assignment: Mapping[str, tuple[str, Layer]],
                 domains: tuple[str, str]) -> None:
        self._assignment = dict(assignment)
        self.domains = domains
        members: dict[tuple[str, Layer], set[str]] = {
            (domain, layer): set()
            for domain in domains for layer in Layer}
        for item, (domain, layer) in self._assignment.items():
            members[(domain, layer)].add(item)
        self._members = {key: frozenset(value) for key, value in members.items()}

    @classmethod
    def from_graph(cls, graph: ItemGraph,
                   domain_of: Mapping[str, str]) -> "LayerPartition":
        """Partition the items of *graph* using *domain_of* labels.

        Args:
            graph: the baseline similarity graph ``G_ac`` (§3.1). Every
                vertex must appear in *domain_of*.
            domain_of: item → domain name; exactly two domains must occur.
        """
        domains = sorted({domain_of[item] for item in graph.items if item in domain_of})
        missing = [item for item in graph.items if item not in domain_of]
        if missing:
            raise GraphError(
                f"items missing a domain label, e.g. {sorted(missing)[:3]}")
        if len(domains) != 2:
            raise GraphError(
                f"layer partition requires exactly 2 domains, got {domains}")

        bridge: set[str] = set()
        for item in graph.items:
            item_domain = domain_of[item]
            for neighbor in graph.neighbors(item):
                if domain_of[neighbor] != item_domain:
                    bridge.add(item)
                    break

        assignment: dict[str, tuple[str, Layer]] = {}
        for item in graph.items:
            domain = domain_of[item]
            if item in bridge:
                assignment[item] = (domain, Layer.BB)
                continue
            touches_bridge = any(
                neighbor in bridge and domain_of[neighbor] == domain
                for neighbor in graph.neighbors(item))
            assignment[item] = (domain, Layer.NB if touches_bridge else Layer.NN)
        return cls(assignment, (domains[0], domains[1]))

    # ------------------------------------------------------------------

    def layer_of(self, item: str) -> Layer:
        """Layer of *item*; raises GraphError for unknown items."""
        try:
            return self._assignment[item][1]
        except KeyError:
            raise GraphError(f"item {item!r} is not in the partition") from None

    def domain_of(self, item: str) -> str:
        """Domain of *item* as recorded in the partition."""
        try:
            return self._assignment[item][0]
        except KeyError:
            raise GraphError(f"item {item!r} is not in the partition") from None

    def members(self, domain: str, layer: Layer) -> frozenset[str]:
        """All items of *domain* assigned to *layer*."""
        try:
            return self._members[(domain, layer)]
        except KeyError:
            raise GraphError(
                f"unknown domain {domain!r}; have {self.domains}") from None

    def bridge_items(self, domain: str) -> frozenset[str]:
        """The BB layer of *domain*."""
        return self.members(domain, Layer.BB)

    def other_domain(self, domain: str) -> str:
        """The domain that is not *domain*."""
        first, second = self.domains
        if domain == first:
            return second
        if domain == second:
            return first
        raise GraphError(f"unknown domain {domain!r}; have {self.domains}")

    def counts(self) -> dict[tuple[str, Layer], int]:
        """Layer sizes, e.g. for diagnostics: (domain, layer) → #items."""
        return {key: len(value) for key, value in self._members.items()}

    def __len__(self) -> int:
        return len(self._assignment)

    def __contains__(self, item: str) -> bool:
        return item in self._assignment
