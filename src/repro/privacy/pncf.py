"""Private recommendation — Algorithm 5 (PNCF), item- and user-based.

The recommendation budget ε′ splits in half (composition property,
§4.4): PNSA picks neighbors with ε′/2, then predictions perturb each
neighbor's similarity with ``Lap(SS / (ε′/2))`` noise before the usual
weighted-deviation formula:

    P[t_j] = r̄_{t_j} + Σ_k (τ + Lap)·(r_A − r̄) / Σ_k |τ + Lap|

The item-based variant additionally supports the Eq 7 temporal weights —
the paper's X-Map-ib "includes the additional feature of temporally
relevant predictions to boost the recommendation quality traded for
privacy".
"""

from __future__ import annotations

import math

import numpy as np

from repro.cf.predictor import BaseRecommender
from repro.data.ratings import RatingTable
from repro.errors import PrivacyError
from repro.privacy.mechanisms import laplace_noise
from repro.privacy.pnsa import PNSAConfig, private_neighbor_selection
from repro.privacy.sensitivity import (
    item_similarity_sensitivity,
    user_similarity_sensitivity,
)
from repro.similarity.adjusted_cosine import adjusted_cosine
from repro.similarity.pearson import pearson_users


class _PrivateKNNBase(BaseRecommender):
    """Shared ε′ bookkeeping for the two private recommenders."""

    def __init__(self, table: RatingTable, k: int = 50,
                 epsilon_prime: float = 0.8, rho: float = 0.1,
                 seed: int = 0) -> None:
        if epsilon_prime <= 0:
            raise PrivacyError(f"epsilon_prime must be > 0, got {epsilon_prime}")
        super().__init__(table)
        self.k = k
        self.epsilon_prime = epsilon_prime
        self.rho = rho
        self.rng = np.random.default_rng(seed)
        #: ε′/2 to neighbor selection, ε′/2 to prediction noise (§4.4).
        self.selection_epsilon = epsilon_prime / 2.0
        self.noise_epsilon = epsilon_prime / 2.0

    def _noisy(self, similarity: float, sensitivity: float) -> float:
        return similarity + laplace_noise(sensitivity, self.noise_epsilon, self.rng)


class PrivateItemKNNRecommender(_PrivateKNNBase):
    """Item-based Algorithm 5 (the engine behind X-Map-ib).

    Args:
        table: training ratings (target domain + private AlterEgos).
        k: neighborhood size.
        epsilon_prime: the recommendation privacy budget ε′.
        rho: PNSA failure probability.
        alpha: Eq 7 temporal decay (0 disables).
        seed: generator seed — private runs are reproducible.
    """

    def __init__(self, table: RatingTable, k: int = 50,
                 epsilon_prime: float = 0.8, rho: float = 0.1,
                 alpha: float = 0.0, seed: int = 0) -> None:
        super().__init__(table, k=k, epsilon_prime=epsilon_prime, rho=rho, seed=seed)
        if alpha < 0:
            raise PrivacyError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self._sim_cache: dict[tuple[str, str], float] = {}
        self._sens_cache: dict[tuple[str, str], float] = {}

    def _similarity(self, item_i: str, item_j: str) -> float:
        key = (item_i, item_j) if item_i <= item_j else (item_j, item_i)
        cached = self._sim_cache.get(key)
        if cached is None:
            cached = adjusted_cosine(self.table, item_i, item_j)
            self._sim_cache[key] = cached
        return cached

    def _sensitivity(self, item_i: str, item_j: str) -> float:
        key = (item_i, item_j) if item_i <= item_j else (item_j, item_i)
        cached = self._sens_cache.get(key)
        if cached is None:
            cached = item_similarity_sensitivity(self.table, item_i, item_j)
            self._sens_cache[key] = cached
        return cached

    def _query_time(self, user: str) -> int:
        profile = self.table.user_profile(user)
        if not profile:
            return 0
        return max(rating.timestep for rating in profile.values())

    def _predict_raw(self, user: str, item: str) -> float | None:
        similarities: dict[str, float] = {}
        sensitivities: dict[str, float] = {}
        for rated in self.table.user_items(user):
            if rated == item:
                continue
            sim = self._similarity(item, rated)
            # Positive neighborhoods, matching ItemKNNRecommender — see
            # its docstring for why negatives hurt on sparse data.
            if sim <= 0.0:
                continue
            similarities[rated] = sim
            sensitivities[rated] = self._sensitivity(item, rated)
        if not similarities:
            return None
        config = PNSAConfig(k=self.k, epsilon=self.selection_epsilon, rho=self.rho)
        neighbors = private_neighbor_selection(
            similarities, sensitivities, config, self.rng)
        now = self._query_time(user)
        numerator = 0.0
        denominator = 0.0
        for rated in neighbors:
            rating = self.table.get(user, rated)
            if rating is None:  # pragma: no cover - neighbors come from X_A
                continue
            noisy = self._noisy(similarities[rated], sensitivities[rated])
            decay = (math.exp(-self.alpha * (now - rating.timestep))
                     if self.alpha > 0.0 else 1.0)
            numerator += noisy * (rating.value - self.table.item_mean(rated)) * decay
            denominator += abs(noisy) * decay
        if denominator == 0.0:
            return None
        return self.table.item_mean(item) + numerator / denominator


class PrivateUserKNNRecommender(_PrivateKNNBase):
    """User-based Algorithm 5 analogue (the engine behind X-Map-ub).

    PNSA runs once per query user over the Eq 1 user similarities (with
    the transposed Theorem 2 sensitivities) and the neighborhood is
    cached — re-drawing it per prediction would multiply the privacy
    spend for no accuracy gain.
    """

    def __init__(self, table: RatingTable, k: int = 50,
                 epsilon_prime: float = 0.8, rho: float = 0.1,
                 seed: int = 0) -> None:
        super().__init__(table, k=k, epsilon_prime=epsilon_prime, rho=rho, seed=seed)
        self._neighbor_cache: dict[str, list[tuple[str, float]]] = {}

    def _private_neighbors(self, user: str) -> list[tuple[str, float]]:
        cached = self._neighbor_cache.get(user)
        if cached is not None:
            return cached
        candidates: set[str] = set()
        for item in self.table.user_items(user):
            candidates.update(self.table.item_users(item))
        candidates.discard(user)
        similarities: dict[str, float] = {}
        sensitivities: dict[str, float] = {}
        for other in candidates:
            sim = pearson_users(self.table, user, other)
            if sim == 0.0:
                continue
            similarities[other] = sim
            sensitivities[other] = user_similarity_sensitivity(self.table, user, other)
        if not similarities:
            self._neighbor_cache[user] = []
            return []
        config = PNSAConfig(k=self.k, epsilon=self.selection_epsilon, rho=self.rho)
        chosen = private_neighbor_selection(
            similarities, sensitivities, config, self.rng)
        noisy = [
            (other, self._noisy(similarities[other], sensitivities[other]))
            for other in chosen]
        self._neighbor_cache[user] = noisy
        return noisy

    def _predict_raw(self, user: str, item: str) -> float | None:
        numerator = 0.0
        denominator = 0.0
        for neighbor, noisy_sim in self._private_neighbors(user):
            rating = self.table.get(neighbor, item)
            if rating is None:
                continue
            numerator += noisy_sim * (rating.value - self.table.user_mean(neighbor))
            denominator += abs(noisy_sim)
        if denominator == 0.0:
            return None
        base = (self.table.user_mean(user) if user in self.table.users
                else self.table.item_mean(item))
        return base + numerator / denominator
