"""Privacy budget bookkeeping.

X-Map composes mechanisms: PRS spends ε on AlterEgo generation, PNSA and
PNCF spend ε′/2 each on recommendation (§4.4, "by the composition
property of differential privacy, PNSA and PNCF together provide
ε′-differential privacy"). The accountant records each spend so the
pipeline can report — and tests can assert — the total guarantee that a
configuration provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PrivacyError


@dataclass
class PrivacyAccountant:
    """Sequential-composition ledger.

    Attributes:
        budget: optional hard cap; spends beyond it raise
            :class:`~repro.errors.PrivacyError` (``None`` = unlimited,
            just record).
    """

    budget: float | None = None
    _entries: list[tuple[str, float]] = field(default_factory=list)

    def spend(self, label: str, epsilon: float) -> None:
        """Record spending *epsilon* under *label*.

        Raises:
            PrivacyError: on non-positive epsilon, or if the cumulative
                total would exceed the budget.
        """
        if epsilon <= 0:
            raise PrivacyError(
                f"spent epsilon must be > 0, got {epsilon} for {label!r}")
        if self.budget is not None and self.total + epsilon > self.budget + 1e-12:
            raise PrivacyError(
                f"spending {epsilon} on {label!r} exceeds budget "
                f"{self.budget} (already spent {self.total})")
        self._entries.append((label, epsilon))

    @property
    def total(self) -> float:
        """Total ε spent so far (sequential composition)."""
        return sum(eps for _, eps in self._entries)

    @property
    def entries(self) -> tuple[tuple[str, float], ...]:
        """The (label, ε) ledger in spend order."""
        return tuple(self._entries)

    def remaining(self) -> float | None:
        """Budget left, or ``None`` when unlimited."""
        if self.budget is None:
            return None
        return max(0.0, self.budget - self.total)

    def describe(self) -> str:
        """Human-readable ledger summary."""
        lines = [f"  {label}: ε={eps:g}" for label, eps in self._entries]
        header = f"privacy spend (total ε={self.total:g}"
        header += f", budget {self.budget:g})" if self.budget is not None else ")"
        return "\n".join([header, *lines])
