"""Private Replacement Selection — Algorithm 3 (Theorem 1).

The Generator must pick, for a source item ``t_i``, a replacement among
the target items ``I(t_i)`` that X-Sim connects it to. Doing that by
argmax leaks: a curious user who controls a probe profile can infer which
straddler's ratings created the winning link (§1.2's privacy challenge).

PRS instead samples the replacement with probability

    Pr[t_j] ∝ exp( ε · X-Sim(t_i, t_j) / (2 · GS) ),      GS = 2,

which Theorem 1 shows is ε-differentially private with respect to any one
user profile. Standard additive (Laplace/Gaussian) noise would not work
here — the output must *be an item of the target domain*, not a noisy
number — which is why the exponential mechanism is the right tool.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import PrivacyError
from repro.privacy.mechanisms import exponential_mechanism
from repro.privacy.sensitivity import XSIM_GLOBAL_SENSITIVITY


def private_replacement(candidates: Mapping[str, float], epsilon: float,
                        rng: np.random.Generator) -> str:
    """Draw the ε-DP replacement for one source item.

    Args:
        candidates: ``I(t_i)`` — target item → X-Sim value.
        epsilon: the per-selection privacy parameter ε (the paper tunes
            it in Figures 6–7; ≤ 1 is the "suitable" range, §6.1).
        rng: seeded generator.

    Returns:
        The sampled target item id.

    Raises:
        PrivacyError: if *candidates* is empty (a source item with no
        X-Sim connections has no private replacement — the Generator
        skips such items).
    """
    if not candidates:
        raise PrivacyError("private replacement needs a non-empty candidate set")
    return exponential_mechanism(candidates, epsilon, XSIM_GLOBAL_SENSITIVITY, rng)
