"""Private Neighbor Selection — Algorithm 4 (PNSA).

Selecting the k nearest neighbors by exact similarity leaks which users'
ratings shaped the neighborhood. PNSA replaces the exact top-k with k
rounds of the exponential mechanism, each spending ε_sel/k, over the
*truncated* similarities of Zhu et al. [39, 40]:

    Ŝim(t_i, t_j) = max(Sim(t_i, t_j), Sim_k(t_i) − w)

where ``Sim_k`` is the k-th best similarity and the truncation width

    w = min(Sim_k, (4k / ε_sel) · SS · ln(k (|v| − k) / ρ))

uses the similarity-based sensitivity SS of Theorem 2. Theorems 3–4: with
probability ≥ 1 − ρ the selected neighbors all have similarity above
``Sim_k − w`` and every item above ``Sim_k + w`` is selected — i.e. the
noise is spent where it cannot hurt neighbor quality much.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import PrivacyError
from repro.privacy.mechanisms import exponential_sample_without_replacement


@dataclass(frozen=True)
class PNSAConfig:
    """Parameters of one private neighbor selection.

    Attributes:
        k: neighborhood size.
        epsilon: the selection budget ε_sel (X-Map allocates ε′/2 of the
            recommendation budget here, the other half to PNCF noise).
        rho: the failure probability ρ of Theorems 3–4 (small constant;
            0.1 follows the Zhu et al. evaluation).
    """

    k: int
    epsilon: float
    rho: float = 0.1

    def validated(self) -> "PNSAConfig":
        """Raise :class:`~repro.errors.PrivacyError` on bad values."""
        if self.k <= 0:
            raise PrivacyError(f"k must be positive, got {self.k}")
        if self.epsilon <= 0:
            raise PrivacyError(f"epsilon must be > 0, got {self.epsilon}")
        if not 0.0 < self.rho < 1.0:
            raise PrivacyError(f"rho must be in (0, 1), got {self.rho}")
        return self


def truncation_width(config: PNSAConfig, sim_k: float,
                     max_sensitivity: float, n_candidates: int) -> float:
    """The w of Theorems 3–4 (Algorithm 4, step 3), clamped to ≥ 0.

    The log argument ``k(|v| − k)/ρ`` can dip below 1 for tiny candidate
    sets, which would make w negative; truncation then degenerates to
    none, which is the correct limit (nothing to hide among ≤ k
    candidates).
    """
    spare = max(n_candidates - config.k, 1)
    log_term = math.log(max(config.k * spare / config.rho, 1.0))
    width = (4.0 * config.k / config.epsilon) * max_sensitivity * log_term
    return max(0.0, min(sim_k, width))


def private_neighbor_selection(
        similarities: Mapping[str, float],
        sensitivities: Mapping[str, float],
        config: PNSAConfig,
        rng: np.random.Generator) -> list[str]:
    """Run Algorithm 4: k private draws over truncated similarities.

    Args:
        similarities: candidate → Sim(t_i, ·) (every candidate the query
            item could neighbor — Algorithm 4's C1 ∪ C0).
        sensitivities: candidate → SS(t_i, ·) (Theorem 2 values; must be
            positive).
        config: k / ε_sel / ρ.
        rng: seeded generator.

    Returns:
        The selected neighbor ids (≤ k, fewer when the candidate set is
        smaller). With ≤ k candidates everything is returned unchanged —
        there is no selection to privatise.
    """
    config = config.validated()
    if not similarities:
        return []
    missing = [c for c in similarities if c not in sensitivities]
    if missing:
        raise PrivacyError(
            f"candidates missing sensitivities, e.g. {sorted(missing)[:3]}")
    if len(similarities) <= config.k:
        return sorted(similarities, key=lambda c: (-similarities[c], c))
    ranked = sorted(similarities.values(), reverse=True)
    sim_k = ranked[config.k - 1]
    width = truncation_width(
        config, sim_k, max(sensitivities.values()), len(similarities))
    floor = sim_k - width
    truncated = {
        candidate: max(value, floor)
        for candidate, value in similarities.items()}
    per_round_epsilon = config.epsilon / config.k
    return exponential_sample_without_replacement(
        truncated, rounds=config.k, epsilon_per_round=per_round_epsilon,
        sensitivity=dict(sensitivities), rng=rng)
