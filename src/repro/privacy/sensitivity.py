"""Sensitivity computations (Theorem 1's GS and Theorem 2's SS).

* **Global sensitivity of X-Sim.** X-Sim values are certainty-weighted
  means of similarities in [−1, 1], so removing one profile can move a
  value by at most ``X-Sim_max − X-Sim_min = 2`` — the constant GS = 2
  that Algorithm 3 hard-codes.

* **Similarity-based (local) sensitivity** (Theorem 2). For a pair of
  items, how much can the adjusted-cosine similarity change when one
  co-rater's profile is removed? The theorem bounds it by the larger of
  (a) the largest single co-rater contribution measured against the
  reduced norms, and (b) the largest renormalisation shift. Pairs with
  much co-rating mass get tiny sensitivities — which is exactly why PNSA
  adds far less noise than a global bound would force.

Both item-pair and user-pair variants are provided: Algorithm 4/5 are
written item-based, and the user-based X-Map variant needs the transpose.
"""

from __future__ import annotations

import math

from repro.data.ratings import RatingTable

#: Theorem 1 / Algorithm 3 line 2: |X-Sim_max − X-Sim_min| = |1 − (−1)|.
XSIM_GLOBAL_SENSITIVITY = 2.0

#: Floor for degenerate sensitivities: when a pair's rating vectors are
#: so thin that removing a user empties them, fall back to the global
#: worst case for a similarity in [−1, 1].
_DEGENERATE_SENSITIVITY = 2.0


def _centered_vectors(table: RatingTable, item_i: str, item_j: str,
                      ) -> tuple[dict[str, float], dict[str, float]]:
    """User-mean-centered rating vectors ``r_{t_i}``, ``r_{t_j}``.

    Theorem 2 defines the vectors post-centering ("a rating is the
    result after subtracting the average rating of user x"), matching
    the adjusted-cosine computation the similarities come from.
    """
    vector_i = {
        user: rating.value - table.user_mean(user)
        for user, rating in table.item_profile(item_i).items()}
    vector_j = {
        user: rating.value - table.user_mean(user)
        for user, rating in table.item_profile(item_j).items()}
    return vector_i, vector_j


def _pair_sensitivity(vector_i: dict[str, float], vector_j: dict[str, float]) -> float:
    """Shared core of the item/user variants (the Theorem 2 formula)."""
    common = [u for u in vector_i if u in vector_j]
    if not common:
        # No co-rater: removing any single profile cannot create or
        # destroy co-rating mass beyond one entry; the similarity is 0
        # and stays 0 except via the norms, bounded by the global case.
        return _DEGENERATE_SENSITIVITY
    norm_sq_i = math.fsum(v * v for v in vector_i.values())
    norm_sq_j = math.fsum(v * v for v in vector_j.values())
    dot = math.fsum(vector_i[u] * vector_j[u] for u in common)
    norm_i = math.sqrt(norm_sq_i)
    norm_j = math.sqrt(norm_sq_j)

    best = 0.0
    degenerate = False
    for user in common:
        reduced_norm_i = math.sqrt(max(0.0, norm_sq_i - vector_i[user] ** 2))
        reduced_norm_j = math.sqrt(max(0.0, norm_sq_j - vector_j[user] ** 2))
        if reduced_norm_i == 0.0 or reduced_norm_j == 0.0:
            degenerate = True
            continue
        # (a) the user's own contribution over the reduced norms
        term_contribution = abs(
            vector_i[user] * vector_j[user]) / (reduced_norm_i * reduced_norm_j)
        # (b) the renormalisation shift of the full dot product
        term_renorm = 0.0
        if norm_i > 0.0 and norm_j > 0.0:
            term_renorm = abs(
                dot / (reduced_norm_i * reduced_norm_j)
                - dot / (norm_i * norm_j))
        best = max(best, term_contribution, term_renorm)
    if degenerate and best == 0.0:
        return _DEGENERATE_SENSITIVITY
    # A similarity lives in [−1, 1]; its change can never exceed 2.
    return min(best, _DEGENERATE_SENSITIVITY) if best > 0.0 else (
        _DEGENERATE_SENSITIVITY if degenerate else max(best, 1e-12))


def item_similarity_sensitivity(table: RatingTable, item_i: str, item_j: str) -> float:
    """``SS(t_i, t_j)`` of Theorem 2 for an item pair.

    Always returns a strictly positive, finite value — the exponential
    mechanism divides by it.
    """
    vector_i, vector_j = _centered_vectors(table, item_i, item_j)
    return _pair_sensitivity(vector_i, vector_j)


def user_similarity_sensitivity(table: RatingTable, user_a: str, user_b: str) -> float:
    """Theorem 2 transposed to a user pair (for user-based X-Map).

    The "profiles" whose removal we bound over are the co-rated *items*;
    ratings are centered on item means, matching Eq 1's user similarity.
    """
    vector_a = {
        item: rating.value - table.item_mean(item)
        for item, rating in table.user_profile(user_a).items()}
    vector_b = {
        item: rating.value - table.item_mean(item)
        for item, rating in table.user_profile(user_b).items()}
    return _pair_sensitivity(vector_a, vector_b)
