"""Raw differential-privacy mechanisms.

Two classics, in the exact shapes the paper's algorithms consume:

* the **Laplace mechanism** — additive ``Lap(sensitivity / ε)`` noise
  (used by PNCF, Algorithm 5, on similarity values);
* the **exponential mechanism** — sample a candidate with probability
  ``∝ exp(ε · score / (2 · sensitivity))`` (used by PRS, Algorithm 3, and
  round-by-round by PNSA, Algorithm 4).

Scores are shifted by their maximum before exponentiation, which leaves
the distribution unchanged (the shift cancels in the normalisation) but
avoids overflow for large ε/sensitivity ratios.

All randomness flows through an explicit ``numpy`` generator so that
every private run is reproducible given its seed.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.errors import PrivacyError


def _check_epsilon(epsilon: float) -> None:
    if not math.isfinite(epsilon) or epsilon <= 0.0:
        raise PrivacyError(f"epsilon must be finite and > 0, got {epsilon}")


def laplace_noise(sensitivity: float, epsilon: float,
                  rng: np.random.Generator) -> float:
    """One draw of ``Lap(sensitivity / ε)`` noise.

    Zero sensitivity legitimately yields zero noise (the queried value
    cannot change between neighboring datasets).
    """
    _check_epsilon(epsilon)
    if sensitivity < 0.0:
        raise PrivacyError(f"sensitivity must be >= 0, got {sensitivity}")
    if sensitivity == 0.0:
        return 0.0
    return float(rng.laplace(loc=0.0, scale=sensitivity / epsilon))


def _exponential_weights(scores: Sequence[float],
                         sensitivities: Sequence[float],
                         epsilon: float) -> np.ndarray:
    exponents = np.array([
        epsilon * score / (2.0 * sens)
        for score, sens in zip(scores, sensitivities)])
    exponents -= exponents.max()
    weights = np.exp(exponents)
    return weights / weights.sum()


def exponential_mechanism(scores: Mapping[str, float], epsilon: float,
                          sensitivity: float | Mapping[str, float],
                          rng: np.random.Generator) -> str:
    """Pick one key with probability ``∝ exp(ε·score/(2·sensitivity))``.

    Args:
        scores: candidate → utility score (e.g. X-Sim values in PRS).
        epsilon: privacy budget of this single selection.
        sensitivity: global score sensitivity, or a per-candidate mapping
            (PNSA uses per-pair similarity-based sensitivities).
        rng: seeded generator.

    Raises:
        PrivacyError: on empty candidates, bad ε, or non-positive
            sensitivity (a zero-sensitivity exponential mechanism would
            put infinite weight on the max — the caller should shortcut
            to argmax instead of asking us to divide by zero).
    """
    if not scores:
        raise PrivacyError("exponential mechanism needs at least one candidate")
    _check_epsilon(epsilon)
    keys = sorted(scores)
    values = [scores[key] for key in keys]
    if isinstance(sensitivity, Mapping):
        sens = [sensitivity[key] for key in keys]
    else:
        sens = [sensitivity] * len(keys)
    if any(s <= 0.0 for s in sens):
        raise PrivacyError("sensitivities must be positive")
    probabilities = _exponential_weights(values, sens, epsilon)
    index = int(rng.choice(len(keys), p=probabilities))
    return keys[index]


def exponential_sample_without_replacement(
        scores: Mapping[str, float], rounds: int, epsilon_per_round: float,
        sensitivity: float | Mapping[str, float],
        rng: np.random.Generator) -> list[str]:
    """PNSA's inner loop: *rounds* exponential-mechanism draws without
    replacement (Algorithm 4, steps 4–12).

    Returns at most ``min(rounds, len(scores))`` distinct keys, in draw
    order. Each draw spends ``epsilon_per_round``.
    """
    if rounds <= 0:
        raise PrivacyError(f"rounds must be positive, got {rounds}")
    remaining = dict(scores)
    chosen: list[str] = []
    while remaining and len(chosen) < rounds:
        pick = exponential_mechanism(remaining, epsilon_per_round, sensitivity, rng)
        chosen.append(pick)
        del remaining[pick]
    return chosen
