"""Empirical straddler re-identification attack (§1.2's threat model).

The paper motivates privacy with a curious user who, observing
cross-domain recommendations, infers which items (and hence which
straddlers' co-ratings) produced them. Against the *non-private* mapping
this is easy: the NX-Map replacement function is deterministic, so an
adversary holding the X-Sim map inverts it exactly. Against PRS the
replacement is a sample from the exponential mechanism, so the
adversary's best guess (maximum-likelihood: the candidate whose argmax
replacement matches the observation) succeeds with bounded advantage.

:func:`reidentification_rate` measures that success rate empirically —
used by tests and the privacy experiment to show the obfuscation working
and to exhibit the ε → accuracy trade-off from the attacker's side.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import PrivacyError
from repro.privacy.prs import private_replacement


def optimal_replacements(xsim_map: Mapping[str, Mapping[str, float]],
                         ) -> dict[str, str]:
    """The adversary's reference model: argmax X-Sim per source item
    (identical to NX-Map's deterministic replacement choice)."""
    best: dict[str, str] = {}
    for source, candidates in xsim_map.items():
        if candidates:
            best[source] = min(candidates, key=lambda t: (-candidates[t], t))
    return best


def reidentification_rate(xsim_map: Mapping[str, Mapping[str, float]],
                          epsilon: float, trials: int,
                          rng: np.random.Generator) -> float:
    """Fraction of PRS draws the argmax-adversary identifies correctly.

    For each trial and each source item, PRS draws a private replacement;
    the adversary guesses the item whose argmax replacement equals the
    draw (ties broken by X-Sim). With ε → ∞ the rate approaches 1
    (PRS degenerates to argmax, i.e. NX-Map); with small ε it approaches
    chance level. Tests assert this monotone behaviour.
    """
    if trials <= 0:
        raise PrivacyError(f"trials must be positive, got {trials}")
    sources = [s for s, cands in sorted(xsim_map.items()) if cands]
    if not sources:
        raise PrivacyError("xsim_map has no mappable source items")
    reference = optimal_replacements(xsim_map)
    hits = 0
    total = 0
    for _ in range(trials):
        for source in sources:
            drawn = private_replacement(xsim_map[source], epsilon, rng)
            hits += int(drawn == reference[source])
            total += 1
    return hits / total
