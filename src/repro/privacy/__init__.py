"""Differential-privacy substrate (§2.2, §4, Algorithms 3–5).

X-Map's privacy story has two independent halves, composed by the basic
composition property of differential privacy:

* **AlterEgo generation** — the Private Replacement Selection (PRS)
  exponential mechanism of Algorithm 3, ε-DP (Theorem 1), protecting the
  straddlers whose ratings power the cross-domain similarities;
* **Recommendation** — Private Neighbor Selection (PNSA, Algorithm 4,
  ε′/2) plus Laplace-noised predictions (PNCF, Algorithm 5, ε′/2), using
  the similarity-based sensitivity of Theorem 2 and the truncated
  similarity of Zhu et al. [39, 40], protecting target-domain users.

:mod:`repro.privacy.mechanisms` holds the raw Laplace/exponential
mechanisms, :mod:`repro.privacy.accountant` the budget bookkeeping, and
:mod:`repro.privacy.attack` an empirical straddler re-identification
attack used to demonstrate what the obfuscation buys.
"""

from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.mechanisms import (
    exponential_mechanism,
    exponential_sample_without_replacement,
    laplace_noise,
)
from repro.privacy.pncf import PrivateItemKNNRecommender, PrivateUserKNNRecommender
from repro.privacy.pnsa import PNSAConfig, private_neighbor_selection
from repro.privacy.prs import private_replacement
from repro.privacy.sensitivity import (
    XSIM_GLOBAL_SENSITIVITY,
    item_similarity_sensitivity,
    user_similarity_sensitivity,
)

__all__ = [
    "PNSAConfig",
    "PrivacyAccountant",
    "PrivateItemKNNRecommender",
    "PrivateUserKNNRecommender",
    "XSIM_GLOBAL_SENSITIVITY",
    "exponential_mechanism",
    "exponential_sample_without_replacement",
    "item_similarity_sensitivity",
    "laplace_noise",
    "private_neighbor_selection",
    "private_replacement",
    "user_similarity_sensitivity",
]
