"""Exception hierarchy for the X-Map reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Each subclass documents the subsystem that raises it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class DataError(ReproError):
    """Invalid or inconsistent rating data (bad values, unknown ids)."""


class DomainError(DataError):
    """An operation referenced a domain that the dataset does not define,
    or mixed items across domains where a single domain was required."""


class ConfigError(ReproError):
    """A configuration object failed validation."""


class SimilarityError(ReproError):
    """Similarity computation was asked for items/users with no data."""


class GraphError(ReproError):
    """The similarity graph or its layer partition is inconsistent."""


class PrivacyError(ReproError):
    """A differential-privacy mechanism received an invalid budget or
    sensitivity (e.g. epsilon <= 0)."""


class EngineError(ReproError):
    """The dataflow engine was driven incorrectly (e.g. collecting an
    unmaterialised plan, joining collections from different contexts)."""


class EvaluationError(ReproError):
    """An evaluation protocol could not be applied to the given dataset
    (e.g. no overlapping users to hide)."""


class ServingError(ReproError):
    """The serving subsystem was driven incorrectly (corrupt or
    incompatible snapshot directories, publishing to a retired registry
    version, serving requests a truncated index cannot answer)."""


class DurabilityError(ReproError):
    """The durability layer was driven incorrectly (invalid write-ahead
    log configuration, appending to a readonly log, recovering a
    directory that holds no durable store)."""


class StaleModelError(ServingError):
    """A version-pinned request required a model version the local
    registry has not converged on yet (the gateway's version handshake
    turns this into a refresh-and-retry, never a torn response)."""

    def __init__(self, version: int, min_version: int) -> None:
        super().__init__(
            f"the pinned model is at version {version} but the request "
            f"requires at least version {min_version}"
        )
        self.version = version
        self.min_version = min_version


class GatewayError(ReproError):
    """The networked serving tier failed a request (no live worker,
    worker death exhausted the retry budget, malformed wire frames)."""
