"""Multi-process model publication: snapshot catalogs and watchers.

The :class:`~repro.serving.registry.ModelRegistry` hot swap is
thread-only — writer and readers share one address space. This module
is the cross-process half of the same contract:

* a :class:`SnapshotCatalog` is the **publisher side**: a directory of
  immutable versioned snapshot directories (``v-00000001/``, …) plus an
  atomically replaced ``CURRENT.json`` pointer. Each version is a
  complete :class:`~repro.serving.snapshot.ModelSnapshot` save
  (MANIFEST-last, fully fsynced), and the pointer is only moved after
  the snapshot it names is durable — a reader can never be pointed at
  a half-written model. :meth:`SnapshotCatalog.attach` mirrors every
  in-process registry publish into the catalog, which is how a
  :class:`~repro.engine.sharded_sweep.IncrementalSweep` writer reaches
  a fleet of worker processes.
* a :class:`RegistryWatcher` is the **subscriber side**: it polls a
  published source and feeds each new version into a local (usually
  read-only) registry via the ordinary
  :meth:`~repro.serving.registry.ModelRegistry.publish`, so everything
  downstream — pinning, cache invalidation, the version handshake —
  behaves exactly as it does in-process. Loads go through
  :meth:`~repro.serving.snapshot.ModelSnapshot.load`, so on the NumPy
  backend every worker process memory-maps the same bytes and the page
  cache is shared across the fleet for free.

Three source layouts are watched, detected per poll:

========================  ==============================================
source holds              watched as
========================  ==============================================
``CURRENT.json``          a :class:`SnapshotCatalog` root — the pointer
                          carries the authoritative version number, so
                          every watcher in the fleet agrees on it (what
                          the gateway's version handshake needs)
``CHECKPOINT.json``       a :class:`~repro.durability.manager.DurableSweep`
                          store — workers converge on each checkpoint;
                          versions are ``applied_seq + 1`` (fleet-wide
                          consistent, strictly monotone)
``MANIFEST.json``         a single snapshot directory — reloaded when
                          the manifest changes on disk (a static model,
                          or an operator re-saving in place)
========================  ==============================================

Version agreement across watchers is what makes the numbers meaningful
on the wire: two workers watching the same catalog or durable store
always report the same version for the same bytes, even if one of them
restarted and never saw the intermediate versions.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ServingError
from repro.serving.registry import ModelRegistry
from repro.serving.snapshot import ModelSnapshot, _fsync_dir, _fsync_file

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.sharded_sweep import IncrementalUpdateStats

CATALOG_POINTER = "CURRENT.json"
_CATALOG_FORMAT = "xmap-snapshot-catalog"
_CATALOG_FORMAT_VERSION = 1
_CHECKPOINT_FILE = "CHECKPOINT.json"
_MANIFEST_FILE = "MANIFEST.json"


def _version_dir_name(version: int) -> str:
    return f"v-{version:08d}"


class SnapshotCatalog:
    """A directory of versioned snapshots with an atomic pointer.

    Single-writer, many cross-process readers. Every
    :meth:`publish` writes the snapshot to a **fresh** version
    directory (never in place — readers may be memory-mapping the
    previous one) and then atomically replaces ``CURRENT.json`` with
    temp-file + fsync + rename + directory fsync, the same durability
    discipline the snapshot writer itself uses. Readers
    (:class:`RegistryWatcher`) that catch the pointer mid-replace see
    either the old complete version or the new complete version.

    Args:
        root: the catalog directory (created if missing).
        keep_last: retain at most this many version directories,
            pruning the oldest after each publish. ``None`` keeps
            everything. Pruning unlinks files a reader may still have
            mapped — harmless on POSIX (the pages stay valid until the
            last map closes), but a reader loading a pruned version
            races a ``ServingError`` and simply re-polls the pointer.
    """

    def __init__(self, root, keep_last: int | None = None) -> None:
        if keep_last is not None and keep_last < 1:
            raise ServingError(f"keep_last must be >= 1 or None, got {keep_last}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep_last = keep_last
        self._subscribed: ModelRegistry | None = None

    # ------------------------------------------------------------------
    # Publisher side
    # ------------------------------------------------------------------

    def current(self) -> tuple[int, Path] | None:
        """The pointed-to ``(version, snapshot_path)``, or ``None`` for
        an empty catalog."""
        pointer = _read_json(self.root / CATALOG_POINTER)
        if pointer is None:
            return None
        if pointer.get("format") != _CATALOG_FORMAT:
            raise ServingError(
                f"{self.root} is not a snapshot catalog "
                f"(format={pointer.get('format')!r})"
            )
        return int(pointer["version"]), self.root / pointer["path"]

    def versions(self) -> list[int]:
        """Version numbers present on disk, ascending."""
        found = []
        for entry in self.root.iterdir():
            name = entry.name
            if entry.is_dir() and name.startswith("v-"):
                try:
                    found.append(int(name[2:]))
                except ValueError:
                    continue
        return sorted(found)

    def publish(self, snapshot: ModelSnapshot, version: int | None = None) -> int:
        """Write *snapshot* as the next version and move the pointer.

        The version is taken (in priority order) from the *version*
        argument, the snapshot's own stamped version, or the pointer's
        successor; it must move the catalog strictly forward. Returns
        the published version number.
        """
        current = self.current()
        last = current[0] if current is not None else 0
        if version is None:
            version = snapshot.version if snapshot.version > 0 else last + 1
        if version <= last:
            raise ServingError(
                f"cannot publish version {version} behind the catalog "
                f"(currently at {last}); versions are strictly monotone"
            )
        snapshot.version = version
        name = _version_dir_name(version)
        # overwrite=True: a fresh version directory can only be
        # non-empty if a previous publish of this same version crashed
        # before moving the pointer — its leftovers are unreachable.
        snapshot.save(self.root / name, overwrite=True)
        pointer = {
            "format": _CATALOG_FORMAT,
            "format_version": _CATALOG_FORMAT_VERSION,
            "version": version,
            "path": name,
        }
        tmp_path = self.root / (CATALOG_POINTER + ".tmp")
        tmp_path.write_text(
            json.dumps(pointer, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        _fsync_file(tmp_path)
        os.replace(tmp_path, self.root / CATALOG_POINTER)
        _fsync_dir(self.root)
        if self.keep_last is not None:
            self._prune(version)
        return version

    def _prune(self, current_version: int) -> None:
        floor = current_version - self.keep_last + 1
        for version in self.versions():
            if version < floor:
                shutil.rmtree(
                    self.root / _version_dir_name(version),
                    ignore_errors=True,
                )

    # ------------------------------------------------------------------
    # Registry mirroring
    # ------------------------------------------------------------------

    def attach(self, registry: ModelRegistry) -> None:
        """Mirror every future publish of *registry* into this catalog
        (the writer-process hook: one in-process ``registry.update()``
        lands on disk for the whole fleet). The registry's current
        version is published immediately if the catalog is behind it.
        Pair with :meth:`detach`."""
        if self._subscribed is not None:
            raise ServingError("this catalog is already attached")
        self._subscribed = registry
        current = self.current()
        snapshot = registry.current()
        if current is None or current[0] < snapshot.version:
            self.publish(snapshot, version=snapshot.version)
        registry.subscribe(self._on_publish)

    def detach(self) -> None:
        """Stop mirroring the registry attached by :meth:`attach`."""
        if self._subscribed is not None:
            self._subscribed.unsubscribe(self._on_publish)
            self._subscribed = None

    def _on_publish(
        self,
        version: int,
        snapshot: ModelSnapshot,
        stats: "IncrementalUpdateStats | None",
    ) -> None:
        self.publish(snapshot, version=version)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        current = self.current()
        return (
            f"SnapshotCatalog({str(self.root)!r}, "
            f"current={current[0] if current else None})"
        )


def _read_json(path: Path) -> dict | None:
    """A pointer file's JSON, or ``None`` if it is missing/unreadable.

    Pointer files are replaced atomically, so "unreadable" only happens
    for sources that are not yet (or no longer) published — callers
    treat it as "nothing new" and poll again later.
    """
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (FileNotFoundError, NotADirectoryError):
        return None
    except (OSError, ValueError):
        return None


class RegistryWatcher:
    """Feed a local :class:`~repro.serving.registry.ModelRegistry` from
    a published on-disk source (see the module docstring for the three
    layouts). :meth:`poll` is cheap when nothing changed — one stat +
    small JSON read — so serving loops call it on a short interval and
    again on demand when a request's version handshake requires a newer
    model than the local registry holds.
    """

    def __init__(
        self,
        source,
        registry: ModelRegistry | None = None,
        use_numpy: bool | None = None,
    ) -> None:
        self.source = Path(source)
        self.registry = registry if registry is not None else ModelRegistry()
        self.use_numpy = use_numpy
        self.n_loads = 0
        self._fingerprint: tuple | None = None

    @property
    def version(self) -> int:
        """The local registry's current version (0 before any load)."""
        try:
            return self.registry.current_version()
        except ServingError:
            return 0

    def poll(self) -> int | None:
        """Check the source once; load and publish when it moved.

        Returns the newly published version, or ``None`` when the
        source is unchanged, not yet published, or mid-transition (a
        load that races a prune/re-publish is abandoned and retried on
        the next poll — the registry never sees a partial model).
        """
        reference = self._read_source()
        if reference is None or reference[0] == self._fingerprint:
            return None
        fingerprint, snapshot_path, version_hint = reference
        try:
            snapshot = ModelSnapshot.load(snapshot_path, use_numpy=self.use_numpy)
        except (ServingError, OSError, ValueError):
            return None
        next_version = self.version + 1
        version = max(version_hint, next_version)
        snapshot.version = version
        self.registry.publish(snapshot)
        self.n_loads += 1
        self._fingerprint = fingerprint
        return version

    def _read_source(self) -> tuple[tuple, Path, int] | None:
        """``(fingerprint, snapshot_path, version_hint)`` for whatever
        the source currently publishes, or ``None``."""
        source = self.source
        pointer = _read_json(source / CATALOG_POINTER)
        if pointer is not None and pointer.get("format") == _CATALOG_FORMAT:
            version = int(pointer["version"])
            return (
                ("catalog", version),
                source / pointer["path"],
                version,
            )
        pointer = _read_json(source / _CHECKPOINT_FILE)
        if pointer is not None and "applied_seq" in pointer:
            seq = int(pointer["applied_seq"])
            return (
                ("checkpoint", seq),
                source / pointer["snapshot"],
                seq + 1,
            )
        manifest_path = source / _MANIFEST_FILE
        manifest = _read_json(manifest_path)
        if manifest is not None:
            try:
                mtime = manifest_path.stat().st_mtime_ns
            except OSError:
                return None
            version = int(manifest.get("version", 0))
            return ("manifest", version, mtime), source, max(version, 1)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RegistryWatcher({str(self.source)!r}, "
            f"version={self.version}, loads={self.n_loads})"
        )
