"""The serving subsystem: snapshots, the hot-swap registry, the service.

The offline pipeline (Baseliner → Extender → Generator → Recommender)
produces one model per run; this package is how that model reaches
traffic. :class:`~repro.serving.snapshot.ModelSnapshot` freezes
everything serving needs into immutable, versioned artifacts with
zero-copy save/load to a directory, so a restarted server never re-runs
the sweep; :class:`~repro.serving.registry.ModelRegistry` publishes
snapshots atomically and lets the incremental-update path splice the
next version in while readers stay pinned to a coherent one;
:class:`~repro.serving.service.RecommendationService` answers batched
multi-user Top-N requests as vectorized passes over the pinned index,
with delta-aware caches in front.
"""

from repro.serving.registry import ModelRegistry, PinnedModel
from repro.serving.service import RecommendationService
from repro.serving.snapshot import ModelSnapshot
from repro.serving.watch import RegistryWatcher, SnapshotCatalog

__all__ = [
    "ModelRegistry",
    "ModelSnapshot",
    "PinnedModel",
    "RecommendationService",
    "RegistryWatcher",
    "SnapshotCatalog",
]
